//! End-to-end training-epoch timelines over the storage hierarchy.
//!
//! Combines the staging, shuffling, and bandwidth models into the quantity
//! a user actually experiences — wall-clock time per epoch and for the
//! whole job — and answers the paper's practical question: when does
//! staging to the burst buffers beat streaming from GPFS, and what does
//! per-epoch global shuffling cost on the fabric?

use serde::Serialize;

use crate::dataset::{DatasetSpec, ShardPlan};
use crate::shuffle::ShuffleStrategy;
use crate::staging::{StagingMode, StagingPlan};
use crate::tier::StorageTier;

/// Where the input pipeline reads from during training.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum TrainingSource {
    /// Stream every epoch from the shared filesystem.
    SharedFs,
    /// Stage once to node-local NVMe, then read locally.
    StagedNvme(StagingMode),
}

/// Inputs of an epoch-timeline simulation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpochPlan {
    /// The dataset.
    pub dataset: DatasetSpec,
    /// Job size in nodes.
    pub nodes: u32,
    /// Input source.
    pub source: TrainingSource,
    /// Per-epoch shuffle strategy.
    pub shuffle: ShuffleStrategy,
    /// Pure-compute seconds per epoch (dataset size / training throughput).
    pub compute_seconds: f64,
    /// Per-node fabric injection bandwidth, bytes/s (for shuffle traffic).
    pub injection_bw: f64,
}

/// One epoch's cost decomposition.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EpochCost {
    /// Wall seconds for the epoch: `max(compute, read)` + shuffle.
    pub wall_seconds: f64,
    /// Read time demanded from the source tier.
    pub read_seconds: f64,
    /// Cross-node shuffle seconds on the fabric.
    pub shuffle_seconds: f64,
}

/// The whole job's timeline.
#[derive(Debug, Clone, Serialize)]
pub struct EpochTimeline {
    /// One-time staging cost (0 when streaming from the shared FS).
    pub staging_seconds: f64,
    /// Steady-state per-epoch cost.
    pub epoch: EpochCost,
    /// Whether the plan is feasible (data fits the chosen tier).
    pub feasible: bool,
}

impl EpochTimeline {
    /// Total wall seconds for `epochs` epochs.
    pub fn total_seconds(&self, epochs: u32) -> f64 {
        self.staging_seconds + f64::from(epochs) * self.epoch.wall_seconds
    }
}

impl EpochPlan {
    /// Simulate the timeline on a machine's tiers.
    ///
    /// # Panics
    /// Panics if compute time is not positive.
    pub fn simulate(&self, shared: &StorageTier, nvme: &StorageTier) -> EpochTimeline {
        assert!(self.compute_seconds > 0.0, "compute time must be positive");
        let bytes = self.dataset.total_bytes();
        let (staging_seconds, read_bw, feasible) = match self.source {
            TrainingSource::SharedFs => (0.0, shared.read_bw, true),
            TrainingSource::StagedNvme(mode) => {
                let plan = StagingPlan::new(&self.dataset, self.nodes, shared, nvme, mode);
                (plan.stage_seconds, nvme.read_bw, plan.fits)
            }
        };
        let read_seconds = bytes / read_bw;
        // Shuffle traffic crosses the fabric; aggregate bandwidth is the
        // bisection-ish `nodes × injection / 2`.
        let plan = ShardPlan::partition(&self.dataset, self.nodes);
        let traffic = self.shuffle.epoch_traffic_bytes(&plan);
        let fabric_bw = f64::from(self.nodes) * self.injection_bw / 2.0;
        let shuffle_seconds = traffic / fabric_bw;
        // Reads pipeline under compute; shuffles do not (they reorder the
        // data the next epoch needs).
        let wall = self.compute_seconds.max(read_seconds) + shuffle_seconds;
        EpochTimeline {
            staging_seconds,
            epoch: EpochCost {
                wall_seconds: wall,
                read_seconds,
                shuffle_seconds,
            },
            feasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_machine::MachineSpec;

    fn plan(
        source: TrainingSource,
        shuffle: ShuffleStrategy,
    ) -> (EpochPlan, StorageTier, StorageTier) {
        let m = MachineSpec::summit();
        let nodes = 4608;
        let p = EpochPlan {
            dataset: DatasetSpec::imagenet(),
            nodes,
            source,
            shuffle,
            // Full Summit consumes ImageNet in ≈16 s at 2900 samples/s/GPU.
            compute_seconds: 1_281_167.0 / (2900.0 * 27_648.0),
            injection_bw: m.node.injection_bw,
        };
        (
            p,
            StorageTier::shared_fs(&m),
            StorageTier::node_local_nvme(&m, nodes),
        )
    }

    /// The paper's bottom line as a timeline: streaming ImageNet from GPFS
    /// makes the epoch I/O-bound; staging to NVMe restores compute-bound
    /// epochs and amortizes in a couple of epochs.
    #[test]
    fn staging_beats_streaming_after_breakeven() {
        let (p_fs, shared, nvme) = plan(TrainingSource::SharedFs, ShuffleStrategy::LocalInShard);
        let t_fs = p_fs.simulate(&shared, &nvme);
        let (p_st, _, _) = plan(
            TrainingSource::StagedNvme(StagingMode::Partitioned),
            ShuffleStrategy::LocalInShard,
        );
        let t_st = p_st.simulate(&shared, &nvme);
        // Streaming is I/O-bound (read > compute); staged is compute-bound.
        assert!(t_fs.epoch.read_seconds > p_fs.compute_seconds);
        assert!(t_st.epoch.read_seconds < p_st.compute_seconds);
        // One epoch: streaming may win (no staging cost); ten epochs: NVMe
        // must win.
        assert!(t_st.total_seconds(10) < t_fs.total_seconds(10));
    }

    #[test]
    fn global_reshard_adds_fabric_time() {
        let (p_local, shared, nvme) = plan(
            TrainingSource::StagedNvme(StagingMode::Partitioned),
            ShuffleStrategy::LocalInShard,
        );
        let (p_global, _, _) = plan(
            TrainingSource::StagedNvme(StagingMode::Partitioned),
            ShuffleStrategy::GlobalReshard,
        );
        let local = p_local.simulate(&shared, &nvme);
        let global = p_global.simulate(&shared, &nvme);
        assert_eq!(local.epoch.shuffle_seconds, 0.0);
        assert!(global.epoch.shuffle_seconds > 0.0);
        assert!(global.epoch.wall_seconds > local.epoch.wall_seconds);
    }

    #[test]
    fn epoch_never_faster_than_compute() {
        for (source, shuffle) in [
            (TrainingSource::SharedFs, ShuffleStrategy::None),
            (
                TrainingSource::StagedNvme(StagingMode::Replicated),
                ShuffleStrategy::GlobalReshard,
            ),
        ] {
            let (p, shared, nvme) = plan(source, shuffle);
            let t = p.simulate(&shared, &nvme);
            assert!(t.epoch.wall_seconds >= p.compute_seconds);
        }
    }

    #[test]
    fn infeasible_replication_flagged() {
        let m = MachineSpec::summit();
        let p = EpochPlan {
            dataset: DatasetSpec::climate_extreme_weather(), // 20 TB
            nodes: 1024,
            source: TrainingSource::StagedNvme(StagingMode::Replicated),
            shuffle: ShuffleStrategy::None,
            compute_seconds: 100.0,
            injection_bw: m.node.injection_bw,
        };
        let t = p.simulate(
            &StorageTier::shared_fs(&m),
            &StorageTier::node_local_nvme(&m, 1024),
        );
        assert!(!t.feasible, "20 TB cannot replicate onto 1.6 TB volumes");
    }
}
