//! Sub-communicators: the `MPI_Comm_split` analog.
//!
//! Hybrid (data × model) parallel training partitions the world twice: a
//! rank allreduces activations within its tensor-parallel group and
//! gradients within its data-parallel group. [`Group::split`] builds such
//! subgroups by color, and the group collectives run the same chunked ring
//! over the member list, verified against the flat collectives.

use crate::collectives::ReduceOp;
use crate::world::Rank;

/// A subgroup of world ranks this rank belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// World ranks in the group, ascending.
    members: Vec<usize>,
    /// This rank's index within `members`.
    my_index: usize,
}

impl Group {
    /// Split the world by `color`: ranks sharing a color form one group
    /// (ordered by world rank). Requires every rank to call collectively
    /// with its own color; colors are exchanged through a (world) gather +
    /// broadcast so every rank learns the full coloring.
    pub fn split(rank: &Rank, color: u64) -> Group {
        let p = rank.size();
        // Exchange colors: everyone sends theirs to rank 0, which
        // broadcasts the full vector.
        let all = crate::extended::gather_then_broadcast(rank, vec![color as f32], 0);
        let colors: Vec<u64> = all.iter().map(|v| v[0] as u64).collect();
        debug_assert_eq!(colors.len(), p);
        let members: Vec<usize> = (0..p).filter(|&r| colors[r] == color).collect();
        let my_index = members
            .iter()
            .position(|&r| r == rank.id())
            .expect("caller is in its own color class");
        Group { members, my_index }
    }

    /// Build a group directly from a member list (must contain the caller).
    ///
    /// # Panics
    /// Panics if `members` is empty, unsorted, or missing the caller.
    pub fn from_members(rank: &Rank, members: Vec<usize>) -> Group {
        assert!(!members.is_empty(), "group cannot be empty");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "members must be sorted"
        );
        let my_index = members
            .iter()
            .position(|&r| r == rank.id())
            .expect("caller must be a member");
        Group { members, my_index }
    }

    /// Group size.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// This rank's index within the group.
    pub fn index(&self) -> usize {
        self.my_index
    }

    /// The world ranks of the group.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Ring allreduce restricted to the group (other world ranks are
    /// untouched and need not participate).
    pub fn allreduce(&self, rank: &Rank, buf: &mut [f32], op: ReduceOp) {
        let g = self.len();
        if g == 1 {
            return;
        }
        let me = self.my_index;
        let right = self.members[(me + 1) % g];
        let left = self.members[(me + g - 1) % g];
        let n = buf.len();
        let bounds =
            |chunk: usize| -> (usize, usize) { crate::collectives::chunk_bounds(n, g, chunk) };
        // Tag namespace 20/21 with a group fingerprint so disjoint groups
        // sharing a rank pair (impossible for a partition, but cheap
        // insurance) do not collide.
        let fp = (self.members.iter().sum::<usize>() as u64 & 0xFFF) << 20;
        for s in 0..g - 1 {
            let send_chunk = (me + g - s) % g;
            let recv_chunk = (me + g - s - 1) % g;
            let (src, dst) =
                crate::collectives::send_recv_windows(buf, bounds(send_chunk), bounds(recv_chunk));
            let t = (20 << 32) | fp | s as u64;
            rank.send_from(right, t, src);
            rank.recv_with(left, t, |got| op.fold(dst, got));
        }
        for s in 0..g - 1 {
            let send_chunk = (me + 1 + g - s) % g;
            let recv_chunk = (me + g - s) % g;
            let (src, dst) =
                crate::collectives::send_recv_windows(buf, bounds(send_chunk), bounds(recv_chunk));
            let t = (21 << 32) | fp | s as u64;
            rank.send_from(right, t, src);
            rank.recv_into(left, t, dst);
        }
    }

    /// Broadcast from the group member at `root_index` to the group.
    ///
    /// # Panics
    /// Panics if `root_index` is out of range.
    pub fn broadcast(&self, rank: &Rank, buf: &mut Vec<f32>, root_index: usize) {
        assert!(root_index < self.len(), "root outside group");
        let root = self.members[root_index];
        let fp = (self.members.iter().sum::<usize>() as u64 & 0xFFF) << 20;
        if rank.id() == root {
            for &m in &self.members {
                if m != root {
                    rank.send_from(m, (22 << 32) | fp, buf);
                }
            }
        } else {
            rank.recv_with(root, (22 << 32) | fp, |payload| {
                buf.clear();
                buf.extend_from_slice(payload);
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    /// 2D decomposition: 6 ranks as 3 data-parallel groups × 2
    /// tensor-parallel groups; each dimension allreduces independently —
    /// exactly the hybrid-parallel communicator layout.
    #[test]
    fn split_builds_hybrid_parallel_groups() {
        let out = World::run(6, |rank| {
            let tp_color = (rank.id() / 2) as u64; // {0,1},{2,3},{4,5}
            let dp_color = (rank.id() % 2) as u64; // evens / odds
            let tp = Group::split(rank, tp_color);
            let dp = Group::split(rank, dp_color);
            assert_eq!(tp.len(), 2);
            assert_eq!(dp.len(), 3);

            // Tensor-parallel allreduce: sum within pairs.
            let mut t = vec![rank.id() as f32];
            tp.allreduce(rank, &mut t, ReduceOp::Sum);
            // Data-parallel allreduce: sum over same-parity ranks.
            let mut d = vec![rank.id() as f32];
            dp.allreduce(rank, &mut d, ReduceOp::Sum);
            (t[0], d[0])
        });
        for (r, &(t, d)) in out.iter().enumerate() {
            let pair_sum = (r / 2 * 2) as f32 * 2.0 + 1.0; // id + partner
            assert_eq!(t, pair_sum, "rank {r} tensor group");
            let parity_sum: f32 = (0..6).filter(|x| x % 2 == r % 2).sum::<usize>() as f32;
            assert_eq!(d, parity_sum, "rank {r} data group");
        }
    }

    #[test]
    fn group_allreduce_matches_manual_sum() {
        let out = World::run(7, |rank| {
            // Group of ranks {1, 3, 4, 6}; others form their own group.
            let in_group = [1, 3, 4, 6].contains(&rank.id());
            let g = Group::split(rank, u64::from(in_group));
            let mut buf = vec![rank.id() as f32; 5];
            g.allreduce(rank, &mut buf, ReduceOp::Sum);
            (in_group, buf)
        });
        let want: f32 = 1.0 + 3.0 + 4.0 + 6.0;
        for (r, (in_group, buf)) in out.iter().enumerate() {
            if *in_group {
                assert!(buf.iter().all(|&v| v == want), "rank {r}: {buf:?}");
            } else {
                let other: f32 = 0.0 + 2.0 + 5.0;
                assert!(buf.iter().all(|&v| v == other), "rank {r}: {buf:?}");
            }
        }
    }

    #[test]
    fn group_broadcast_from_each_root() {
        for root_index in 0..3 {
            let out = World::run(6, |rank| {
                let g = Group::split(rank, (rank.id() % 2) as u64);
                let mut buf = if g.index() == root_index {
                    vec![99.0, g.members()[root_index] as f32]
                } else {
                    vec![]
                };
                g.broadcast(rank, &mut buf, root_index);
                buf
            });
            for (r, buf) in out.iter().enumerate() {
                let g_members: Vec<usize> = (0..6).filter(|x| x % 2 == r % 2).collect();
                assert_eq!(buf, &vec![99.0, g_members[root_index] as f32]);
            }
        }
    }

    #[test]
    fn singleton_group_is_noop() {
        let out = World::run(3, |rank| {
            let g = Group::split(rank, rank.id() as u64); // all distinct
            assert_eq!(g.len(), 1);
            let mut buf = vec![rank.id() as f32];
            g.allreduce(rank, &mut buf, ReduceOp::Sum);
            buf[0]
        });
        assert_eq!(out, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn max_within_groups() {
        let out = World::run(8, |rank| {
            let g = Group::split(rank, u64::from(rank.id() < 4));
            let mut buf = vec![rank.id() as f32];
            g.allreduce(rank, &mut buf, ReduceOp::Max);
            buf[0]
        });
        for (r, &v) in out.iter().enumerate() {
            assert_eq!(v, if r < 4 { 3.0 } else { 7.0 });
        }
    }
}
