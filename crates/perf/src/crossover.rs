//! The Section VI-B communication-bound crossover.
//!
//! "Thus models larger than BERT-large become communication-bound for the
//! widely used data-parallel training on Summit."
//!
//! The argument formalized: per-GPU batch size is memory-bound, so as the
//! model grows the batch shrinks proportionally and the per-step compute
//! time stays roughly constant, while the allreduce message (and therefore
//! the ring's bandwidth time) grows linearly with the parameter count. The
//! crossover parameter count is where the two curves meet.

use serde::Serialize;
use summit_comm::model::{Algorithm, CollectiveModel};
use summit_machine::{LinkModel, NodeSpec};
use summit_workloads::{GradPrecision, Workload};

/// The memory-bound compute / linear-communication crossover model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommCrossover {
    /// Per-step forward+backward time, held constant by the memory-bound
    /// batch assumption (seconds). Anchored to BERT-large's ≈110 ms.
    pub step_compute_seconds: f64,
    /// Gradient precision for the allreduce message.
    pub precision: GradPrecision,
    /// Inter-node link.
    pub link: LinkModel,
    /// Rank count for the collective (large-p ring ⇒ barely matters).
    pub ranks: u64,
}

impl CommCrossover {
    /// The paper's setting: BERT-large anchor on full Summit with fp32
    /// gradients.
    pub fn summit_bert_anchor() -> Self {
        CommCrossover {
            step_compute_seconds: Workload::bert_large().step_compute_seconds(),
            precision: GradPrecision::Fp32,
            link: LinkModel::inter_node(&NodeSpec::summit()),
            ranks: 4608,
        }
    }

    /// Allreduce time for a model of `params` parameters (bandwidth term of
    /// the ring, matching the paper's arithmetic).
    pub fn comm_seconds(&self, params: f64) -> f64 {
        let model = CollectiveModel::new(self.link);
        model.bandwidth_term(Algorithm::Ring, self.ranks, params * self.precision.bytes())
    }

    /// Whether a model of `params` parameters is communication-bound
    /// (allreduce time exceeds per-batch compute).
    pub fn comm_bound(&self, params: f64) -> bool {
        self.comm_seconds(params) > self.step_compute_seconds
    }

    /// The crossover parameter count: the model size at which allreduce
    /// time equals compute time. Closed form because both sides are linear:
    /// `params* = t_compute · β / (2 · bytes_per_param · (p−1)/p)`.
    pub fn crossover_params(&self) -> f64 {
        let pf = self.ranks as f64;
        let factor = 2.0 * (pf - 1.0) / pf * self.precision.bytes() / self.link.beta;
        self.step_compute_seconds / factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_lands_at_bert_large() {
        // The paper's qualitative claim, quantitatively: the crossover is at
        // ≈345 M parameters — BERT-large.
        let x = CommCrossover::summit_bert_anchor();
        let params = x.crossover_params();
        assert!(
            (params - 345.0e6).abs() / 345.0e6 < 0.05,
            "crossover at {params} params"
        );
    }

    #[test]
    fn resnet_below_bert_above() {
        let x = CommCrossover::summit_bert_anchor();
        assert!(!x.comm_bound(Workload::resnet50().params));
        // A model 2× BERT-large is communication-bound.
        assert!(x.comm_bound(2.0 * Workload::bert_large().params));
    }

    #[test]
    fn fp16_doubles_the_crossover() {
        let fp32 = CommCrossover::summit_bert_anchor();
        let fp16 = CommCrossover {
            precision: GradPrecision::Fp16,
            ..fp32
        };
        let ratio = fp16.crossover_params() / fp32.crossover_params();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_network_moves_crossover_up() {
        let summit = CommCrossover::summit_bert_anchor();
        let faster = CommCrossover {
            link: LinkModel::new(summit.link.alpha, 4.0 * summit.link.beta),
            ..summit
        };
        assert!((faster.crossover_params() / summit.crossover_params() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn comm_seconds_matches_paper_examples() {
        let x = CommCrossover::summit_bert_anchor();
        // ResNet50: ~8 ms; BERT-large: ~110 ms.
        assert!((x.comm_seconds(25.6e6) - 8.0e-3).abs() / 8.0e-3 < 0.05);
        assert!((x.comm_seconds(345.0e6) - 110.0e-3).abs() / 110.0e-3 < 0.05);
    }

    #[test]
    fn boundary_consistency() {
        let x = CommCrossover::summit_bert_anchor();
        let p = x.crossover_params();
        assert!(!x.comm_bound(p * 0.999));
        assert!(x.comm_bound(p * 1.001));
    }
}
