//! Row-major dense matrix with the matmul variants backprop needs.

/// A dense, row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Row count above which matmuls parallelize over scoped threads.
const PAR_THRESHOLD: usize = 128;

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an owned buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices (test/helper constructor).
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-range indices (debug and release).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` (`m×k · k×n → m×n`), ikj order, parallel over row
    /// blocks for large `m`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        let run_rows = |rows_out: &mut [f32], row_range: std::ops::Range<usize>| {
            for (oi, i) in row_range.enumerate() {
                let a_row = self.row(i);
                let out_row = &mut rows_out[oi * n..(oi + 1) * n];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        };
        if self.rows < PAR_THRESHOLD {
            run_rows(&mut out.data, 0..self.rows);
        } else {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
                .min(self.rows);
            let chunk_rows = self.rows.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                    let start = t * chunk_rows;
                    let end = (start + chunk.len() / n).min(self.rows);
                    let run = &run_rows;
                    s.spawn(move || run(chunk, start..end));
                }
            });
        }
        out
    }

    /// `selfᵀ · other` (`(m×k)ᵀ · m×n → k×n`) without materializing the
    /// transpose. This is the weight-gradient product `Xᵀ · dY`.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at_b row mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`m×k · (n×k)ᵀ → m×n`) without materializing the
    /// transpose. This is the input-gradient product `dY · Wᵀ`.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_a_bt column mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = crate::dot(a_row, other.row(j));
            }
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        crate::axpy(1.0, &other.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::l2_norm(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[3.0, 1.0, 0.0], &[2.0, 2.0, 1.0]]);
        let want_atb = a.transpose().matmul(&b);
        assert_eq!(a.matmul_at_b(&b), want_atb);

        let c = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]); // 2x2
        let d = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5], &[0.0, 3.0]]); // 3x2
        let want_abt = c.matmul(&d.transpose());
        assert_eq!(c.matmul_a_bt(&d), want_abt);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Force the parallel path with > PAR_THRESHOLD rows.
        let m = 300;
        let k = 17;
        let n = 23;
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 7) as f32 * 0.25).collect());
        let par = a.matmul(&b);
        // Serial reference.
        let mut serial = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    let v = serial.get(i, j) + a.get(i, kk) * b.get(kk, j);
                    serial.set(i, j, v);
                }
            }
        }
        for i in 0..m {
            for j in 0..n {
                assert!((par.get(i, j) - serial.get(i, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_and_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0]]);
        a.add_assign(&b);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
