//! Integration X1: the executed collectives and the analytic cost models
//! agree on the quantities both can observe — transferred bytes and
//! message (step) counts.
//!
//! The exact half of the pin is `model_transport_counts_match_execution`:
//! the model transport drives the *same* engine schedule the channel
//! transport drives, so its per-rank message and byte counters must equal
//! the executed collective's [`summit_comm::RankTraffic`] to the message —
//! every algorithm, even and uneven chunk splits, p ∈ {2, 3, 4, 8}.

use summit_comm::{
    collectives::{
        binomial_broadcast_into, binomial_reduce, rabenseifner_allreduce,
        recursive_doubling_allreduce, reduce_scatter, ring_allgather, ring_allreduce,
        ring_allreduce_bucketed, tree_allreduce, ReduceOp,
    },
    extended,
    sim::simulate,
    world::World,
    Collective, RankTraffic,
};
use summit_machine::LinkModel;

/// Ring allreduce moves exactly 2(p−1)/p · n elements per rank — the byte
/// term the analytic ring model charges to the link.
#[test]
fn ring_traffic_matches_model_bandwidth_term() {
    for p in [2usize, 3, 5, 8] {
        for n in [16usize, 100, 1024] {
            let (_, stats) = World::run_with_stats(p, |rank| {
                let mut buf = vec![1.0f32; n];
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
            });
            // Total across ranks: p · 2(p−1)/p · n elements × 4 bytes,
            // except chunk rounding: with exact chunking the total is
            // exactly 2(p−1)·n elements.
            assert_eq!(stats.bytes_sent, (8 * (p - 1) * n) as u64, "p={p} n={n}");
            // 2(p−1) steps per rank.
            assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
        }
    }
}

/// Recursive doubling sends log2(p) full buffers per rank — the model's
/// byte term.
#[test]
fn recursive_doubling_traffic_matches_model() {
    for logp in 1u32..4 {
        let p = 1usize << logp;
        let n = 64usize;
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![1.0f32; n];
            recursive_doubling_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        assert_eq!(stats.bytes_sent, (p * logp as usize * n * 4) as u64);
        assert_eq!(stats.messages_sent, (p * logp as usize) as u64);
    }
}

/// Run the executed twin of `c` on a live world and return every rank's
/// transport counters.
fn executed_traffic(c: Collective, p: usize, elems: usize) -> Vec<RankTraffic> {
    World::run(p, move |rank| {
        let me = rank.id();
        let mut buf: Vec<f32> = (0..elems).map(|i| (me * elems + i) as f32).collect();
        match c {
            Collective::RingAllreduce { bucket_elems } => {
                ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket_elems);
            }
            Collective::ReduceScatter => {
                reduce_scatter(rank, &mut buf, ReduceOp::Sum);
            }
            Collective::RingAllgather => ring_allgather(rank, &mut buf),
            Collective::RecursiveDoubling => {
                recursive_doubling_allreduce(rank, &mut buf, ReduceOp::Sum);
            }
            Collective::Rabenseifner => rabenseifner_allreduce(rank, &mut buf, ReduceOp::Sum),
            Collective::BinomialBroadcast { root } => binomial_broadcast_into(rank, &mut buf, root),
            Collective::BinomialReduce { root } => {
                binomial_reduce(rank, &mut buf, ReduceOp::Sum, root);
            }
            Collective::TreeAllreduce => tree_allreduce(rank, &mut buf, ReduceOp::Sum),
            Collective::HierarchicalAllreduce { group_size } => {
                extended::hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, group_size);
            }
            Collective::Alltoall => {
                let send: Vec<Vec<f32>> =
                    (0..p).map(|d| vec![(me * p + d) as f32; elems]).collect();
                let _ = extended::alltoall(rank, send);
            }
            Collective::Scatter { root } => {
                let chunks = (me == root).then(|| (0..p).map(|d| vec![d as f32; elems]).collect());
                let _ = extended::scatter(rank, chunks, root);
            }
            Collective::Gather { root } => {
                let _ = extended::gather(rank, vec![me as f32; elems], root);
            }
        }
        rank.traffic()
    })
}

/// Every collective the engine models, executed and simulated over the
/// same schedule: per-rank message counts and byte volumes must agree
/// **exactly** — not in aggregate, rank by rank.
#[test]
fn model_transport_counts_match_execution_exactly() {
    let link = LinkModel::new(1.5e-6, 10.0e9);
    for p in [2usize, 3, 4, 8] {
        // 24 divides evenly by every p here; 13 exercises uneven chunks
        // and empty tail segments.
        for elems in [24usize, 13] {
            let mut cases = vec![
                Collective::RingAllreduce {
                    bucket_elems: usize::MAX,
                },
                Collective::RingAllreduce { bucket_elems: 5 },
                Collective::ReduceScatter,
                Collective::RingAllgather,
                Collective::BinomialBroadcast { root: p - 1 },
                Collective::BinomialReduce { root: 0 },
                Collective::TreeAllreduce,
                Collective::Alltoall,
                Collective::Scatter { root: 0 },
                Collective::Gather { root: p - 1 },
            ];
            // Recursive doubling folds non-power-of-two worlds into a
            // power-of-two core; Rabenseifner does too but needs the
            // buffer divisible by that core.
            cases.push(Collective::RecursiveDoubling);
            let core = 1usize << (usize::BITS - 1 - p.leading_zeros());
            if elems % core == 0 {
                cases.push(Collective::Rabenseifner);
            }
            for g in [1usize, 2, p] {
                if p % g == 0 {
                    cases.push(Collective::HierarchicalAllreduce { group_size: g });
                }
            }
            cases.dedup();
            for c in cases {
                let predicted = simulate(c, p, elems, link);
                let executed = executed_traffic(c, p, elems);
                for (r, traffic) in executed.iter().enumerate() {
                    assert_eq!(
                        traffic.messages_sent, predicted.per_rank_messages[r],
                        "{c:?} p={p} n={elems} rank {r}: message count"
                    );
                    assert_eq!(
                        traffic.bytes_sent, predicted.per_rank_bytes[r],
                        "{c:?} p={p} n={elems} rank {r}: byte volume"
                    );
                }
            }
        }
    }
}

/// The executed ring's per-rank traffic is independent of p for large p
/// (the saturation behind the paper's "12.5 GB/s algorithm bandwidth").
#[test]
fn ring_per_rank_traffic_saturates() {
    let n = 840usize; // divisible by all p below: exact chunks
    let mut per_rank: Vec<f64> = Vec::new();
    for p in [2usize, 4, 8] {
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![0.5f32; n];
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        per_rank.push(stats.bytes_sent as f64 / p as f64);
    }
    // 2(p-1)/p · n · 4: p=2 → 1·n·4; p=8 → 1.75·n·4. Ratio < 2 and
    // monotonically approaching 2n·4.
    assert!(per_rank.windows(2).all(|w| w[1] > w[0]));
    assert!(per_rank[2] < 2.0 * 840.0 * 4.0);
}
