//! Deterministic fault-injection plane for the communicator.
//!
//! The paper's Table I leads with the fault-detection motif ("detect
//! algorithmic or other failure in execution, send signal for automatic or
//! manual remediation"); at 27,648-GPU scale transient link and rank
//! failures are the norm. This module gives the threads-as-ranks
//! communicator a **seeded, replayable failure model** so the rest of the
//! stack can be chaos-tested:
//!
//! * [`FaultPlan`] — an immutable schedule of [`FaultEvent`]s keyed by
//!   `(src, dst, tag class, step)`. Plans are built explicitly or sampled
//!   from a seed ([`FaultPlan::seeded`]), serialize to JSON
//!   ([`FaultPlan::to_json`]) so a failing chaos case can be archived and
//!   replayed, and fire each event **exactly once** (atomic fired flags), so
//!   a recovery retry of the same step re-executes cleanly.
//! * [`FaultKind`] — the taxonomy: message **drop** (link loss), message
//!   **delay** (congestion), payload **corruption** (bit flip, detected by a
//!   transport checksum), and **rank kill** (node failure; the rank aborts
//!   its current step and must restart from a checkpoint).
//! * [`CommError`] — what the timeout-aware primitives
//!   ([`Rank::recv_timeout`], `try_ring_allreduce_bucketed`,
//!   `RingAllreduceHandle::wait_deadline`) surface instead of hanging.
//! * [`all_agree`] — the control-plane vote recovery is built on: fault
//!   injection **never** touches tags carrying [`CONTROL_BIT`], mirroring
//!   real systems' reliable out-of-band control network (the paper's
//!   "send signal for remediation" path must survive the fault itself).
//!
//! The plane is zero-cost when disabled: a world built by [`World::run`]
//! carries no plan, and every hook is one `Option` test on a field that is
//! `None` — the hot-path counting-allocator test pins that steady-state
//! collectives still allocate nothing.
//!
//! [`Rank::recv_timeout`]: crate::world::Rank::recv_timeout
//! [`World::run`]: crate::world::World::run
//! [`all_agree`]: crate::faults::all_agree

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::world::Rank;

/// Tag bit reserved for control-plane traffic (votes, recovery
/// coordination). The fault plane never drops, delays, or corrupts a
/// message whose tag carries this bit, and transport checksums are not
/// attached to it either. Blocking collective tags (`collective << 32`,
/// small ids) and nonblocking tags (`1 << 63 | collective << 13`, bucket-
/// scale ids) never reach it.
pub const CONTROL_BIT: u64 = 1 << 62;

/// Errors surfaced by the timeout-aware communicator primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived before the deadline.
    Timeout {
        /// Rank the receive was posted against.
        from: usize,
        /// Tag the receive was posted against.
        tag: u64,
    },
    /// A payload arrived whose transport checksum does not match — the
    /// message was corrupted in flight.
    Corrupt {
        /// Sending rank.
        from: usize,
        /// Message tag.
        tag: u64,
    },
    /// This rank was killed by the fault plan: it must abandon the step
    /// and restart from its last checkpoint.
    RankKilled {
        /// The killed rank (always the caller).
        rank: usize,
    },
    /// A peer rank disconnected (its thread exited) while a receive was
    /// posted against it.
    Disconnected {
        /// The vanished rank.
        from: usize,
    },
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for rank {from} tag {tag:#x}")
            }
            CommError::Corrupt { from, tag } => {
                write!(f, "corrupt payload from rank {from} tag {tag:#x}")
            }
            CommError::RankKilled { rank } => write!(f, "rank {rank} killed by fault plan"),
            CommError::Disconnected { from } => write!(f, "rank {from} disconnected"),
        }
    }
}

impl std::error::Error for CommError {}

/// Which tag namespace an event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagClass {
    /// Any data-plane tag (blocking or nonblocking). Control-plane tags are
    /// exempt regardless.
    Any,
    /// Blocking-collective tags with the given collective id (the
    /// `collective << 32` namespace of `collectives::tag_seg`).
    Blocking(u64),
    /// Nonblocking-handle tags with the given collective id (the
    /// `NB_BIT | id << 13` namespace of `RingAllreduceHandle`).
    Nonblocking(u64),
}

impl TagClass {
    /// Whether a concrete wire tag falls in this class. Control-plane tags
    /// never match any class.
    pub fn matches(self, tag: u64) -> bool {
        if tag & CONTROL_BIT != 0 {
            return false;
        }
        const NB_BIT: u64 = 1 << 63;
        match self {
            TagClass::Any => true,
            TagClass::Blocking(id) => tag & NB_BIT == 0 && tag >> 32 == id,
            TagClass::Nonblocking(id) => tag & NB_BIT != 0 && ((tag & !NB_BIT) >> 13) == id,
        }
    }

    fn json(self) -> String {
        match self {
            TagClass::Any => "{\"class\":\"any\"}".to_string(),
            TagClass::Blocking(id) => format!("{{\"class\":\"blocking\",\"id\":{id}}}"),
            TagClass::Nonblocking(id) => format!("{{\"class\":\"nonblocking\",\"id\":{id}}}"),
        }
    }
}

/// The fault taxonomy (paper Table I, row 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The message is silently discarded; the receiver's timeout fires.
    Drop,
    /// Delivery is delayed by the given number of milliseconds (the sender
    /// stalls, modeling congestion on the egress link).
    Delay(u64),
    /// One payload element has a mantissa bit flipped after the transport
    /// checksum is computed, so the receiver detects the corruption.
    Corrupt,
    /// The rank abandons its current step at its next data-plane
    /// operation, as if the node died and restarted from a checkpoint.
    Kill,
}

impl FaultKind {
    fn json(self) -> String {
        match self {
            FaultKind::Drop => "{\"kind\":\"drop\"}".to_string(),
            FaultKind::Delay(ms) => format!("{{\"kind\":\"delay\",\"ms\":{ms}}}"),
            FaultKind::Corrupt => "{\"kind\":\"corrupt\"}".to_string(),
            FaultKind::Kill => "{\"kind\":\"kill\"}".to_string(),
        }
    }
}

/// One scheduled fault: fire `kind` on messages `src → dst` in `tag_class`
/// at application step `step`, exactly once.
///
/// For [`FaultKind::Kill`] only `src` (the killed rank) and `step` are
/// consulted.
#[derive(Debug)]
pub struct FaultEvent {
    /// Sending rank (or the killed rank for [`FaultKind::Kill`]).
    pub src: usize,
    /// Destination rank (ignored for kills).
    pub dst: usize,
    /// Tag namespace the event applies to (ignored for kills).
    pub tag_class: TagClass,
    /// Application step (see [`Rank::set_fault_step`]) the event fires at.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
    fired: AtomicBool,
}

impl FaultEvent {
    fn new(src: usize, dst: usize, tag_class: TagClass, step: u64, kind: FaultKind) -> Self {
        FaultEvent {
            src,
            dst,
            tag_class,
            step,
            kind,
            fired: AtomicBool::new(false),
        }
    }

    /// Whether the event has already fired (events are one-shot so a
    /// recovery retry of the same step runs clean).
    pub fn has_fired(&self) -> bool {
        self.fired.load(Ordering::Relaxed)
    }

    /// Atomically claim the event; true exactly once.
    fn claim(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }

    fn json(&self) -> String {
        format!(
            "{{\"src\":{},\"dst\":{},\"tag_class\":{},\"step\":{},\"fault\":{}}}",
            self.src,
            self.dst,
            self.tag_class.json(),
            self.step,
            self.kind.json()
        )
    }
}

/// Event rates for [`FaultPlan::seeded`], per (step, directed rank pair).
#[derive(Debug, Clone, Copy)]
pub struct FaultRates {
    /// Probability of a message drop.
    pub drop: f64,
    /// Probability of a delivery delay.
    pub delay: f64,
    /// Delay magnitude in milliseconds when a delay is sampled.
    pub delay_ms: u64,
    /// Probability of a payload corruption.
    pub corrupt: f64,
    /// Probability (per step, per rank) of a rank kill.
    pub kill: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        FaultRates {
            drop: 0.02,
            delay: 0.05,
            delay_ms: 2,
            corrupt: 0.02,
            kill: 0.005,
        }
    }
}

/// A deterministic, seeded schedule of communication faults.
///
/// Immutable once built; shared by every rank of a world via
/// [`World::run_with_faults`](crate::world::World::run_with_faults). Event
/// firing state is the only mutability (atomic one-shot flags), so the same
/// plan value drives an identical fault sequence every run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    /// The seed the plan was sampled from, if any (recorded for the JSON
    /// artifact so failures are replayable).
    seed: Option<u64>,
}

impl FaultPlan {
    /// An empty plan (all hooks enabled, nothing ever fires) — used to
    /// measure the cost of the enabled-but-idle fault plane.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Schedule a message drop.
    #[must_use]
    pub fn drop_message(mut self, src: usize, dst: usize, tag_class: TagClass, step: u64) -> Self {
        self.events
            .push(FaultEvent::new(src, dst, tag_class, step, FaultKind::Drop));
        self
    }

    /// Schedule a delivery delay of `ms` milliseconds.
    #[must_use]
    pub fn delay_message(
        mut self,
        src: usize,
        dst: usize,
        tag_class: TagClass,
        step: u64,
        ms: u64,
    ) -> Self {
        self.events.push(FaultEvent::new(
            src,
            dst,
            tag_class,
            step,
            FaultKind::Delay(ms),
        ));
        self
    }

    /// Schedule a payload corruption.
    #[must_use]
    pub fn corrupt_message(
        mut self,
        src: usize,
        dst: usize,
        tag_class: TagClass,
        step: u64,
    ) -> Self {
        self.events.push(FaultEvent::new(
            src,
            dst,
            tag_class,
            step,
            FaultKind::Corrupt,
        ));
        self
    }

    /// Schedule a rank kill at `step`.
    #[must_use]
    pub fn kill_rank(mut self, rank: usize, step: u64) -> Self {
        self.events.push(FaultEvent::new(
            rank,
            rank,
            TagClass::Any,
            step,
            FaultKind::Kill,
        ));
        self
    }

    /// Sample a random plan: for each of `steps` steps and each directed
    /// rank pair of a `p`-rank world, draw drop/delay/corrupt events at the
    /// given rates (and kills per rank). Deterministic in `seed`.
    pub fn seeded(seed: u64, p: usize, steps: u64, rates: &FaultRates) -> Self {
        // SplitMix64: tiny, deterministic, and dependency-free, so plans
        // re-sample identically even if the vendored rand stub evolves.
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next_unit = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        };
        let mut plan = FaultPlan {
            events: Vec::new(),
            seed: Some(seed),
        };
        for step in 0..steps {
            for src in 0..p {
                for dst in 0..p {
                    if src == dst {
                        continue;
                    }
                    if next_unit() < rates.drop {
                        plan = plan.drop_message(src, dst, TagClass::Any, step);
                    }
                    if next_unit() < rates.delay {
                        plan = plan.delay_message(src, dst, TagClass::Any, step, rates.delay_ms);
                    }
                    if next_unit() < rates.corrupt {
                        plan = plan.corrupt_message(src, dst, TagClass::Any, step);
                    }
                }
                if next_unit() < rates.kill {
                    plan = plan.kill_rank(src, step);
                }
            }
        }
        plan
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// How many events have fired so far.
    pub fn fired_count(&self) -> usize {
        self.events.iter().filter(|e| e.has_fired()).count()
    }

    /// Serialize the plan to JSON (hand-rolled: the vendored serde is a
    /// marker-only stub). This is the artifact a failing chaos test
    /// archives so the exact fault schedule can be replayed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        match self.seed {
            Some(s) => out.push_str(&format!("\"seed\":{s},")),
            None => out.push_str("\"seed\":null,"),
        }
        out.push_str("\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&e.json());
        }
        out.push_str("]}");
        out
    }

    fn find(
        &self,
        src: usize,
        dst: usize,
        tag: u64,
        step: u64,
        want_kill: bool,
    ) -> Option<&FaultEvent> {
        self.events.iter().find(|e| {
            let is_kill = e.kind == FaultKind::Kill;
            is_kill == want_kill
                && e.step == step
                && e.src == src
                && !e.has_fired()
                && (is_kill || (e.dst == dst && e.tag_class.matches(tag)))
        })
    }
}

/// What a send-side fault hook decided about one outgoing message.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum SendVerdict {
    /// Deliver unchanged.
    Deliver,
    /// Discard the message.
    Drop,
    /// Sleep `Duration`, then deliver.
    DelayThenDeliver(Duration),
    /// Deliver with the payload corrupted after checksumming.
    CorruptThenDeliver,
}

/// Per-rank handle on the shared [`FaultPlan`]: the rank's id, its current
/// application step, and counters. Owned by one rank thread (Cell-based);
/// the plan itself is shared and atomic.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: Arc<FaultPlan>,
    rank: usize,
    step: std::cell::Cell<u64>,
    injected: Arc<AtomicU64>,
}

impl FaultState {
    pub(crate) fn new(plan: Arc<FaultPlan>, rank: usize, injected: Arc<AtomicU64>) -> Self {
        FaultState {
            plan,
            rank,
            step: std::cell::Cell::new(0),
            injected,
        }
    }

    pub(crate) fn set_step(&self, step: u64) {
        self.step.set(step);
    }

    /// Consult the plan for an outgoing message. Claims (fires) at most one
    /// matching event.
    pub(crate) fn on_send(&self, dst: usize, tag: u64) -> SendVerdict {
        if tag & CONTROL_BIT != 0 {
            return SendVerdict::Deliver;
        }
        let step = self.step.get();
        if let Some(e) = self.plan.find(self.rank, dst, tag, step, false) {
            if e.claim() {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return match e.kind {
                    FaultKind::Drop => SendVerdict::Drop,
                    FaultKind::Delay(ms) => {
                        SendVerdict::DelayThenDeliver(Duration::from_millis(ms))
                    }
                    FaultKind::Corrupt => SendVerdict::CorruptThenDeliver,
                    FaultKind::Kill => unreachable!("kills are matched separately"),
                };
            }
        }
        SendVerdict::Deliver
    }

    /// Whether this rank is scheduled to die at its current step. Claims
    /// the kill event (one-shot: after recovery the "restarted" rank lives).
    pub(crate) fn poll_kill(&self) -> Result<(), CommError> {
        let step = self.step.get();
        if let Some(e) = self.plan.find(self.rank, self.rank, 0, step, true) {
            if e.claim() {
                self.injected.fetch_add(1, Ordering::Relaxed);
                return Err(CommError::RankKilled { rank: self.rank });
            }
        }
        Ok(())
    }
}

/// Control-plane consensus on step success: every rank contributes `ok` and
/// receives the conjunction over all ranks. Runs on [`CONTROL_BIT`] tags,
/// which the fault plane never touches, so the vote itself is reliable —
/// the executable analogue of the out-of-band "send signal for remediation"
/// channel in the paper's fault motif.
///
/// `round` disambiguates successive votes; reuse across recovery attempts
/// is safe because every vote is fully consumed before the next begins.
pub fn all_agree(rank: &Rank, ok: bool, round: u64) -> bool {
    let p = rank.size();
    if p == 1 {
        return ok;
    }
    let tag = CONTROL_BIT | (round & 0xfff);
    let me = rank.id();
    let vote = [if ok { 1.0f32 } else { 0.0 }];
    for peer in 0..p {
        if peer != me {
            rank.send_from(peer, tag, &vote);
        }
    }
    let mut all = ok;
    for peer in 0..p {
        if peer != me {
            rank.recv_with(peer, tag, |payload| {
                if payload[0] == 0.0 {
                    all = false;
                }
            });
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn tag_classes_partition_the_namespace() {
        let blocking = 3u64 << 32 | 17; // collective 3, step 17
        let nb = (1u64 << 63) | (9 << 13) | 4; // NB collective 9
        let control = CONTROL_BIT | 5;
        assert!(TagClass::Any.matches(blocking));
        assert!(TagClass::Any.matches(nb));
        assert!(!TagClass::Any.matches(control));
        assert!(TagClass::Blocking(3).matches(blocking));
        assert!(!TagClass::Blocking(4).matches(blocking));
        assert!(!TagClass::Blocking(3).matches(nb));
        assert!(TagClass::Nonblocking(9).matches(nb));
        assert!(!TagClass::Nonblocking(8).matches(nb));
        assert!(!TagClass::Nonblocking(9).matches(blocking));
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let rates = FaultRates::default();
        let a = FaultPlan::seeded(42, 4, 10, &rates);
        let b = FaultPlan::seeded(42, 4, 10, &rates);
        assert_eq!(a.to_json(), b.to_json());
        let c = FaultPlan::seeded(43, 4, 10, &rates);
        assert_ne!(a.to_json(), c.to_json());
    }

    #[test]
    fn events_fire_exactly_once() {
        let plan = FaultPlan::empty().drop_message(0, 1, TagClass::Any, 7);
        let state = FaultState::new(Arc::new(plan), 0, Arc::new(AtomicU64::new(0)));
        state.set_step(7);
        assert_eq!(state.on_send(1, 0), SendVerdict::Drop);
        // One-shot: the retry of the same step delivers.
        assert_eq!(state.on_send(1, 0), SendVerdict::Deliver);
    }

    #[test]
    fn events_respect_step_and_pair_keys() {
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 1, TagClass::Blocking(2), 3));
        let state = FaultState::new(Arc::clone(&plan), 0, Arc::new(AtomicU64::new(0)));
        // Wrong step.
        state.set_step(2);
        assert_eq!(state.on_send(1, 2 << 32), SendVerdict::Deliver);
        state.set_step(3);
        // Wrong destination.
        assert_eq!(state.on_send(2, 2 << 32), SendVerdict::Deliver);
        // Wrong collective id.
        assert_eq!(state.on_send(1, 5 << 32), SendVerdict::Deliver);
        // Control tags are always exempt.
        assert_eq!(
            state.on_send(1, CONTROL_BIT | 2 << 32),
            SendVerdict::Deliver
        );
        // Exact match fires.
        assert_eq!(state.on_send(1, 2 << 32), SendVerdict::Drop);
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn kill_is_one_shot_per_plan() {
        let state = FaultState::new(
            Arc::new(FaultPlan::empty().kill_rank(1, 5)),
            1,
            Arc::new(AtomicU64::new(0)),
        );
        state.set_step(4);
        assert!(state.poll_kill().is_ok());
        state.set_step(5);
        assert_eq!(state.poll_kill(), Err(CommError::RankKilled { rank: 1 }));
        // The "restarted" rank replays step 5 without dying again.
        assert!(state.poll_kill().is_ok());
    }

    #[test]
    fn json_roundtrips_the_schedule_shape() {
        let plan = FaultPlan::seeded(7, 3, 4, &FaultRates::default());
        let json = plan.to_json();
        assert!(json.starts_with("{\"seed\":7,"));
        assert_eq!(
            json.matches("{\"src\":").count(),
            plan.events().len(),
            "{json}"
        );
        let built = FaultPlan::empty()
            .drop_message(0, 1, TagClass::Any, 2)
            .delay_message(1, 0, TagClass::Blocking(4), 3, 10)
            .corrupt_message(2, 1, TagClass::Nonblocking(6), 1)
            .kill_rank(2, 9);
        let j = built.to_json();
        assert!(j.contains("\"seed\":null"));
        assert!(j.contains("\"kind\":\"drop\""));
        assert!(j.contains("\"kind\":\"delay\",\"ms\":10"));
        assert!(j.contains("\"kind\":\"corrupt\""));
        assert!(j.contains("\"kind\":\"kill\""));
    }

    #[test]
    fn votes_conjoin_across_ranks() {
        for dissenter in [None, Some(0usize), Some(2)] {
            let out = World::run(3, |r| {
                let ok = Some(r.id()) != dissenter;
                all_agree(r, ok, 0)
            });
            let want = dissenter.is_none();
            assert!(out.iter().all(|&v| v == want), "dissenter {dissenter:?}");
        }
    }

    #[test]
    fn repeated_votes_stay_consistent() {
        let out = World::run(4, |r| {
            let mut results = Vec::new();
            for round in 0..8u64 {
                let ok = !(round == 3 && r.id() == 2);
                results.push(all_agree(r, ok, round));
            }
            results
        });
        for votes in out {
            for (round, v) in votes.iter().enumerate() {
                assert_eq!(*v, round != 3, "round {round}");
            }
        }
    }
}
