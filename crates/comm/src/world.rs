//! Threads-as-ranks execution environment.
//!
//! [`World::run`] spawns `p` scoped threads, each holding a [`Rank`] handle
//! with point-to-point channels to every other rank and a shared barrier.
//! Channels are unbounded, so the classic "everyone sends right then
//! receives left" ring step cannot deadlock.
//!
//! Messages carry a tag so that out-of-order sends between the same pair
//! (e.g. two collectives back to back) are matched correctly: `recv` pulls
//! messages from the in-order channel and parks any message whose tag does
//! not match in a per-source pending queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use std::cell::RefCell;

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged message between ranks.
#[derive(Debug)]
struct Envelope {
    tag: u64,
    payload: Vec<f32>,
}

/// A handle held by one rank (thread) of a [`World`].
pub struct Rank {
    id: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
    pending: Vec<RefCell<VecDeque<Envelope>>>,
    barrier: Arc<Barrier>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
}

impl Rank {
    /// This rank's index in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to rank `to` with `tag`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equals this rank.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<f32>) {
        assert!(to < self.size, "destination rank out of range");
        assert_ne!(to, self.id, "self-sends are not supported");
        self.bytes_sent
            .fetch_add((payload.len() * 4) as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.senders[to]
            .send(Envelope { tag, payload })
            .expect("receiver hung up: a peer rank panicked");
    }

    /// Receive the next message from rank `from` carrying `tag`, blocking
    /// until it arrives. Messages with other tags are buffered.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equals this rank, or the sending
    /// rank disconnected (panicked) before sending.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f32> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            return pending.remove(pos).expect("position just found").payload;
        }
        loop {
            let env = self.receivers[from]
                .recv()
                .expect("sender hung up: a peer rank panicked");
            if env.tag == tag {
                return env.payload;
            }
            pending.push_back(env);
        }
    }

    /// Simultaneously send to `to` and receive from `from` (the ring step).
    pub fn send_recv(&self, to: usize, from: usize, tag: u64, payload: Vec<f32>) -> Vec<f32> {
        self.send(to, tag, payload);
        self.recv(from, tag)
    }

    /// Block until every rank has reached this barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Aggregate traffic statistics for one [`World::run`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total payload bytes sent by all ranks.
    pub bytes_sent: u64,
    /// Total messages sent by all ranks.
    pub messages_sent: u64,
}

/// A world of `p` ranks executed as scoped threads.
pub struct World;

impl World {
    /// Run `f` on `p` ranks and collect each rank's return value, ordered by
    /// rank id.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank's closure panics.
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        Self::run_with_stats(p, f).0
    }

    /// Like [`World::run`] but also returns aggregate traffic statistics,
    /// which tests use to cross-validate the analytic cost models.
    pub fn run_with_stats<F, R>(p: usize, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        assert!(p > 0, "world size must be positive");
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let messages_sent = Arc::new(AtomicU64::new(0));
        // channels[src][dst]
        let mut txs: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(p);
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> = (0..p)
            .map(|_| (0..p).map(|_| None).collect())
            .collect();
        for src in 0..p {
            let mut row = Vec::with_capacity(p);
            for (dst, rx_row) in rxs.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                rx_row[src] = Some(rx);
                let _ = dst;
            }
            txs.push(row);
        }
        let barrier = Arc::new(Barrier::new(p));
        let mut ranks: Vec<Rank> = Vec::with_capacity(p);
        for (id, (senders, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            let receivers = rx_row
                .into_iter()
                .map(|r| r.expect("every channel endpoint was created"))
                .collect();
            ranks.push(Rank {
                id,
                size: p,
                senders,
                receivers,
                pending: (0..p).map(|_| RefCell::new(VecDeque::new())).collect(),
                barrier: Arc::clone(&barrier),
                bytes_sent: Arc::clone(&bytes_sent),
                messages_sent: Arc::clone(&messages_sent),
            });
        }

        let results: Vec<R> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|rank| scope.spawn(move || f(&rank)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("a rank panicked"))
                .collect()
        });
        let stats = TrafficStats {
            bytes_sent: bytes_sent.load(Ordering::Relaxed),
            messages_sent: messages_sent.load(Ordering::Relaxed),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |r| {
            assert_eq!(r.size(), 1);
            r.barrier();
            r.id()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                r.send(1, 7, vec![1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                r.send(0, 8, got.iter().map(|x| x * 2.0).collect());
                vec![]
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tags_demultiplex_out_of_order() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, vec![2.0]);
                r.send(1, 1, vec![1.0]);
                vec![]
            } else {
                // Receive tag 1 first: the tag-2 message must be parked.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn ring_send_recv_rotates() {
        let p = 5;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let got = r.send_recv(right, left, 0, vec![r.id() as f32]);
            got[0]
        });
        for (id, v) in out.iter().enumerate() {
            assert_eq!(*v, ((id + p - 1) % p) as f32);
        }
    }

    #[test]
    fn traffic_stats_count_payload_bytes() {
        let (_, stats) = World::run_with_stats(2, |r| {
            if r.id() == 0 {
                r.send(1, 0, vec![0.0; 100]);
            } else {
                let _ = r.recv(0, 0);
            }
        });
        assert_eq!(stats.bytes_sent, 400);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |r| {
            counter.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn self_send_rejected() {
        World::run(2, |r| {
            if r.id() == 0 {
                r.send(0, 0, vec![]);
            }
        });
    }
}
