//! Plan the parallelization of beyond-BERT models on Summit.
//!
//! Run with `cargo run --example scaling_planner`.
//!
//! The paper's Section VI-B closes with: data-parallel training is
//! communication-bound past BERT-large, and "generic model parallelization
//! is essential for good scaling efficiency on future platforms". This
//! example walks the transformer scaling ladder and shows where pure data
//! parallelism runs out of memory, what hybrid (data × tensor × pipeline)
//! decomposition the planner picks, and how the communication-bound
//! crossover moves with gradient precision.

use summit_core::prelude::*;
use summit_perf::parallelism::{HybridPlanner, ParallelStrategy};
use summit_workloads::GradPrecision;

fn main() {
    // ---- 1. The crossover, and how precision moves it ------------------
    let fp32 = CommCrossover::summit_bert_anchor();
    let fp16 = CommCrossover {
        precision: GradPrecision::Fp16,
        ..fp32
    };
    println!("Communication-bound crossover on Summit's 25 GB/s fabric:");
    println!(
        "  fp32 gradients: {:.0} M parameters (BERT-large = 345 M)",
        fp32.crossover_params() / 1e6
    );
    println!(
        "  fp16 gradients: {:.0} M parameters",
        fp16.crossover_params() / 1e6
    );

    // ---- 2. The memory wall and the hybrid planner ---------------------
    let planner = HybridPlanner::summit(256, 30.0e12);
    println!(
        "\nPlanning on {} GPUs (256 nodes), Adam optimizer state, activation \
         checkpointing:",
        planner.gpus
    );
    println!(
        "{:<12} {:>10} {:>10} {:>24} {:>14} {:>10}",
        "model", "params", "pure DP?", "best dp x tp x pp", "samples/s", "overhead"
    );
    for (name, params) in [
        ("BERT-large", 0.345e9),
        ("GPT-1.5B", 1.5e9),
        ("GPT-10B", 10.0e9),
        ("GPT-100B", 100.0e9),
    ] {
        let w = Workload::transformer_lm(name, params);
        let pure = planner.estimate(&w, ParallelStrategy::pure_data(planner.gpus));
        match planner.best(&w) {
            Some(best) => println!(
                "{:<12} {:>8.1}M {:>10} {:>24} {:>14.1} {:>9.1}%",
                name,
                params / 1e6,
                if pure.is_some() { "fits" } else { "OOM" },
                format!(
                    "{} x {} x {}",
                    best.strategy.data, best.strategy.tensor, best.strategy.pipeline
                ),
                best.throughput,
                best.overhead_fraction * 100.0
            ),
            None => println!(
                "{name:<12} {:>8.1}M  infeasible at this scale",
                params / 1e6
            ),
        }
    }

    // ---- 3. Gradient compression as the other lever --------------------
    use summit_dl::compression::GradCompression;
    println!("\nGradient message sizes for BERT-large under compression:");
    let n = 345_000_000usize;
    for scheme in [
        GradCompression::None,
        GradCompression::Fp16,
        GradCompression::TopK { fraction: 0.01 },
    ] {
        println!(
            "  {:?}: {:.0} MB ({}x reduction)",
            scheme,
            scheme.message_bytes(n) / 1e6,
            scheme.reduction_factor(n).round()
        );
    }
    println!(
        "\n(Convergence under fp16 and top-k with error feedback is verified in \
         summit-dl's compression tests.)"
    );
}
