//! The paper's AI/ML usage survey, reproduced.
//!
//! *Learning to Scale the Summit* classifies 662 Summit project-years by
//! allocation program, science domain, AI/ML usage status, ML method, and
//! "AI motif" (Tables I–II), then reports the aggregations of Figures 1–6
//! and the Gordon Bell finalist counts of Table III. This crate contains
//!
//! * [`taxonomy`] — the motif, domain/subdomain, usage-status and ML-method
//!   classifications, with the full Table I definition/example text;
//! * [`gordon_bell`] — Table III and the ten AI/ML finalist projects of
//!   Section IV-A as structured data;
//! * [`portfolio`] — a deterministic synthetic portfolio whose marginals
//!   match every number the paper reports (see the module docs for the full
//!   constraint list);
//! * [`analytics`] — the aggregation functions that regenerate Figures 1–6
//!   from the portfolio, plus ASCII renderers used by the `repro` binary.
//!
//! # Example
//!
//! ```
//! use summit_survey::{analytics, portfolio};
//!
//! let records = portfolio::build();
//! let fig1 = analytics::overall_usage(&records);
//! // Paper: one third of projects actively used AI/ML.
//! assert!((fig1.active_pct() - 0.33).abs() < 0.01);
//! ```

pub mod analytics;
pub mod export;
pub mod gordon_bell;
pub mod mix;
pub mod portfolio;
pub mod taxonomy;

pub use analytics::UsageCounts;
pub use gordon_bell::{ai_finalists, table3, GbFinalist};
pub use mix::{job_mix, kind_for_motif};
pub use portfolio::{build as build_portfolio, ProjectRecord};
pub use taxonomy::{Domain, MlMethod, Motif, UsageStatus};
