//! Shared helpers for the summit-ai benchmark harness.
//!
//! The actual benchmarks live in `benches/` (one criterion target per paper
//! table/figure family plus the DESIGN.md ablations); the `repro` binary
//! (`src/bin/repro.rs`) prints every reproduced artifact. This library only
//! hosts small shared utilities so the bench targets stay declarative.

pub mod harness;

/// Node counts used by every scaling sweep: powers of two to full Summit.
pub const NODE_SWEEP: [u32; 8] = [1, 8, 64, 256, 1024, 2048, 4096, 4608];

/// Message sizes (bytes) used by the communication sweeps: 4 KB to 1.4 GB
/// (BERT-large's gradient).
pub const MESSAGE_SWEEP: [f64; 6] = [4.0e3, 1.0e6, 25.0e6, 100.0e6, 400.0e6, 1.4e9];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_sorted_and_in_range() {
        assert!(NODE_SWEEP.windows(2).all(|w| w[0] < w[1]));
        assert!(NODE_SWEEP.last().copied() == Some(4608));
        assert!(MESSAGE_SWEEP.windows(2).all(|w| w[0] < w[1]));
    }
}
