//! The paper's Section IV-B extreme-scale case studies, calibrated.
//!
//! Each case study pairs a workload from the zoo with a [`ScalingModel`]
//! whose free parameters (communication overlap, per-step software and I/O
//! overhead coefficients) are **fixed constants chosen once** to reproduce
//! the numbers the paper reports, with the physical terms (compute time,
//! allreduce bandwidth, filesystem bandwidth) coming straight from the
//! workload and machine models. The constants and the sentence they
//! calibrate against are documented on each constructor; regression tests
//! pin the predictions to the reported values.

use serde::Serialize;
use summit_workloads::Workload;

use crate::model::{IoMode, ScalingModel};

/// Compute/communication overlap fraction measured on this repo's own
/// data-parallel trainer: `1 − exposed_overlap / comm_serial` from the
/// `gradient_fusion` overlap sweep in `summit-bench` (MlpSpec(64,[256;4],4),
/// ~0.97 MB of fp32 gradients, p = 4 thread ranks, 256 KB fusion buckets,
/// best of 3 trials). The overlapped trainer launches each fusion bucket's
/// nonblocking ring allreduce as backpropagation finishes the bucket's
/// layers, so this is executed overlap, not a model parameter.
///
/// It anchors the Laanait calibration below: their "novel optimizations for
/// gradient reduction" are modelled as `overlap: 0.5`, and a generic
/// bucket-overlap implementation with no workload tuning already hides
/// ~0.19 of communication — the calibrated value sits plausibly above what
/// the naive mechanism achieves, rather than being a free fudge factor.
pub const MEASURED_TRAINER_OVERLAP: f64 = 0.19;

/// One Section IV-B case study.
#[derive(Debug, Clone, Serialize)]
pub struct CaseStudy {
    /// Project name as cited in the paper.
    pub name: &'static str,
    /// The paper sentence(s) this case reproduces.
    pub reference: &'static str,
    /// Calibrated scaling model.
    pub model: ScalingModel,
    /// Node count of the reported run.
    pub nodes: u32,
    /// Base node count the reported efficiency is relative to.
    pub base_nodes: u32,
    /// Reported parallel efficiency, if the paper gives one.
    pub reported_efficiency: Option<f64>,
    /// Reported sustained/peak FLOP rate, if the paper gives one.
    pub reported_flops: Option<f64>,
}

/// Model prediction next to the reported figure.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CaseStudyResult {
    /// Case study name.
    pub name: &'static str,
    /// Nodes evaluated.
    pub nodes: u32,
    /// Predicted parallel efficiency.
    pub predicted_efficiency: f64,
    /// Reported efficiency (if any).
    pub reported_efficiency: Option<f64>,
    /// Predicted sustained FLOP rate.
    pub predicted_flops: f64,
    /// Reported FLOP rate (if any).
    pub reported_flops: Option<f64>,
}

impl CaseStudy {
    /// Kurth et al. (GB/2018): climate segmentation with modified
    /// DeepLabv3+, LARC, gradient lag, fp16 gradients, NVMe-staged input.
    /// Paper: "Scaling to 4560 nodes results in peak 1.13 mixed precision
    /// Exaflops and parallel efficiency of 90.7%."
    ///
    /// Calibration: overlap 0 (gradient lag already accounted in the
    /// bandwidth-only comm term), software overhead 0.277 ms·ln(n).
    pub fn kurth() -> Self {
        CaseStudy {
            name: "Kurth et al. climate (DeepLabv3+)",
            reference: "4,560 nodes, 1.13 EF peak, 90.7% parallel efficiency",
            model: ScalingModel {
                overlap: 0.0,
                overhead_per_ln_node: 2.77e-4,
                io: IoMode::LocalNvme,
                ..ScalingModel::summit_defaults(Workload::deeplabv3plus())
            },
            nodes: 4560,
            base_nodes: 1,
            reported_efficiency: Some(0.907),
            reported_flops: Some(1.13e18),
        }
    }

    /// Yang et al.: physics-informed GAN for stochastic PDEs.
    /// Paper: "over 1.2 mixed precision Exaflops performance on 4584 Summit
    /// nodes at 93% efficiency."
    ///
    /// Calibration: the GAN's model-parallel coordination appears as a
    /// 0.76 ms·ln(n) per-step overhead.
    pub fn yang() -> Self {
        CaseStudy {
            name: "Yang et al. PI-GAN (subsurface flow)",
            reference: "4,584 nodes, >1.2 EF, 93% efficiency",
            model: ScalingModel {
                overlap: 0.0,
                overhead_per_ln_node: 7.6e-4,
                ..ScalingModel::summit_defaults(Workload::pi_gan())
            },
            nodes: 4584,
            base_nodes: 1,
            reported_efficiency: Some(0.93),
            reported_flops: Some(1.2e18),
        }
    }

    /// Laanait et al.: FC-DenseNet for electron-microscopy inversion.
    /// Paper: "global batch size 27,600 ... scalability to 4600 nodes and
    /// peak 2.15 mixed precision ExaFlops."
    ///
    /// Calibration: their "novel optimizations for gradient reduction" are
    /// modelled as 50% compute/communication overlap.
    pub fn laanait() -> Self {
        CaseStudy {
            name: "Laanait et al. microscopy (FC-DenseNet)",
            reference: "4,600 nodes, 2.15 EF peak, global batch 27,600",
            model: ScalingModel {
                overlap: 0.5,
                ..ScalingModel::summit_defaults(Workload::fc_densenet())
            },
            nodes: 4600,
            base_nodes: 1,
            reported_efficiency: None,
            reported_flops: Some(2.15e18),
        }
    }

    /// Khan et al.: WaveNet for black-hole merger parameters with LAMB.
    /// Paper: "achieving 80% scaling efficiency from 8 to 1024 nodes."
    ///
    /// Calibration: full α–β model (latency exposed at scale) plus
    /// 1.056 ms·ln(n) software overhead (LAMB bookkeeping, input pipeline).
    pub fn khan() -> Self {
        CaseStudy {
            name: "Khan et al. black holes (WaveNet)",
            reference: "80% scaling efficiency from 8 to 1,024 nodes (LAMB)",
            model: ScalingModel {
                overlap: 0.0,
                include_latency: true,
                overhead_per_ln_node: 1.056e-3,
                ..ScalingModel::summit_defaults(Workload::wavenet_gw())
            },
            nodes: 1024,
            base_nodes: 8,
            reported_efficiency: Some(0.80),
            reported_flops: None,
        }
    }

    /// Blanchard et al. (GB/2021 COVID): BERT on SMILES with LAMB, gradient
    /// accumulation, global batch 5.8 M. Paper: "Parallel scaling from 1 to
    /// 4032 nodes is 68%; without I/O costs the figure is 83.3%. Peak
    /// performance is 603 mixed precision PF at 4032 nodes."
    ///
    /// Calibration: 13.19 ms·ln(n) software overhead and 35.4 ms·ln(n) I/O
    /// overhead (tokenized-shard loading and checkpointing; the raw SMILES
    /// byte demand itself is tiny).
    pub fn blanchard() -> Self {
        CaseStudy {
            name: "Blanchard et al. drug LM (BERT-SMILES)",
            reference: "1→4,032 nodes 68% (83.3% w/o I/O), 603 PF peak",
            model: ScalingModel {
                overlap: 0.0,
                overhead_per_ln_node: 1.319e-2,
                io: IoMode::SharedFs,
                io_overhead_per_ln_node: 3.543e-2,
                ..ScalingModel::summit_defaults(Workload::bert_smiles())
            },
            nodes: 4032,
            base_nodes: 1,
            reported_efficiency: Some(0.68),
            reported_flops: Some(603.0e15),
        }
    }

    /// The Blanchard case with I/O costs removed — the paper's "without I/O
    /// costs the figure is 83.3%".
    pub fn blanchard_no_io() -> Self {
        let mut cs = CaseStudy::blanchard();
        cs.name = "Blanchard et al. drug LM (no I/O)";
        cs.reference = "1→4,032 nodes, 83.3% without I/O costs";
        cs.model.io = IoMode::InMemory;
        cs.model.io_overhead_per_ln_node = 0.0;
        cs.reported_efficiency = Some(0.833);
        cs.reported_flops = None;
        cs
    }

    /// All five case studies (plus the Blanchard no-I/O variant).
    pub fn all() -> Vec<CaseStudy> {
        vec![
            CaseStudy::kurth(),
            CaseStudy::yang(),
            CaseStudy::laanait(),
            CaseStudy::khan(),
            CaseStudy::blanchard(),
            CaseStudy::blanchard_no_io(),
        ]
    }

    /// Evaluate the model at the reported scale.
    pub fn evaluate(&self) -> CaseStudyResult {
        CaseStudyResult {
            name: self.name,
            nodes: self.nodes,
            predicted_efficiency: self.model.efficiency(self.nodes, self.base_nodes),
            reported_efficiency: self.reported_efficiency,
            predicted_flops: self.model.sustained_flops(self.nodes),
            reported_flops: self.reported_flops,
        }
    }

    /// Efficiency curve over a node sweep (powers of two up to the case's
    /// node count, then the exact reported count).
    pub fn efficiency_curve(&self) -> Vec<(u32, f64)> {
        let mut nodes = Vec::new();
        let mut n = self.base_nodes;
        while n < self.nodes {
            nodes.push(n);
            n = n.saturating_mul(2);
        }
        nodes.push(self.nodes);
        nodes
            .into_iter()
            .map(|n| (n, self.model.efficiency(n, self.base_nodes)))
            .collect()
    }
}

/// Render all case studies as an aligned ASCII table (the Section IV-B
/// reproduction artifact printed by the `repro` binary).
pub fn render_table(results: &[CaseStudyResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<42} {:>6} {:>10} {:>10} {:>12} {:>12}\n",
        "case study", "nodes", "eff(pred)", "eff(paper)", "PF(pred)", "PF(paper)"
    ));
    for r in results {
        let eff_rep = r
            .reported_efficiency
            .map_or("-".to_string(), |e| format!("{:.1}%", e * 100.0));
        let f_rep = r
            .reported_flops
            .map_or("-".to_string(), |f| format!("{:.0}", f / 1e15));
        out.push_str(&format!(
            "{:<42} {:>6} {:>9.1}% {:>10} {:>12.0} {:>12}\n",
            r.name,
            r.nodes,
            r.predicted_efficiency * 100.0,
            eff_rep,
            r.predicted_flops / 1e15,
            f_rep
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, rel_tol: f64, what: &str) {
        assert!(
            (got - want).abs() / want.abs() < rel_tol,
            "{what}: got {got}, want {want} (tol {rel_tol})"
        );
    }

    #[test]
    fn kurth_matches_paper() {
        let r = CaseStudy::kurth().evaluate();
        assert_close(r.predicted_efficiency, 0.907, 0.02, "Kurth efficiency");
        assert_close(r.predicted_flops, 1.13e18, 0.10, "Kurth sustained EF");
    }

    #[test]
    fn yang_matches_paper() {
        let r = CaseStudy::yang().evaluate();
        assert_close(r.predicted_efficiency, 0.93, 0.02, "Yang efficiency");
        assert!(
            r.predicted_flops > 1.15e18,
            "Yang should exceed ~1.2 EF, got {}",
            r.predicted_flops
        );
    }

    #[test]
    fn laanait_matches_paper() {
        let r = CaseStudy::laanait().evaluate();
        assert_close(r.predicted_flops, 2.15e18, 0.08, "Laanait peak EF");
        // Global batch is 1 per GPU × 27,600 GPUs.
        let cs = CaseStudy::laanait();
        let global = u64::from(cs.model.workload.per_gpu_batch) * cs.model.gpus(cs.nodes);
        assert_eq!(global, 27_600);
    }

    #[test]
    fn khan_matches_paper() {
        let r = CaseStudy::khan().evaluate();
        assert_close(r.predicted_efficiency, 0.80, 0.03, "Khan efficiency");
    }

    #[test]
    fn blanchard_matches_paper() {
        let with_io = CaseStudy::blanchard().evaluate();
        assert_close(
            with_io.predicted_efficiency,
            0.68,
            0.03,
            "Blanchard eff w/ I/O",
        );
        let no_io = CaseStudy::blanchard_no_io().evaluate();
        assert_close(
            no_io.predicted_efficiency,
            0.833,
            0.03,
            "Blanchard eff w/o I/O",
        );
        assert_close(with_io.predicted_flops, 603.0e15, 0.25, "Blanchard PF");
        // Global batch 5.8 M.
        let cs = CaseStudy::blanchard();
        let global = u64::from(cs.model.workload.per_gpu_batch) * cs.model.gpus(cs.nodes);
        assert_close(global as f64, 5.8e6, 0.01, "Blanchard global batch");
    }

    #[test]
    fn io_costs_explain_the_gap() {
        // The whole point of the with/without-I/O pair: removing I/O must
        // recover the efficiency gap the paper attributes to it.
        let with_io = CaseStudy::blanchard().evaluate().predicted_efficiency;
        let no_io = CaseStudy::blanchard_no_io().evaluate().predicted_efficiency;
        assert!(
            no_io - with_io > 0.10,
            "I/O gap too small: {with_io} vs {no_io}"
        );
    }

    #[test]
    fn efficiency_curves_monotone_nonincreasing() {
        for cs in CaseStudy::all() {
            let curve = cs.efficiency_curve();
            for w in curve.windows(2) {
                assert!(
                    w[1].1 <= w[0].1 + 1e-9,
                    "{}: efficiency rose from {:?} to {:?}",
                    cs.name,
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn table_renders_every_case() {
        let results: Vec<CaseStudyResult> =
            CaseStudy::all().iter().map(CaseStudy::evaluate).collect();
        let table = render_table(&results);
        for cs in CaseStudy::all() {
            assert!(table.contains(cs.name.split(' ').next().unwrap()));
        }
        assert!(table.contains("eff(pred)"));
    }

    #[test]
    fn measured_overlap_anchors_laanait_calibration() {
        // The trainer's executed overlap is real (> 0) and below the 0.5
        // calibrated for Laanait's hand-tuned gradient-reduction pipeline:
        // the calibration claims more overlap than the generic mechanism,
        // never less.
        let laanait = CaseStudy::laanait();
        assert!(
            MEASURED_TRAINER_OVERLAP > 0.0 && MEASURED_TRAINER_OVERLAP < laanait.model.overlap,
            "calibrated overlap {} must exceed the measured generic overlap {}",
            laanait.model.overlap,
            MEASURED_TRAINER_OVERLAP
        );
    }

    #[test]
    fn calibration_is_physical() {
        // Calibrated overheads must stay small relative to compute: they are
        // corrections, not the dominant term.
        for cs in CaseStudy::all() {
            let s = cs.model.step(cs.nodes);
            assert!(
                s.overhead < 0.5 * s.compute,
                "{}: overhead {} vs compute {}",
                cs.name,
                s.overhead,
                s.compute
            );
        }
    }
}
