//! Serving-plane benchmarks: the batched forward across micro-batch
//! sizes (the amortization curve the dynamic batcher exploits), the
//! batcher state machine's per-offer cost, and a full closed-loop
//! simulation point at 2×10⁵ clients.
//!
//! The CI-gated artifact (`target/BENCH_serve.json`) is written by the
//! `serve_gate` binary, not here — these benches are for interactive
//! profiling of the same paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use summit_dl::inference::ServableModel;
use summit_dl::model::MlpSpec;
use summit_serve::batch::{BatchConfig, Batcher, QueuedRequest};
use summit_serve::service::{batch_matrix, feature_pool, ServiceModel};
use summit_serve::sim::{simulate, SimConfig};

fn servable() -> ServableModel {
    let spec = MlpSpec::new(48, &[96, 64], 10);
    ServableModel::from_spec_params(&spec, &spec.build(1234).flat_params())
}

/// One packed GEMM per micro-batch vs the batch size: requests/s scales
/// super-linearly at small b as the per-call overhead amortizes.
fn batched_forward(c: &mut Criterion) {
    let model = servable();
    let pool = feature_pool(model.input_dim(), 64, 7);
    let mut group = c.benchmark_group("serve_forward");
    for b in [1usize, 4, 16, 64] {
        let ids: Vec<u64> = (0..b as u64).collect();
        let x = batch_matrix(&pool, &ids);
        group.bench_with_input(BenchmarkId::new("batch", b), &x, |bench, x| {
            bench.iter(|| {
                let out = model.forward_batch(x);
                std::hint::black_box(out.as_slice()[0]);
            });
        });
    }
    group.finish();
}

/// The batcher itself must be noise next to a forward: offer + take at
/// queue depth 16, adaptive mode.
fn batcher_offer_take(c: &mut Criterion) {
    c.bench_function("serve_batcher_offer_take_16", |bench| {
        bench.iter_batched(
            || Batcher::new(BatchConfig::default()),
            |mut b| {
                for i in 0..16u64 {
                    b.offer(QueuedRequest {
                        id: i,
                        client: i,
                        arrival_s: i as f64 * 1e-5,
                    });
                }
                std::hint::black_box(b.take_batch(1.0));
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// One moderate-load simulation point at 2×10⁵ closed-loop clients —
/// the sweep's unit of work.
fn sim_point(c: &mut Criterion) {
    let service = ServiceModel {
        base_s: 1.0e-4,
        per_row_s: 1.0e-5,
    };
    let mut group = c.benchmark_group("serve_sim");
    group.sample_size(10);
    group.bench_function("200k_clients_point", |bench| {
        bench.iter(|| {
            let p = simulate(
                &service,
                BatchConfig::default(),
                &SimConfig {
                    clients: 200_000,
                    duration_s: 0.2,
                    target_rate_rps: 50_000.0,
                    replicas: 4,
                    seed: 11,
                },
            );
            std::hint::black_box(p.achieved_rps);
        });
    });
    group.finish();
}

criterion_group!(benches, batched_forward, batcher_offer_take, sim_point);
criterion_main!(benches);
