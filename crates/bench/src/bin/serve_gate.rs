//! CI gate over the inference-serving plane (`summit-serve`).
//!
//! Four legs, all driven by one host-calibrated [`ServiceModel`]:
//!
//! 1. **Batched-vs-sequential** — times `forward_batch` against
//!    per-request matvecs at batch `16` and fails below
//!    `SUMMIT_SERVE_SPEEDUP_FLOOR` (default 3×). Bit-identity of the
//!    batched rows is pinned separately by `crates/serve/tests/identity.rs`;
//!    this leg gates the *throughput* claim.
//! 2. **Executed-vs-model** — runs the real threaded server
//!    ([`run_executed`]) at sub-saturation rates and checks the achieved
//!    throughput against the discrete-event simulator's prediction at the
//!    same offered rate, within `SUMMIT_SERVE_MODEL_TOL` (default 35%
//!    relative); p50 latency must agree within a
//!    `SUMMIT_SERVE_P50_FACTOR` (default 25×) band — wide because the
//!    executed path pays condvar wakeups and scheduler jitter the service
//!    model does not, but tight enough to catch an order-of-magnitude
//!    policy divergence.
//! 3. **Latency-vs-throughput sweep** — `SUMMIT_SERVE_CLIENTS` (default
//!    2×10⁵, clamped to the issue's 10⁵–10⁶ window) closed-loop clients
//!    swept across ≥ 6 arrival rates from light load past the knee;
//!    the lightest point must meet the SLO
//!    (`SUMMIT_SERVE_P50_SLO_MS`/`SUMMIT_SERVE_P99_SLO_MS`, defaults
//!    25/100 ms), and every point must conserve requests
//!    (completed + rejected + shed = issued).
//! 4. **Full-Summit capacity** — [`summit_serving_capacity`] at 27,648
//!    replicas over `ClusterModel::summit()`: weight-rollout broadcast
//!    time plus the min(compute, ingress) capacity bound, with a small-p
//!    sweep so the compute→ingress crossover is visible in the JSON.
//!
//! Writes `target/BENCH_serve.json`; `SUMMIT_BENCH_RECORD=1` appends the
//! headline to the committed `BENCH_trajectory.json`. The trajectory leg
//! is direction-aware (p50/p99 are lower-is-better) at 25% tolerance —
//! wider than the deterministic gates because every serve metric is
//! timing-derived (`SUMMIT_GATE_SKIP_TRAJECTORY=1` skips it).

use std::collections::BTreeMap;
use std::time::Instant;

use summit_bench::harness;
use summit_dl::inference::ServableModel;
use summit_dl::model::MlpSpec;
use summit_machine::ClusterModel;
use summit_serve::batch::BatchConfig;
use summit_serve::server::{run_executed, ExecutedConfig};
use summit_serve::service::{batch_matrix, calibrate, feature_pool};
use summit_serve::sim::{simulate, SimConfig};
use summit_serve::{summit_serving_capacity, CurvePoint};

/// Full-machine replica fleet: 4,608 nodes × 6 GPUs.
const SUMMIT_REPLICAS: usize = 27_648;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn curve_json(p: &CurvePoint) -> String {
    format!(
        "{{\"offered_rps\": {:.1}, \"achieved_rps\": {:.1}, \"p50_ms\": {:.4}, \
         \"p99_ms\": {:.4}, \"mean_ms\": {:.4}, \"mean_batch\": {:.2}, \
         \"issued\": {}, \"completed\": {}, \"rejected\": {}, \"shed\": {}, \
         \"span_s\": {:.4}}}",
        p.offered_rps,
        p.achieved_rps,
        p.p50_ms,
        p.p99_ms,
        p.mean_ms,
        p.mean_batch,
        p.issued,
        p.completed,
        p.rejected,
        p.shed,
        p.span_s
    )
}

fn main() {
    let speedup_floor = env_f64("SUMMIT_SERVE_SPEEDUP_FLOOR", 3.0);
    let model_tol = env_f64("SUMMIT_SERVE_MODEL_TOL", 0.35);
    let p50_factor = env_f64("SUMMIT_SERVE_P50_FACTOR", 25.0);
    let p50_slo_ms = env_f64("SUMMIT_SERVE_P50_SLO_MS", 25.0);
    let p99_slo_ms = env_f64("SUMMIT_SERVE_P99_SLO_MS", 100.0);
    let clients = (env_f64("SUMMIT_SERVE_CLIENTS", 200_000.0) as u64).clamp(100_000, 1_000_000);
    let mut failures: Vec<String> = Vec::new();

    // The served model: a surrogate-sized MLP, forward-only, sharing the
    // trainer's packed-GEMM forward (bit-identity pinned in the serve
    // crate's tests). Wide enough that one forward costs hundreds of
    // microseconds — the executed plane's lock/condvar overhead must be
    // noise next to the service time, or the executed-vs-model check
    // would measure the thread scheduler instead of the serving policy.
    let spec = MlpSpec::new(256, &[512, 512], 128);
    let model = ServableModel::from_spec_params(&spec, &spec.build(1234).flat_params());
    println!(
        "serve_gate: MLP {}→{:?}→{} ({} params), max_batch 16",
        spec.inputs,
        spec.hidden,
        spec.outputs,
        model.param_count()
    );

    // Calibrate service(b) = base + b·per_row from executed forwards.
    let (points, fit) = calibrate(&model, &[1, 2, 4, 8, 16, 32], 30, 7);
    let peak_rps = fit.peak_rps(16);
    println!(
        "  service model: base {:.3e} s + b × {:.3e} s, peak {:.0} rps/replica at b=16",
        fit.base_s, fit.per_row_s, peak_rps
    );

    // Leg 1: batched forward vs per-request matvecs, measured directly
    // (not through the fit) so the headline is an executed A/B.
    let pool = feature_pool(model.input_dim(), 64, 7);
    let ids: Vec<u64> = (0..16).collect();
    let x = batch_matrix(&pool, &ids);
    let mut best_batched = f64::INFINITY;
    let mut best_seq = f64::INFINITY;
    for _ in 0..30 {
        let t0 = Instant::now();
        let out = model.forward_batch(&x);
        best_batched = best_batched.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(out.as_slice()[0]);
        let t0 = Instant::now();
        for &id in &ids {
            let y = model.forward_one(&pool[id as usize % pool.len()]);
            std::hint::black_box(y[0]);
        }
        best_seq = best_seq.min(t0.elapsed().as_secs_f64());
    }
    let speedup = best_seq / best_batched;
    println!(
        "  batch 16 A/B: batched {:.3e} s, sequential {:.3e} s — {speedup:.2}× \
         (floor {speedup_floor:.1}×)",
        best_batched, best_seq
    );
    if speedup < speedup_floor {
        failures.push(format!(
            "batched speedup {speedup:.2}× at batch 16 is below the {speedup_floor:.1}× floor"
        ));
    }

    // Leg 2: executed server vs the simulator at matched sub-saturation
    // rates. One executed replica: the model treats replicas as
    // independent machines, but on this host they would contend for the
    // same GEMM worker pool, which is a property of the test box, not of
    // the serving policy under test. Rates sit well below the knee so
    // both planes should achieve ≈ the offered rate.
    let replicas = 1usize;
    let exec_capacity = replicas as f64 * peak_rps;
    let batch_cfg = BatchConfig::default();
    let mut exec_rows = String::new();
    for frac in [0.1, 0.2, 0.3] {
        let rate = frac * exec_capacity;
        let requests = ((rate * 0.5) as usize).clamp(300, 20_000);
        let executed = run_executed(
            &model,
            &ExecutedConfig {
                rate_rps: rate,
                requests,
                replicas,
                batch: batch_cfg,
                seed: 31,
            },
        );
        let modeled = simulate(
            &fit,
            batch_cfg,
            &SimConfig {
                clients,
                duration_s: (requests as f64 / rate).max(0.2),
                target_rate_rps: rate,
                replicas,
                seed: 31,
            },
        );
        let rps_err =
            (executed.achieved_rps - modeled.achieved_rps).abs() / modeled.achieved_rps.max(1e-9);
        let lat_ratio = if modeled.p50_ms > 0.0 {
            executed.p50_ms / modeled.p50_ms
        } else {
            1.0
        };
        println!(
            "  executed-vs-model at {rate:.0} rps: achieved {:.0} vs {:.0} \
             ({:.1}% off), p50 {:.3} ms vs {:.3} ms ({lat_ratio:.2}×)",
            executed.achieved_rps,
            modeled.achieved_rps,
            100.0 * rps_err,
            executed.p50_ms,
            modeled.p50_ms
        );
        if rps_err > model_tol {
            failures.push(format!(
                "executed throughput at {rate:.0} rps is {:.1}% off the model \
                 (tolerance {:.0}%)",
                100.0 * rps_err,
                100.0 * model_tol
            ));
        }
        if lat_ratio > p50_factor || lat_ratio < 1.0 / p50_factor {
            failures.push(format!(
                "executed p50 {:.3} ms vs modeled {:.3} ms is outside the \
                 {p50_factor:.0}× agreement band",
                executed.p50_ms, modeled.p50_ms
            ));
        }
        exec_rows.push_str(&format!(
            "      {{\"offered_rps\": {rate:.1}, \"executed\": {}, \"modeled\": {}}},\n",
            curve_json(&executed),
            curve_json(&modeled)
        ));
    }

    // Leg 3: the latency-vs-throughput curve at 10⁵–10⁶ clients — seven
    // rates from light load through the knee into overload, on a
    // four-replica fleet. Duration shrinks at high rate so the event
    // count (≈ rate × duration) stays bounded.
    let sweep_replicas = 4usize;
    let sweep_capacity = sweep_replicas as f64 * peak_rps;
    let t0 = Instant::now();
    let sweep: Vec<CurvePoint> = [0.1, 0.25, 0.5, 0.75, 0.9, 1.05, 1.3]
        .iter()
        .map(|&frac| {
            let rate = frac * sweep_capacity;
            let duration_s = (400_000.0 / rate).clamp(0.05, 2.0);
            simulate(
                &fit,
                BatchConfig {
                    queue_cap: 4096,
                    ..BatchConfig::default()
                },
                &SimConfig {
                    clients,
                    duration_s,
                    target_rate_rps: rate,
                    replicas: sweep_replicas,
                    seed: 97,
                },
            )
        })
        .collect();
    let sweep_wall = t0.elapsed().as_secs_f64();
    println!(
        "  sweep: {} clients × {} rates on {sweep_replicas} replicas ({sweep_wall:.1} s wall)",
        clients,
        sweep.len()
    );
    for p in &sweep {
        println!(
            "    offered {:>9.0} rps → achieved {:>9.0}, p50 {:.3} ms, p99 {:.3} ms, \
             batch {:.1}, rejected {}",
            p.offered_rps, p.achieved_rps, p.p50_ms, p.p99_ms, p.mean_batch, p.rejected
        );
        if p.completed + p.rejected + p.shed != p.issued {
            failures.push(format!(
                "sweep at {:.0} rps lost requests: {} + {} + {} != {}",
                p.offered_rps, p.completed, p.rejected, p.shed, p.issued
            ));
        }
    }
    if sweep.len() < 6 {
        failures.push(format!("curve has {} points, need >= 6", sweep.len()));
    }
    let light = &sweep[0];
    if light.p50_ms > p50_slo_ms {
        failures.push(format!(
            "light-load p50 {:.3} ms exceeds the {p50_slo_ms:.1} ms SLO",
            light.p50_ms
        ));
    }
    if light.p99_ms > p99_slo_ms {
        failures.push(format!(
            "light-load p99 {:.3} ms exceeds the {p99_slo_ms:.1} ms SLO",
            light.p99_ms
        ));
    }
    // The knee must actually bend: overload cannot outrun fleet capacity.
    let knee_rps = sweep.iter().map(|p| p.achieved_rps).fold(0.0, f64::max);
    if knee_rps > 1.2 * sweep_capacity {
        failures.push(format!(
            "peak achieved {knee_rps:.0} rps exceeds modeled capacity {sweep_capacity:.0} — \
             the service model and the sweep disagree"
        ));
    }

    // Leg 4: full-Summit capacity over the routed fabric, with a small-p
    // sweep so the compute→ingress crossover is visible.
    let mut summit_rows = String::new();
    for (reps, cluster) in [
        (24usize, ClusterModel::summit_like(4)),
        (384, ClusterModel::summit_like(64)),
        (SUMMIT_REPLICAS, ClusterModel::summit()),
    ] {
        let cap = summit_serving_capacity(
            &fit,
            16,
            model.param_count(),
            model.input_dim(),
            reps,
            cluster,
        );
        println!(
            "  summit: {reps:>6} replicas — rollout {:.3e} s, compute {:.3e} rps, \
             ingress {:.3e} rps → capacity {:.3e} rps ({})",
            cap.weight_broadcast_s,
            cap.compute_capacity_rps,
            cap.ingress_bound_rps,
            cap.capacity_rps,
            if cap.ingress_bound() {
                "ingress-bound"
            } else {
                "compute-bound"
            }
        );
        summit_rows.push_str(&format!(
            "      {{\"replicas\": {reps}, \"weight_broadcast_s\": {:.6e}, \
             \"compute_rps\": {:.6e}, \"ingress_rps\": {:.6e}, \"capacity_rps\": {:.6e}, \
             \"ingress_bound\": {}}},\n",
            cap.weight_broadcast_s,
            cap.compute_capacity_rps,
            cap.ingress_bound_rps,
            cap.capacity_rps,
            cap.ingress_bound()
        ));
    }
    let summit = summit_serving_capacity(
        &fit,
        16,
        model.param_count(),
        model.input_dim(),
        SUMMIT_REPLICAS,
        ClusterModel::summit(),
    );
    if summit.capacity_rps <= 0.0 {
        failures.push("full-Summit capacity is not positive".into());
    }
    if summit.weight_broadcast_s > 60.0 {
        failures.push(format!(
            "weight rollout at {SUMMIT_REPLICAS} replicas takes {:.1} s — a checkpoint \
             broadcast of {} params should be sub-minute",
            summit.weight_broadcast_s,
            model.param_count()
        ));
    }

    let calib_rows = points
        .iter()
        .map(|p| {
            format!(
                "      {{\"batch\": {}, \"seconds\": {:.6e}, \"rps\": {:.1}}}",
                p.batch, p.seconds, p.rps
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let sweep_rows = sweep
        .iter()
        .map(|p| format!("      {}", curve_json(p)))
        .collect::<Vec<_>>()
        .join(",\n");

    let mut metrics = BTreeMap::new();
    metrics.insert("serve_speedup_b16".to_string(), speedup);
    metrics.insert("serve_peak_rps".to_string(), peak_rps);
    metrics.insert("serve_light_p50_ms".to_string(), light.p50_ms);
    metrics.insert("serve_light_p99_ms".to_string(), light.p99_ms);
    metrics.insert("serve_knee_rps".to_string(), knee_rps);
    metrics.insert("serve_summit_capacity_rps".to_string(), summit.capacity_rps);
    let headline = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.6}"))
        .collect::<Vec<_>>()
        .join(", ");

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"model\": {{\"inputs\": {}, \"hidden\": {:?}, \
         \"outputs\": {}, \"params\": {}}},\n  \"service_model\": {{\"base_s\": {:.6e}, \
         \"per_row_s\": {:.6e}, \"peak_rps_b16\": {peak_rps:.1}}},\n  \
         \"calibration\": [\n{calib_rows}\n    ],\n  \
         \"ab\": {{\"batch\": 16, \"batched_s\": {best_batched:.6e}, \
         \"sequential_s\": {best_seq:.6e}, \"speedup\": {speedup:.3}, \
         \"floor\": {speedup_floor}}},\n  \
         \"executed_vs_model\": {{\"replicas\": {replicas}, \
         \"throughput_tolerance\": {model_tol}, \"p50_factor\": {p50_factor}, \
         \"points\": [\n{}    ]}},\n  \
         \"sim_sweep\": {{\"clients\": {clients}, \"replicas\": {sweep_replicas}, \
         \"capacity_rps\": {sweep_capacity:.1}, \"wall_s\": {sweep_wall:.2}, \
         \"points\": [\n{sweep_rows}\n    ]}},\n  \
         \"summit\": [\n{}    ],\n  \
         \"headline\": {{{headline}}}\n}}\n",
        spec.inputs,
        spec.hidden,
        spec.outputs,
        model.param_count(),
        fit.base_s,
        fit.per_row_s,
        exec_rows.trim_end_matches(",\n").to_string() + "\n",
        summit_rows.trim_end_matches(",\n").to_string() + "\n",
    );
    harness::write_bench_json("serve", &json);
    harness::record_trajectory(&harness::TrajectoryEntry::now("serve", metrics.clone()));

    // Trajectory leg: direction-aware (latency metrics invert), 25%
    // tolerance because every serve metric is timing-derived.
    harness::gate_trajectory(
        "serve",
        &metrics,
        &|k| match k {
            "serve_light_p50_ms" | "serve_light_p99_ms" => Some(harness::Direction::LowerIsBetter),
            "serve_speedup_b16"
            | "serve_peak_rps"
            | "serve_knee_rps"
            | "serve_summit_capacity_rps" => Some(harness::Direction::HigherIsBetter),
            _ => None,
        },
        0.25,
        &mut failures,
    );

    if failures.is_empty() {
        println!("serve_gate: PASS");
    } else {
        for f in &failures {
            eprintln!("serve_gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
