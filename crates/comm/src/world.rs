//! Threads-as-ranks execution environment.
//!
//! A [`World`] is a *value*: [`World::new`] builds a reusable fabric of `p`
//! lazily-created point-to-point links, [`World::execute`] spawns `p`
//! scoped threads, each holding a [`Rank`] handle onto that fabric plus a
//! shared barrier, and the same world can execute again afterwards. The
//! statics [`World::run`] / [`World::run_with_stats`] /
//! [`World::run_with_faults`] remain as one-shot shims (`new` + `execute`).
//! Channels are unbounded, so the classic "everyone sends right then
//! receives left" ring step cannot deadlock.
//!
//! Channels are created on first use per directed pair — a world of `p`
//! ranks that only ever rings pays for `p` links, not the `p²` an eager
//! matrix would mint — which is what makes hundreds of concurrent small
//! worlds per process affordable (the facility scenario in `summit-sched`).
//! Compute budgets come from the process-wide [`summit_pool::arbiter`]:
//! each execution leases a disjoint core budget for its lifetime, so
//! concurrently live worlds share the machine instead of each claiming an
//! `available_parallelism / p` slice of it.
//!
//! Messages carry a tag so that out-of-order sends between the same pair
//! (e.g. two collectives back to back) are matched correctly: `recv` pulls
//! messages from the in-order channel and parks any message whose tag does
//! not match in a per-source pending queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use std::cell::{Cell, OnceCell, RefCell};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::faults::{CommError, FaultPlan, FaultState, SendVerdict, CONTROL_BIT};

/// A tagged message between ranks. `checksum` is attached only when the
/// sender's fault plane is enabled (FNV-1a over the payload bits); `None`
/// means "unchecked", so the fault-free hot path pays nothing for it.
#[derive(Debug)]
struct Envelope {
    tag: u64,
    payload: Vec<f32>,
    checksum: Option<u64>,
}

/// FNV-1a over the payload's f32 bit patterns — the transport checksum the
/// fault plane uses to make corruption *detectable* (a corrupted message
/// surfaces as [`CommError::Corrupt`] from the checked receives instead of
/// silently poisoning a reduction).
fn payload_checksum(payload: &[f32]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for v in payload {
        let bits = v.to_bits();
        for shift in [0, 8, 16, 24] {
            hash ^= u64::from((bits >> shift) as u8);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    }
    hash
}

/// Pending-queue depth at which [`Rank::recv`] logs a diagnostic: a queue
/// this deep almost always means a tag-mismatch bug parking messages that
/// will never be consumed.
const PARKED_WARN_THRESHOLD: usize = 1024;

/// Per-rank free list of recycled message payloads, bucketed by capacity
/// class (next power of two).
///
/// `send_from` draws its payload here instead of allocating, and
/// `recv_into`/`recv_with` return the received payload here instead of
/// dropping it. Under a ring collective every rank hands one buffer to its
/// right neighbour and recycles one from its left each step, so after a
/// one-round warm-up the pools circulate a fixed set of buffers and the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// `classes[c]` holds buffers whose capacity is in `[1 << c, 2 << c)`,
    /// so any buffer drawn from class `ceil(log2(len))` can hold `len`
    /// elements without growing.
    classes: RefCell<Vec<Vec<Vec<f32>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    outstanding: Cell<i64>,
}

/// Pool effectiveness counters for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffer requests served from the free list.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
    /// Buffers drawn from this pool minus buffers returned to it. Negative
    /// values are legitimate under ring circulation: a rank retires the
    /// payloads minted by its left neighbour, so buffers migrate between
    /// per-rank pools while the world-wide sum stays balanced.
    pub outstanding: i64,
}

impl BufferPool {
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Take a buffer with `capacity >= len` and length 0, reusing a
    /// recycled one when available.
    fn acquire(&self, len: usize) -> Vec<f32> {
        let class = Self::class_of(len);
        self.outstanding.set(self.outstanding.get() + 1);
        let mut classes = self.classes.borrow_mut();
        if let Some(mut buf) = classes.get_mut(class).and_then(Vec::pop) {
            self.hits.set(self.hits.get() + 1);
            buf.clear();
            buf
        } else {
            self.misses.set(self.misses.get() + 1);
            drop(classes);
            Vec::with_capacity(len.next_power_of_two())
        }
    }

    /// Return a spent payload to the free list.
    fn release(&self, buf: Vec<f32>) {
        self.outstanding.set(self.outstanding.get() - 1);
        if buf.capacity() == 0 {
            return;
        }
        // Floor class: every buffer in class `c` has capacity >= 1 << c,
        // which is what `acquire`'s ceil-class lookup relies on.
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        let mut classes = self.classes.borrow_mut();
        if classes.len() <= class {
            classes.resize_with(class + 1, Vec::new);
        }
        classes[class].push(buf);
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            outstanding: self.outstanding.get(),
        }
    }
}

/// One directed link's slot in the [`Fabric`]. A slot starts unborn (no
/// channel, just this record); the first endpoint taken creates the channel
/// and parks the opposite endpoint for its owner. Each endpoint is taken at
/// most once: `tx` by the source rank, `rx` by the destination rank.
///
/// The `src_gone` / `dst_gone` flags preserve the eager matrix's failure
/// semantics under laziness: when a rank exits (normally or by panic) it
/// sweeps its slots, closing any endpoint its peers might still claim. A
/// receiver taken from a link whose source already departed is born
/// disconnected, so `recv` still panics with "a peer rank panicked" instead
/// of blocking forever on a channel the dead rank never opened.
#[derive(Default)]
struct LinkSlot {
    born: bool,
    src_gone: bool,
    dst_gone: bool,
    tx: Option<Sender<Envelope>>,
    rx: Option<Receiver<Envelope>>,
}

/// The reusable channel fabric of a [`World`]: `p²` lazily-born directed
/// links. Unborn slots cost one mutex'd record each; channels exist only
/// for pairs that actually communicated.
struct Fabric {
    size: usize,
    links: Vec<Mutex<LinkSlot>>,
    /// Channels actually created this execution (laziness witness).
    links_born: AtomicU64,
}

impl Fabric {
    fn new(p: usize) -> Self {
        Fabric {
            size: p,
            links: (0..p * p)
                .map(|_| Mutex::new(LinkSlot::default()))
                .collect(),
            links_born: AtomicU64::new(0),
        }
    }

    fn slot(&self, src: usize, dst: usize) -> &Mutex<LinkSlot> {
        &self.links[src * self.size + dst]
    }

    /// Claim the sender endpoint of link `src → dst`, creating the channel
    /// on first touch. Only rank `src` calls this, and only once (it caches
    /// the endpoint), so a missing endpoint is a bug, not a race.
    fn take_tx(&self, src: usize, dst: usize) -> Sender<Envelope> {
        let mut slot = self.slot(src, dst).lock().expect("fabric slot poisoned");
        if !slot.born {
            slot.born = true;
            self.links_born.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = unbounded();
            if !slot.dst_gone {
                slot.rx = Some(rx);
            }
            return tx;
        }
        slot.tx.take().expect("tx endpoint claimed twice")
    }

    /// Claim the receiver endpoint of link `src → dst`. If the source rank
    /// already departed without opening the link, the receiver is born
    /// disconnected (its sender is dropped at creation).
    fn take_rx(&self, src: usize, dst: usize) -> Receiver<Envelope> {
        let mut slot = self.slot(src, dst).lock().expect("fabric slot poisoned");
        if !slot.born {
            slot.born = true;
            self.links_born.fetch_add(1, Ordering::Relaxed);
            let (tx, rx) = unbounded();
            if !slot.src_gone {
                slot.tx = Some(tx);
            }
            return rx;
        }
        slot.rx.take().expect("rx endpoint claimed twice")
    }

    /// Rank exit sweep: close every endpoint of `rank`'s links that no one
    /// claimed, and flag unborn links so endpoints claimed later are born
    /// closed. Runs on normal completion and during unwind alike
    /// ([`Rank`]'s `Drop`), which is what keeps "a peer rank panicked"
    /// disconnect panics working under lazy link creation.
    fn depart(&self, rank: usize) {
        for other in 0..self.size {
            if other == rank {
                continue;
            }
            {
                let mut out = self.slot(rank, other).lock().expect("fabric slot poisoned");
                out.src_gone = true;
                out.tx.take();
            }
            {
                let mut inc = self.slot(other, rank).lock().expect("fabric slot poisoned");
                inc.dst_gone = true;
                inc.rx.take();
            }
        }
    }

    /// Forget the previous execution: every slot back to unborn. Requires
    /// exclusive access, which [`World::execute`] proves via `Arc::get_mut`
    /// (no `Rank` handle outlives its execution).
    fn reset(&mut self) {
        for slot in &mut self.links {
            *slot.get_mut().expect("fabric slot poisoned") = LinkSlot::default();
        }
        *self.links_born.get_mut() = 0;
    }
}

/// A handle held by one rank (thread) of a [`World`].
pub struct Rank {
    id: usize,
    size: usize,
    world_id: u64,
    fabric: Arc<Fabric>,
    senders: Vec<OnceCell<Sender<Envelope>>>,
    receivers: Vec<OnceCell<Receiver<Envelope>>>,
    pending: Vec<RefCell<VecDeque<Envelope>>>,
    barrier: Arc<Barrier>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
    messages_parked: Arc<AtomicU64>,
    /// Fault-injection plane; `None` outside chaos runs, making every hook
    /// a single never-taken branch (the hot-path allocator test pins this).
    faults: Option<FaultState>,
    pool: BufferPool,
    /// Messages posted by this rank (Cell: a `Rank` is `!Sync` by design).
    sent_messages: Cell<u64>,
    /// Payload bytes posted by this rank.
    sent_bytes: Cell<u64>,
}

/// Per-rank traffic counters, for strict comparison against the engine's
/// modeled run ([`crate::sim::simulate`] reports the same quantities per
/// rank). Counted at post time — before the fault plane's drop hook — so an
/// injected drop still counts as a send, matching the model's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankTraffic {
    /// Messages this rank sent.
    pub messages_sent: u64,
    /// Payload bytes this rank sent (4 bytes per f32 element).
    pub bytes_sent: u64,
}

impl Rank {
    /// This rank's index in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Id of the [`World`] this rank belongs to (process-unique). Multi-
    /// world failures are attributed with this id.
    pub fn world_id(&self) -> u64 {
        self.world_id
    }

    /// The sender endpoint toward rank `to`, claimed from the fabric on
    /// first use and cached (one branch on the hot path thereafter).
    fn sender(&self, to: usize) -> &Sender<Envelope> {
        self.senders[to].get_or_init(|| self.fabric.take_tx(self.id, to))
    }

    /// The receiver endpoint from rank `from`, claimed on first use.
    fn receiver(&self, from: usize) -> &Receiver<Envelope> {
        self.receivers[from].get_or_init(|| self.fabric.take_rx(from, self.id))
    }

    /// Send `payload` to rank `to` with `tag`.
    ///
    /// When a fault plane is installed ([`World::run_with_faults`]), the
    /// plan may drop, delay, or corrupt the message; a transport checksum is
    /// attached so corruption is detectable by the checked receives.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equals this rank.
    pub fn send(&self, to: usize, tag: u64, mut payload: Vec<f32>) {
        assert!(to < self.size, "destination rank out of range");
        assert_ne!(to, self.id, "self-sends are not supported");
        self.bytes_sent
            .fetch_add((payload.len() * 4) as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.sent_messages.set(self.sent_messages.get() + 1);
        self.sent_bytes
            .set(self.sent_bytes.get() + (payload.len() * 4) as u64);
        let mut checksum = None;
        if let Some(faults) = &self.faults {
            if tag & CONTROL_BIT == 0 {
                checksum = Some(payload_checksum(&payload));
                match faults.on_send(to, tag) {
                    SendVerdict::Deliver => {}
                    SendVerdict::Drop => {
                        // The link ate it: recycle the buffer locally so the
                        // pool books stay balanced, deliver nothing.
                        self.pool.release(payload);
                        return;
                    }
                    SendVerdict::DelayThenDeliver(d) => std::thread::sleep(d),
                    SendVerdict::CorruptThenDeliver => {
                        // Flip one mantissa bit after checksumming, so the
                        // receiver's verify fails. Empty payloads corrupt
                        // the checksum itself instead.
                        match payload.len() {
                            0 => checksum = checksum.map(|c| c ^ 1),
                            n => {
                                let bits = payload[n / 2].to_bits() ^ 0x0040_0000;
                                payload[n / 2] = f32::from_bits(bits);
                            }
                        }
                    }
                }
            }
        }
        self.sender(to)
            .send(Envelope {
                tag,
                payload,
                checksum,
            })
            .expect("receiver hung up: a peer rank panicked");
    }

    /// Receive the next message from rank `from` carrying `tag`, blocking
    /// until it arrives. Messages with other tags are buffered.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equals this rank, or the sending
    /// rank disconnected (panicked) before sending.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f32> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            return pending.remove(pos).expect("position just found").payload;
        }
        loop {
            let env = self
                .receiver(from)
                .recv()
                .expect("sender hung up: a peer rank panicked");
            if env.tag == tag {
                return env.payload;
            }
            self.park(&mut pending, from, env);
        }
    }

    /// Park a tag-mismatched message, counting it and logging when the
    /// queue depth is suspicious (a message parked forever is invisible
    /// without this: the matching `recv` simply never completes).
    fn park(&self, pending: &mut VecDeque<Envelope>, from: usize, env: Envelope) {
        self.messages_parked.fetch_add(1, Ordering::Relaxed);
        pending.push_back(env);
        if pending.len() == PARKED_WARN_THRESHOLD {
            debug_assert!(
                self.faults.is_some(),
                "rank {}: {} messages from rank {from} parked on mismatched tags \
                 without a fault plane — likely a tag-schedule bug",
                self.id,
                pending.len(),
            );
            eprintln!(
                "summit-comm: rank {} has parked {} messages from rank {from} \
                 (front tag {:#x}); mismatched-tag receives may be stuck",
                self.id,
                pending.len(),
                pending.front().map_or(0, |e| e.tag),
            );
        }
    }

    /// Nonblocking receive: return the next message from rank `from`
    /// carrying `tag` if one has already arrived, or `None` without
    /// blocking. Messages with other tags encountered while polling are
    /// parked in the same per-source pending queue [`Rank::recv`] uses, so
    /// the two can be mixed freely on one tag namespace.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equals this rank, or the sending
    /// rank disconnected (panicked) before sending.
    pub fn try_recv(&self, from: usize, tag: u64) -> Option<Vec<f32>> {
        self.try_recv_env(from, tag).map(|env| env.payload)
    }

    /// Envelope-level nonblocking receive shared by the unchecked and
    /// checked paths.
    fn try_recv_env(&self, from: usize, tag: u64) -> Option<Envelope> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            return Some(pending.remove(pos).expect("position just found"));
        }
        loop {
            match self.receiver(from).try_recv() {
                Ok(env) => {
                    if env.tag == tag {
                        return Some(env);
                    }
                    self.park(&mut pending, from, env);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return None,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    panic!("sender hung up: a peer rank panicked")
                }
            }
        }
    }

    /// Verify an envelope's transport checksum (when one is attached).
    fn verify(from: usize, env: &Envelope) -> Result<(), CommError> {
        match env.checksum {
            Some(sum) if payload_checksum(&env.payload) != sum => {
                Err(CommError::Corrupt { from, tag: env.tag })
            }
            _ => Ok(()),
        }
    }

    /// Checked receive: like [`Rank::recv`] but fallible — it verifies the
    /// transport checksum, honors this rank's scheduled kill, and (when
    /// `deadline` is set) gives up instead of blocking forever. A corrupt
    /// envelope is consumed (and its buffer recycled) before the error
    /// returns, so a retry does not trip over it again.
    ///
    /// This is the primitive that keeps chaos runs live: a dropped message
    /// surfaces as [`CommError::Timeout`] here instead of hanging the rank.
    ///
    /// # Errors
    /// [`CommError::Timeout`], [`CommError::Corrupt`],
    /// [`CommError::RankKilled`], or [`CommError::Disconnected`].
    ///
    /// # Panics
    /// Panics if `from` is out of range or equals this rank.
    pub fn recv_checked(
        &self,
        from: usize,
        tag: u64,
        deadline: Option<Instant>,
    ) -> Result<Vec<f32>, CommError> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        self.poll_fault_kill()?;
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            let env = pending.remove(pos).expect("position just found");
            if let Err(e) = Self::verify(from, &env) {
                self.pool.release(env.payload);
                return Err(e);
            }
            return Ok(env.payload);
        }
        loop {
            let env = match deadline {
                Some(d) => match self.receiver(from).recv_deadline(d) {
                    Ok(env) => env,
                    Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout { from, tag }),
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(CommError::Disconnected { from })
                    }
                },
                None => self
                    .receiver(from)
                    .recv()
                    .map_err(|_| CommError::Disconnected { from })?,
            };
            if env.tag == tag {
                if let Err(e) = Self::verify(from, &env) {
                    self.pool.release(env.payload);
                    return Err(e);
                }
                return Ok(env.payload);
            }
            self.park(&mut pending, from, env);
        }
    }

    /// [`Rank::recv_checked`] with a relative timeout.
    ///
    /// # Errors
    /// See [`Rank::recv_checked`].
    pub fn recv_timeout(
        &self,
        from: usize,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<f32>, CommError> {
        self.recv_checked(from, tag, Some(Instant::now() + timeout))
    }

    /// Checked nonblocking receive: `Ok(None)` when no matching message has
    /// arrived yet; checksum and kill failures surface as errors exactly as
    /// in [`Rank::recv_checked`].
    ///
    /// # Errors
    /// [`CommError::Corrupt`] or [`CommError::RankKilled`].
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::try_recv`].
    pub fn try_recv_checked(&self, from: usize, tag: u64) -> Result<Option<Vec<f32>>, CommError> {
        self.poll_fault_kill()?;
        match self.try_recv_env(from, tag) {
            None => Ok(None),
            Some(env) => match Self::verify(from, &env) {
                Ok(()) => Ok(Some(env.payload)),
                Err(e) => {
                    // Consume and recycle the corrupt payload so a retry of
                    // the collective does not trip over it again.
                    self.pool.release(env.payload);
                    Err(e)
                }
            },
        }
    }

    /// If a fault plane is installed and this rank is scheduled to die at
    /// its current step, claim the kill and return
    /// [`CommError::RankKilled`]. A no-op (always `Ok`) otherwise.
    ///
    /// # Errors
    /// [`CommError::RankKilled`] exactly once per scheduled kill.
    pub fn poll_fault_kill(&self) -> Result<(), CommError> {
        match &self.faults {
            Some(f) => f.poll_kill(),
            None => Ok(()),
        }
    }

    /// Tell the fault plane which application step this rank is executing;
    /// [`FaultPlan`] events are keyed on it. A no-op without a plane.
    pub fn set_fault_step(&self, step: u64) {
        if let Some(f) = &self.faults {
            f.set_step(step);
        }
    }

    /// Whether this world was built with a fault plane
    /// ([`World::run_with_faults`]).
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Discard every message currently addressed to this rank — parked and
    /// in-flight alike — recycling the payloads into this rank's pool, and
    /// return how many were drained.
    ///
    /// Recovery uses this between barriers to clear the fabric of stale
    /// traffic from an aborted step, so the replay's tag matching starts
    /// from a clean slate and the pool books stay balanced.
    ///
    /// The sweep runs to a fixpoint: after a pass that drains anything, the
    /// queues are swept again until a full pass finds nothing. A single pass
    /// is enough for traffic that was posted before the surrounding barrier
    /// (the channels are unbounded, so a send completes synchronously), but
    /// an abandoned nonblocking handle poked *between* the two quiesce
    /// barriers can inject a fresh envelope after its source queue was
    /// already swept — the fixpoint makes the drain insensitive to sweep
    /// order relative to such stragglers.
    pub fn drain_all(&self) -> usize {
        let mut drained = 0;
        loop {
            let mut pass = 0;
            for from in 0..self.size {
                if from == self.id {
                    continue;
                }
                // Sweep data traffic only: control-plane messages
                // (CONTROL_BIT) are the reliable out-of-band network, and
                // a peer that finished its own drain may already be into
                // its next control exchange — eating its token would
                // deadlock the quiesce.
                let mut pending = self.pending[from].borrow_mut();
                let mut keep = VecDeque::with_capacity(pending.len());
                while let Some(env) = pending.pop_front() {
                    if env.tag & CONTROL_BIT != 0 {
                        keep.push_back(env);
                    } else {
                        self.pool.release(env.payload);
                        pass += 1;
                    }
                }
                *pending = keep;
                while let Ok(env) = self.receiver(from).try_recv() {
                    if env.tag & CONTROL_BIT != 0 {
                        pending.push_back(env);
                    } else {
                        self.pool.release(env.payload);
                        pass += 1;
                    }
                }
            }
            drained += pass;
            if pass == 0 {
                return drained;
            }
        }
    }

    /// Return a finished transport payload to this rank's [`BufferPool`].
    /// Used by the nonblocking layer, whose handles hold payloads across
    /// calls and cannot release them inside a `recv_with` closure, and by
    /// elastic control flows that take ownership via [`Rank::try_recv`].
    pub fn release_payload(&self, payload: Vec<f32>) {
        self.pool.release(payload);
    }

    /// Simultaneously send to `to` and receive from `from` (the ring step).
    pub fn send_recv(&self, to: usize, from: usize, tag: u64, payload: Vec<f32>) -> Vec<f32> {
        self.send(to, tag, payload);
        self.recv(from, tag)
    }

    /// Send a copy of `src` to rank `to`, drawing the payload from this
    /// rank's [`BufferPool`] instead of allocating.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equals this rank.
    pub fn send_from(&self, to: usize, tag: u64, src: &[f32]) {
        let mut payload = self.pool.acquire(src.len());
        payload.extend_from_slice(src);
        self.send(to, tag, payload);
    }

    /// Receive the next message from rank `from` carrying `tag` into `dst`,
    /// recycling the transport buffer into this rank's [`BufferPool`].
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::recv`], or if the payload
    /// length differs from `dst.len()`.
    pub fn recv_into(&self, from: usize, tag: u64, dst: &mut [f32]) {
        let payload = self.recv(from, tag);
        assert_eq!(
            payload.len(),
            dst.len(),
            "recv_into: payload length mismatch"
        );
        dst.copy_from_slice(&payload);
        self.pool.release(payload);
    }

    /// Receive from rank `from` with `tag` and hand the payload to `f` by
    /// reference, recycling the transport buffer afterwards. This is the
    /// zero-copy receive: reductions fold straight out of the payload
    /// without an intermediate copy.
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::recv`].
    pub fn recv_with<R>(&self, from: usize, tag: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        let payload = self.recv(from, tag);
        let out = f(&payload);
        self.pool.release(payload);
        out
    }

    /// The ring step without allocation: send a copy of `src` to `to`, then
    /// receive the matching message from `from` into `dst`. `src` and `dst`
    /// may be the same slice contents-wise; they are distinct borrows.
    ///
    /// # Panics
    /// Panics on the combined conditions of [`Rank::send_from`] and
    /// [`Rank::recv_into`].
    pub fn send_recv_into(&self, to: usize, from: usize, tag: u64, src: &[f32], dst: &mut [f32]) {
        self.send_from(to, tag, src);
        self.recv_into(from, tag, dst);
    }

    /// Like [`Rank::send_recv_into`] but the received payload is folded
    /// into `dst` by `f` (element-by-element) instead of overwriting it —
    /// the reduce-scatter inner step.
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::send_recv_into`].
    pub fn send_recv_fold(
        &self,
        to: usize,
        from: usize,
        tag: u64,
        src: &[f32],
        dst: &mut [f32],
        f: impl Fn(f32, f32) -> f32,
    ) {
        self.send_from(to, tag, src);
        self.recv_with(from, tag, |payload| {
            assert_eq!(
                payload.len(),
                dst.len(),
                "send_recv_fold: payload length mismatch"
            );
            for (d, &s) in dst.iter_mut().zip(payload) {
                *d = f(*d, s);
            }
        });
    }

    /// This rank's buffer-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// This rank's own traffic counters (see [`RankTraffic`]).
    pub fn traffic(&self) -> RankTraffic {
        RankTraffic {
            messages_sent: self.sent_messages.get(),
            bytes_sent: self.sent_bytes.get(),
        }
    }

    /// Block until every rank has reached this barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

impl Drop for Rank {
    /// Exit sweep: close the fabric endpoints peers might still claim. This
    /// runs during unwind too, so a panicking rank disconnects all its
    /// links — the cached endpoints below drop right after this body, and
    /// the sweep closes the unclaimed rest — and every peer blocked on this
    /// rank observes "a peer rank panicked" instead of hanging.
    fn drop(&mut self) {
        self.fabric.depart(self.id);
    }
}

/// A membership view of a [`World`]: the subset of physical ranks currently
/// participating in collectives, at a given membership `epoch`.
///
/// Elastic recovery shrinks a world by *excluding* a dead rank instead of
/// rolling back: survivors adopt a new view whose dense ids `0..size()`
/// remap onto the surviving physical ranks, re-derive their collective
/// schedules at the smaller size (every schedule is a pure function of
/// `(size, dense id)`), and keep training. The inverse hot-join grows the
/// view back to the full world. The epoch is folded into every tag the
/// view's collectives and control messages use, so traffic from different
/// membership generations can never satisfy each other's receives — a
/// straggler envelope from before a shrink is inert, and `drain_all`
/// recycles it.
///
/// A view never exceeds the physical world: membership is a sorted subset
/// of `0..world_size`, and physical channel indices stay valid across
/// shrink/grow, so no channels are torn down or rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldView {
    /// Sorted physical rank ids of the current members.
    members: Vec<usize>,
    /// This rank's *physical* id (fixed for the life of the world).
    me: usize,
    /// Membership generation; bumped by every shrink or grow.
    epoch: u64,
}

/// Epochs are folded into tags through a 12-bit mask: 4096 membership
/// changes before wraparound, far beyond any test or plausible run.
const EPOCH_MASK: u64 = 0xfff;

impl WorldView {
    /// The full-world view at epoch 0: every physical rank is a member.
    /// Epoch 0 tags are identical to the classic (non-elastic) tag scheme,
    /// so a view-based collective at full membership is bit- and
    /// traffic-identical to the plain one.
    pub fn full(rank: &Rank) -> Self {
        Self {
            members: (0..rank.size()).collect(),
            me: rank.id(),
            epoch: 0,
        }
    }

    /// Assemble a view from an explicit member list (sorted, deduplicated
    /// physical ids) at an explicit epoch. `me` is this rank's physical id;
    /// it does not have to be a member (spectators hold views too, to know
    /// the current epoch).
    ///
    /// # Panics
    /// Panics if `members` is empty or not strictly increasing.
    pub fn assemble(members: Vec<usize>, me: usize, epoch: u64) -> Self {
        assert!(!members.is_empty(), "a view needs at least one member");
        assert!(
            members.windows(2).all(|w| w[0] < w[1]),
            "view members must be sorted and unique"
        );
        Self { members, me, epoch }
    }

    /// Number of member ranks (the collective size `p'`).
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Membership generation.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sorted physical ids of the members.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Whether physical rank `id` is a member.
    pub fn is_member(&self, id: usize) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// This rank's dense id in `0..size()`, or `None` when this rank is a
    /// spectator (not a member).
    pub fn my_index(&self) -> Option<usize> {
        self.members.binary_search(&self.me).ok()
    }

    /// Map a dense member index back to the physical rank id.
    ///
    /// # Panics
    /// Panics if `dense` is out of range.
    pub fn physical(&self, dense: usize) -> usize {
        self.members[dense]
    }

    /// Map a physical rank id to its dense index, if a member.
    pub fn dense_of(&self, physical: usize) -> Option<usize> {
        self.members.binary_search(&physical).ok()
    }

    /// The shrunk view: keep only `survivors` (given as a membership mask
    /// over the *current* dense ids), bump the epoch.
    ///
    /// # Panics
    /// Panics if the mask length differs from `size()` or no rank survives.
    pub fn shrink_to(&self, survivors: &[bool]) -> Self {
        assert_eq!(survivors.len(), self.size(), "survivor mask length");
        let members: Vec<usize> = self
            .members
            .iter()
            .zip(survivors)
            .filter_map(|(&m, &alive)| alive.then_some(m))
            .collect();
        assert!(!members.is_empty(), "world collapsed: no surviving ranks");
        Self {
            members,
            me: self.me,
            epoch: self.epoch + 1,
        }
    }

    /// The grown view: back to full world membership at the next epoch.
    pub fn grow_full(&self, world_size: usize) -> Self {
        Self {
            members: (0..world_size).collect(),
            me: self.me,
            epoch: self.epoch + 1,
        }
    }

    /// Tag namespace for *blocking* collectives at this epoch, to be OR'd
    /// into the collective id passed to the schedule constructors. Epoch 0
    /// maps to namespace 0, i.e. the classic tags. The namespace occupies
    /// bits 7..19 of the collective id — clear of the low ids 0..4 the ring
    /// constructors use, and small enough that the composed
    /// `tag_seg(id, step, seg)` stays below [`crate::CONTROL_BIT`].
    pub fn blocking_ns(&self) -> u64 {
        (self.epoch & EPOCH_MASK) << 7
    }

    /// Tag namespace for *nonblocking* collectives at this epoch, to be
    /// OR'd into the collective (bucket) index. Bucket indices are small
    /// (thousands at most); the epoch occupies bits 20..32 of the
    /// collective field, keeping the composed tag inside the 50-bit
    /// collective budget of the nonblocking tag scheme.
    pub fn nb_ns(&self) -> u64 {
        (self.epoch & EPOCH_MASK) << 20
    }
}

/// Aggregate traffic statistics for one [`World::run`] execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total payload bytes sent by all ranks.
    pub bytes_sent: u64,
    /// Total messages sent by all ranks.
    pub messages_sent: u64,
    /// Messages parked at least once on a mismatched tag across all ranks.
    /// A nonzero value under a strictly in-order tag schedule points at a
    /// tag-matching bug; persistent growth points at messages parked
    /// forever.
    pub messages_parked: u64,
    /// Fault events actually injected by the plan (always 0 without a
    /// fault plane). Chaos tests cross-check this against
    /// [`FaultPlan::fired_count`].
    pub faults_injected: u64,
}

/// A world of `p` ranks: a reusable lazy channel fabric plus a barrier,
/// executed on demand as `p` scoped threads.
///
/// Construction is cheap (no channels are created until ranks talk), so a
/// scheduler can hold hundreds of live worlds in one process; each
/// [`World::execute`] leases its compute budget from the process-wide
/// [`summit_pool::arbiter`] for exactly the duration of the execution. The
/// world survives its executions — running the same `World` again reuses
/// the fabric allocation with all links reset to unborn.
pub struct World {
    size: usize,
    id: u64,
    fabric: Arc<Fabric>,
    barrier: Arc<Barrier>,
    last_stats: TrafficStats,
}

/// Process-unique world ids, for failure attribution across many worlds.
static NEXT_WORLD_ID: AtomicU64 = AtomicU64::new(0);

impl World {
    /// A new world of `p` ranks. No threads are spawned and no channels
    /// created until [`World::execute`].
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "world size must be positive");
        World {
            size: p,
            id: NEXT_WORLD_ID.fetch_add(1, Ordering::Relaxed),
            fabric: Arc::new(Fabric::new(p)),
            barrier: Arc::new(Barrier::new(p)),
            last_stats: TrafficStats::default(),
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Process-unique id of this world (also reported by
    /// [`Rank::world_id`] and in join-failure panics).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Directed channels the most recent execution actually created — the
    /// laziness witness (an eager matrix would always report `p·(p−1)`).
    pub fn links_created(&self) -> u64 {
        self.fabric.links_born.load(Ordering::Relaxed)
    }

    /// Traffic statistics of the most recent execution (zeros before the
    /// first). Lets callers that hand the world to library plumbing
    /// discarding the [`World::execute_with_stats`] tuple — the scheduler's
    /// execution backend — still account the traffic afterwards.
    pub fn last_traffic(&self) -> TrafficStats {
        self.last_stats
    }

    /// Run `f` on this world's `p` ranks and collect each rank's return
    /// value, ordered by rank id. The world is reusable afterwards.
    ///
    /// # Panics
    /// Panics if any rank's closure panics; the message names this world
    /// and the first panicking rank.
    pub fn execute<F, R>(&mut self, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.execute_with_stats(f).0
    }

    /// Like [`World::execute`] but also returns aggregate traffic
    /// statistics, which tests use to cross-validate the analytic cost
    /// models. Stats are per-execution and per-world: concurrent worlds
    /// never see each other's counters.
    pub fn execute_with_stats<F, R>(&mut self, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.execute_inner(None, f)
    }

    /// Run `f` with the given [`FaultPlan`] installed: sends consult the
    /// plan (drops, delays, corruptions), checked receives poll for
    /// scheduled rank kills, and transport checksums are attached to every
    /// data-plane message.
    ///
    /// The plan is shared — its one-shot event state is visible to the
    /// caller afterwards (e.g. [`FaultPlan::fired_count`]).
    pub fn execute_with_faults<F, R>(
        &mut self,
        plan: Arc<FaultPlan>,
        f: F,
    ) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        self.execute_inner(Some(plan), f)
    }

    /// One-shot shim: `World::new(p).execute(f)`. Kept so the large body of
    /// pre-refactor callers and bit-identity tests compile unchanged.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank's closure panics.
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        World::new(p).execute(f)
    }

    /// One-shot shim for [`World::execute_with_stats`].
    pub fn run_with_stats<F, R>(p: usize, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        World::new(p).execute_with_stats(f)
    }

    /// One-shot shim for [`World::execute_with_faults`].
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank's closure panics.
    pub fn run_with_faults<F, R>(p: usize, plan: Arc<FaultPlan>, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        World::new(p).execute_with_faults(plan, f)
    }

    fn execute_inner<F, R>(&mut self, plan: Option<Arc<FaultPlan>>, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        let p = self.size;
        // Between executions the fabric has exactly one owner (every Rank
        // dropped when its thread exited); reclaim it mutably to reset all
        // links to unborn without locking.
        Arc::get_mut(&mut self.fabric)
            .expect("a Rank handle outlived its execution")
            .reset();
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let messages_sent = Arc::new(AtomicU64::new(0));
        let messages_parked = Arc::new(AtomicU64::new(0));
        let faults_injected = Arc::new(AtomicU64::new(0));
        let ranks: Vec<Rank> = (0..p)
            .map(|id| Rank {
                id,
                size: p,
                world_id: self.id,
                fabric: Arc::clone(&self.fabric),
                senders: (0..p).map(|_| OnceCell::new()).collect(),
                receivers: (0..p).map(|_| OnceCell::new()).collect(),
                pending: (0..p).map(|_| RefCell::new(VecDeque::new())).collect(),
                barrier: Arc::clone(&self.barrier),
                bytes_sent: Arc::clone(&bytes_sent),
                messages_sent: Arc::clone(&messages_sent),
                messages_parked: Arc::clone(&messages_parked),
                faults: plan
                    .as_ref()
                    .map(|pl| FaultState::new(Arc::clone(pl), id, Arc::clone(&faults_injected))),
                pool: BufferPool::default(),
                sent_messages: Cell::new(0),
                sent_bytes: Cell::new(0),
            })
            .collect();

        // Lease this execution's compute budget from the process-wide
        // arbiter: each rank's tensor kernels dispatch onto the shared
        // `summit_pool` worker pool under a disjoint per-rank budget. With
        // one live world this is the classic even `machine / p` share; with
        // many, the worlds split the machine instead of each claiming all
        // of it. The lease is RAII on this stack frame, so a rank panic
        // (which unwinds through the scope below) still releases it.
        let lease = summit_pool::arbiter().lease(p);
        let budget = lease.per_rank_budget();
        let world_id = self.id;
        let joined: Vec<std::thread::Result<R>> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|rank| {
                    scope.spawn(move || {
                        summit_pool::set_core_budget(budget);
                        f(&rank)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        drop(lease);
        let mut results = Vec::with_capacity(p);
        for (rank_id, joined_rank) in joined.into_iter().enumerate() {
            match joined_rank {
                Ok(r) => results.push(r),
                Err(payload) => {
                    // Attribute the failure: with hundreds of worlds in one
                    // process, "a rank panicked" alone is undebuggable.
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "<non-string panic payload>".to_string());
                    panic!("world {world_id}: a rank panicked (rank {rank_id} of {p}): {msg}");
                }
            }
        }
        let stats = TrafficStats {
            bytes_sent: bytes_sent.load(Ordering::Relaxed),
            messages_sent: messages_sent.load(Ordering::Relaxed),
            messages_parked: messages_parked.load(Ordering::Relaxed),
            faults_injected: faults_injected.load(Ordering::Relaxed),
        };
        self.last_stats = stats;
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |r| {
            assert_eq!(r.size(), 1);
            r.barrier();
            r.id()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                r.send(1, 7, vec![1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                r.send(0, 8, got.iter().map(|x| x * 2.0).collect());
                vec![]
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tags_demultiplex_out_of_order() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, vec![2.0]);
                r.send(1, 1, vec![1.0]);
                vec![]
            } else {
                // Receive tag 1 first: the tag-2 message must be parked.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn ring_send_recv_rotates() {
        let p = 5;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let got = r.send_recv(right, left, 0, vec![r.id() as f32]);
            got[0]
        });
        for (id, v) in out.iter().enumerate() {
            assert_eq!(*v, ((id + p - 1) % p) as f32);
        }
    }

    #[test]
    fn traffic_stats_count_payload_bytes() {
        let (_, stats) = World::run_with_stats(2, |r| {
            if r.id() == 0 {
                r.send(1, 0, vec![0.0; 100]);
            } else {
                let _ = r.recv(0, 0);
            }
        });
        assert_eq!(stats.bytes_sent, 400);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |r| {
            counter.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn ranks_get_disjoint_core_budgets() {
        let p = 4;
        let budgets = World::run(p, |_r| summit_pool::core_budget());
        // Budgets now come from the arbiter: a solo world gets the classic
        // even share, but sibling tests execute worlds concurrently in this
        // process, so the grant here may be anywhere between the inline
        // floor (1) and that share — uniform across ranks either way.
        let ceiling = summit_pool::rank_budget_from_env(p);
        assert!(
            budgets.windows(2).all(|w| w[0] == w[1]),
            "every rank gets the same share: {budgets:?}"
        );
        assert!(
            budgets.iter().all(|&b| (1..=ceiling).contains(&b)),
            "budget within [1, even share]: {budgets:?} vs ceiling {ceiling}"
        );
    }

    #[test]
    fn solo_world_budget_is_the_even_share() {
        // Pin down the single-world grant without inter-test interference
        // by asking a private arbiter instead of the global one.
        let arb = summit_pool::CoreArbiter::with_capacity(summit_pool::machine_parallelism());
        for p in [1usize, 2, 4, 8] {
            let lease = arb.lease(p);
            assert_eq!(
                lease.per_rank_budget(),
                summit_pool::rank_budget(summit_pool::machine_parallelism(), p, None),
                "solo world of {p} ranks"
            );
        }
    }

    #[test]
    fn fabric_creates_only_used_links() {
        let p = 6;
        let mut world = World::new(p);
        assert_eq!(world.links_created(), 0, "construction opens no channels");
        world.execute(|r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let got = r.send_recv(right, left, 0, vec![r.id() as f32]);
            assert_eq!(got[0], left as f32);
        });
        // A ring touches exactly p directed pairs; the eager matrix minted
        // p·(p−1) = 30.
        assert_eq!(world.links_created(), p as u64, "lazy fabric");
    }

    #[test]
    fn world_is_reusable_and_resets_per_execution() {
        let p = 3;
        let mut world = World::new(p);
        let mut outs = Vec::new();
        let mut stats = Vec::new();
        for _ in 0..3 {
            let (out, st) = world.execute_with_stats(|r| {
                let right = (r.id() + 1) % p;
                let left = (r.id() + p - 1) % p;
                let got = r.send_recv(right, left, 7, vec![r.id() as f32; 16]);
                got[0]
            });
            outs.push(out);
            stats.push(st);
        }
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[1], outs[2]);
        // Stats are per-execution, not cumulative across reuses.
        assert_eq!(stats[0], stats[1]);
        assert_eq!(stats[1], stats[2]);
        assert_eq!(stats[0].messages_sent, p as u64);
    }

    #[test]
    fn worlds_have_unique_ids_and_ranks_know_theirs() {
        let a = World::new(2);
        let b = World::new(2);
        assert_ne!(a.id(), b.id());
        let mut c = World::new(2);
        let cid = c.id();
        let seen = c.execute(|r| r.world_id());
        assert!(seen.iter().all(|&w| w == cid));
    }

    #[test]
    fn join_failure_names_world_and_rank() {
        let mut world = World::new(3);
        let wid = world.id();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            world.execute(|r| {
                r.barrier();
                if r.id() == 2 {
                    panic!("deliberate test failure");
                }
            });
        }));
        let payload = result.expect_err("rank 2 panicked");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("formatted panic message");
        assert!(msg.contains("a rank panicked"), "compat substring: {msg}");
        assert!(msg.contains(&format!("world {wid}")), "world id: {msg}");
        assert!(msg.contains("rank 2"), "rank id: {msg}");
        assert!(msg.contains("deliberate test failure"), "payload: {msg}");
    }

    #[test]
    fn recv_from_rank_that_never_opened_the_link_panics() {
        // Rank 1 exits without ever sending to rank 0; rank 0's lazy recv
        // must observe the departure as a disconnect, not a hang.
        let result = std::panic::catch_unwind(|| {
            World::run(2, |r| {
                if r.id() == 0 {
                    let _ = r.recv(1, 42);
                }
                // rank 1 returns immediately: its Drop sweeps the fabric.
            });
        });
        assert!(result.is_err(), "departed peer must disconnect lazy links");
    }

    #[test]
    fn concurrent_worlds_isolate_traffic_stats() {
        let handles: Vec<_> = (0..4)
            .map(|w| {
                std::thread::spawn(move || {
                    let msgs = 1 + w as u64; // distinct per world
                    World::run_with_stats(2, move |r| {
                        if r.id() == 0 {
                            for k in 0..msgs {
                                r.send(1, k, vec![0.0; 8]);
                            }
                        } else {
                            for k in 0..msgs {
                                let _ = r.recv(0, k);
                            }
                        }
                    })
                    .1
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            let stats = h.join().expect("world thread");
            assert_eq!(
                stats.messages_sent,
                1 + w as u64,
                "world {w} sees only its own traffic"
            );
            assert_eq!(stats.bytes_sent, (1 + w as u64) * 32);
        }
    }

    #[test]
    fn pooled_ring_step_reuses_buffers() {
        let p = 4;
        let rounds = 32;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let src = vec![r.id() as f32; 256];
            let mut dst = vec![0.0f32; 256];
            for round in 0..rounds {
                r.send_recv_into(right, left, round, &src, &mut dst);
                assert_eq!(dst[0], left as f32);
            }
            r.barrier();
            r.pool_stats()
        });
        for stats in out {
            // One miss to mint the first buffer; every later round reuses
            // the buffer recycled from the left neighbour.
            assert_eq!(stats.misses, 1, "pool stats: {stats:?}");
            assert_eq!(stats.hits, rounds - 1, "pool stats: {stats:?}");
        }
    }

    #[test]
    fn recv_into_checks_length() {
        let result = std::panic::catch_unwind(|| {
            World::run(2, |r| {
                if r.id() == 0 {
                    r.send_from(1, 0, &[1.0, 2.0]);
                } else {
                    let mut dst = [0.0f32; 3];
                    r.recv_into(0, 0, &mut dst);
                }
            });
        });
        assert!(result.is_err(), "length mismatch must panic");
    }

    #[test]
    fn send_recv_fold_reduces_in_place() {
        let p = 3;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let src = [r.id() as f32 + 1.0; 4];
            let mut acc = [10.0f32; 4];
            r.send_recv_fold(right, left, 0, &src, &mut acc, |a, b| a + b);
            acc[0]
        });
        for (id, v) in out.iter().enumerate() {
            let left = (id + p - 1) % p;
            assert_eq!(*v, 10.0 + left as f32 + 1.0);
        }
    }

    #[test]
    fn pool_classes_round_capacity_correctly() {
        let pool = BufferPool::default();
        // A released odd-capacity buffer must only satisfy requests it can
        // actually hold without growing.
        let mut odd = Vec::with_capacity(5);
        odd.push(1.0f32);
        pool.release(odd);
        let got = pool.acquire(8);
        assert!(got.capacity() >= 8, "capacity {}", got.capacity());
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                outstanding: 0,
            }
        );
        let got2 = pool.acquire(4);
        assert!(got2.capacity() >= 4);
        assert_eq!(
            pool.stats().hits,
            1,
            "class-2 request reuses the cap-5 buffer"
        );
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn self_send_rejected() {
        World::run(2, |r| {
            if r.id() == 0 {
                r.send(0, 0, vec![]);
            }
        });
    }

    #[test]
    fn parked_messages_are_counted() {
        let (_, stats) = World::run_with_stats(2, |r| {
            if r.id() == 0 {
                // Tag 2 arrives first but is received second: it parks once.
                r.send(1, 2, vec![2.0]);
                r.send(1, 1, vec![1.0]);
            } else {
                let _ = r.recv(0, 1);
                let _ = r.recv(0, 2);
            }
        });
        assert_eq!(stats.messages_parked, 1);
        assert_eq!(stats.faults_injected, 0);
    }

    #[test]
    fn drain_all_clears_parked_and_in_flight() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                r.send(1, 9, vec![1.0; 8]);
                r.send(1, 10, vec![2.0; 8]);
                r.barrier();
                0
            } else {
                r.barrier();
                // Fishing for an absent tag parks both queued messages.
                assert!(r.try_recv(0, 99).is_none());
                r.drain_all()
            }
        });
        assert_eq!(out[1], 2);
    }

    #[test]
    fn faultless_worlds_report_faults_disabled() {
        World::run(2, |r| {
            assert!(!r.faults_enabled());
            assert!(r.poll_fault_kill().is_ok());
            r.set_fault_step(3); // no-op without a plane
            r.barrier();
        });
    }

    #[test]
    fn faulted_drop_surfaces_as_timeout() {
        use crate::faults::TagClass;
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 1, TagClass::Any, 0));
        let (out, stats) = World::run_with_faults(2, Arc::clone(&plan), |r| {
            let ok = if r.id() == 0 {
                r.send(1, 5, vec![1.0]);
                true
            } else {
                matches!(
                    r.recv_timeout(0, 5, Duration::from_millis(50)),
                    Err(CommError::Timeout { from: 0, tag: 5 })
                )
            };
            // Keep rank 0 alive past the timeout so the failure mode is a
            // timeout, not a disconnect.
            r.barrier();
            ok
        });
        assert!(out[1], "dropped message must time out, not hang");
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(plan.fired_count(), 1);
    }

    #[test]
    fn faulted_corruption_is_detected() {
        use crate::faults::TagClass;
        let plan = Arc::new(FaultPlan::empty().corrupt_message(0, 1, TagClass::Any, 0));
        let (out, _) = World::run_with_faults(2, plan, |r| {
            if r.id() == 0 {
                r.send(1, 5, vec![1.0, 2.0, 3.0]);
                true
            } else {
                matches!(
                    r.recv_timeout(0, 5, Duration::from_millis(500)),
                    Err(CommError::Corrupt { from: 0, tag: 5 })
                )
            }
        });
        assert!(out[1], "flipped mantissa bit must fail the checksum");
    }

    #[test]
    fn clean_messages_pass_checked_receives_under_faults() {
        let plan = Arc::new(FaultPlan::empty());
        let (out, _) = World::run_with_faults(2, plan, |r| {
            if r.id() == 0 {
                r.send(1, 5, vec![4.0, 5.0]);
                vec![]
            } else {
                r.recv_timeout(0, 5, Duration::from_millis(500)).unwrap()
            }
        });
        assert_eq!(out[1], vec![4.0, 5.0]);
    }

    mod pool_boundaries {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Satellite: buffers of size exactly 2^k and 2^k ± 1 land in
            /// (and are served from) the correct capacity class, and a
            /// recycled buffer never shrinks.
            #[test]
            // k starts at 2: for k = 1, `below` is 1 whose class is 0.
            fn classes_respect_power_of_two_boundaries(k in 2u32..16) {
                let below = (1usize << k) - 1;
                let exact = 1usize << k;
                let above = exact + 1;
                prop_assert_eq!(BufferPool::class_of(below), k as usize);
                prop_assert_eq!(BufferPool::class_of(exact), k as usize);
                prop_assert_eq!(BufferPool::class_of(above), k as usize + 1);

                let pool = BufferPool::default();
                let buf = pool.acquire(exact);
                let cap = buf.capacity();
                prop_assert!(cap >= exact);
                pool.release(buf);

                // A class-(k+1) request must NOT reuse the class-k buffer
                // (it could not hold `above` without growing).
                let big = pool.acquire(above);
                prop_assert!(big.capacity() >= above);
                prop_assert_eq!(pool.stats().misses, 2);
                prop_assert_eq!(pool.stats().hits, 0);
                pool.release(big);

                // Both 2^k and 2^k - 1 requests reuse the class-k buffer,
                // and its capacity never shrank.
                for len in [exact, below] {
                    let hit = pool.acquire(len);
                    prop_assert!(hit.capacity() >= cap, "recycled buffer shrank");
                    pool.release(hit);
                }
                prop_assert_eq!(pool.stats().hits, 2);
                prop_assert_eq!(pool.stats().outstanding, 0);
            }
        }
    }
}
