//! Row-major dense matrix with the matmul variants backprop needs.

/// A dense, row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Row count above which matmuls parallelize over scoped threads.
const PAR_THRESHOLD: usize = 128;

/// Cache-blocking tile for the shared dimension of the transposed matmuls:
/// 64 rows × up to ~256 f32 columns ≈ 64 KB, comfortably inside L2 while
/// leaving room for the output row being accumulated.
const BLOCK_ROWS: usize = 64;

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an owned buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices (test/helper constructor).
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-range indices (debug and release).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` (`m×k · k×n → m×n`), ikj order, parallel over row
    /// blocks for large `m`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let n = other.cols;
        let run_rows = |rows_out: &mut [f32], row_range: std::ops::Range<usize>| {
            for (oi, i) in row_range.enumerate() {
                let a_row = self.row(i);
                let out_row = &mut rows_out[oi * n..(oi + 1) * n];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = other.row(k);
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        };
        if self.rows < PAR_THRESHOLD {
            run_rows(&mut out.data, 0..self.rows);
        } else {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
                .min(self.rows);
            let chunk_rows = self.rows.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                    let start = t * chunk_rows;
                    let end = (start + chunk.len() / n).min(self.rows);
                    let run = &run_rows;
                    s.spawn(move || run(chunk, start..end));
                }
            });
        }
        out
    }

    /// `selfᵀ · other` (`(m×k)ᵀ · m×n → k×n`) without materializing the
    /// transpose. This is the weight-gradient product `Xᵀ · dY`, the
    /// backward-pass hot kernel; output rows are chunked over scoped
    /// threads like [`Matrix::matmul`], with the shared `m` dimension
    /// cache-blocked so each output row stays hot across a block of input
    /// rows.
    ///
    /// Every output element accumulates its `m` terms in ascending-`i`
    /// order with the same zero-skip as the serial loop, so the parallel
    /// and serial paths are bit-identical.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_at_b row mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        let n = other.cols;
        // Each thread owns a band of output rows (a `k` range) and streams
        // all `m` input rows through it, blocked so `out_row` is revisited
        // while a block of `other` rows is still in cache. Blocking only
        // groups the ascending-`i` accumulation; it never reorders it.
        let run_rows = |rows_out: &mut [f32], k_range: std::ops::Range<usize>| {
            for ib in (0..self.rows).step_by(BLOCK_ROWS) {
                let iend = (ib + BLOCK_ROWS).min(self.rows);
                for (ok, k) in k_range.clone().enumerate() {
                    let out_row = &mut rows_out[ok * n..(ok + 1) * n];
                    for i in ib..iend {
                        let a = self.data[i * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        let b_row = other.row(i);
                        for (o, &b) in out_row.iter_mut().zip(b_row) {
                            *o += a * b;
                        }
                    }
                }
            }
        };
        if self.cols < PAR_THRESHOLD {
            run_rows(&mut out.data, 0..self.cols);
        } else {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
                .min(self.cols);
            let chunk_rows = self.cols.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                    let start = t * chunk_rows;
                    let end = (start + chunk.len() / n).min(self.cols);
                    let run = &run_rows;
                    s.spawn(move || run(chunk, start..end));
                }
            });
        }
        out
    }

    /// `self · otherᵀ` (`m×k · (n×k)ᵀ → m×n`) without materializing the
    /// transpose. This is the input-gradient product `dY · Wᵀ`, the other
    /// backward-pass hot kernel; output rows are chunked over scoped
    /// threads like [`Matrix::matmul`], with the `other`-row loop
    /// cache-blocked so a block of `Wᵀ` rows is reused across the chunk's
    /// output rows.
    ///
    /// Each output element is one [`crate::dot`] exactly as in the serial
    /// loop, so the parallel path is bit-identical.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_a_bt column mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        let n = other.rows;
        let run_rows = |rows_out: &mut [f32], row_range: std::ops::Range<usize>| {
            for jb in (0..n).step_by(BLOCK_ROWS) {
                let jend = (jb + BLOCK_ROWS).min(n);
                for (oi, i) in row_range.clone().enumerate() {
                    let a_row = self.row(i);
                    let out_row = &mut rows_out[oi * n..(oi + 1) * n];
                    for (o, j) in out_row[jb..jend].iter_mut().zip(jb..jend) {
                        *o = crate::dot(a_row, other.row(j));
                    }
                }
            }
        };
        if self.rows < PAR_THRESHOLD {
            run_rows(&mut out.data, 0..self.rows);
        } else {
            let threads = std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(4)
                .min(self.rows);
            let chunk_rows = self.rows.div_ceil(threads);
            std::thread::scope(|s| {
                for (t, chunk) in out.data.chunks_mut(chunk_rows * n).enumerate() {
                    let start = t * chunk_rows;
                    let end = (start + chunk.len() / n).min(self.rows);
                    let run = &run_rows;
                    s.spawn(move || run(chunk, start..end));
                }
            });
        }
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        crate::axpy(1.0, &other.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::l2_norm(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[3.0, 1.0, 0.0], &[2.0, 2.0, 1.0]]);
        let want_atb = a.transpose().matmul(&b);
        assert_eq!(a.matmul_at_b(&b), want_atb);

        let c = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]); // 2x2
        let d = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5], &[0.0, 3.0]]); // 3x2
        let want_abt = c.matmul(&d.transpose());
        assert_eq!(c.matmul_a_bt(&d), want_abt);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Force the parallel path with > PAR_THRESHOLD rows.
        let m = 300;
        let k = 17;
        let n = 23;
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 7) as f32 * 0.25).collect());
        let par = a.matmul(&b);
        // Serial reference.
        let mut serial = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    let v = serial.get(i, j) + a.get(i, kk) * b.get(kk, j);
                    serial.set(i, j, v);
                }
            }
        }
        for i in 0..m {
            for j in 0..n {
                assert!((par.get(i, j) - serial.get(i, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn parallel_matmul_at_b_bit_identical_to_serial() {
        // Force the parallel path with > PAR_THRESHOLD output rows
        // (self.cols) and > BLOCK_ROWS shared rows so blocking engages.
        let m = 150;
        let k = 160;
        let n = 19;
        // Sprinkle exact zeros so the zero-skip path is exercised.
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        (i % 13) as f32 - 6.0
                    }
                })
                .collect(),
        );
        let b = Matrix::from_vec(
            m,
            n,
            (0..m * n).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect(),
        );
        let par = a.matmul_at_b(&b);
        // Serial reference: the original ascending-i accumulation with the
        // same zero-skip; must match bit-for-bit, not just approximately.
        let mut serial = Matrix::zeros(k, n);
        for i in 0..m {
            for kk in 0..k {
                let av = a.get(i, kk);
                if av == 0.0 {
                    continue;
                }
                for j in 0..n {
                    let v = serial.get(kk, j) + av * b.get(i, j);
                    serial.set(kk, j, v);
                }
            }
        }
        assert_eq!(par, serial);
    }

    #[test]
    fn parallel_matmul_a_bt_bit_identical_to_serial() {
        // Force the parallel path with > PAR_THRESHOLD rows and
        // > BLOCK_ROWS columns in the output so the j-blocking engages.
        let m = 140;
        let k = 21;
        let n = 130;
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k).map(|i| (i % 11) as f32 * 0.5 - 2.0).collect(),
        );
        let b = Matrix::from_vec(n, k, (0..n * k).map(|i| (i % 9) as f32 - 4.0).collect());
        let par = a.matmul_a_bt(&b);
        // Serial reference: one `dot` per element, exactly as the serial loop.
        let mut serial = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                serial.set(i, j, crate::dot(a.row(i), b.row(j)));
            }
        }
        assert_eq!(par, serial);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_and_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0]]);
        a.add_assign(&b);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
