//! Fitting the ML potential to ground-truth data and validating it — the
//! accuracy story of the paper's Section VI-A ("there is no guarantee for
//! the quality of ML models … far from the training data set", Zhang et
//! al.'s uniformly accurate potentials).

use summit_dl::optim::{Adam, Optimizer};
use summit_tensor::Matrix;

use crate::lj::LennardJones;
use crate::mlpot::MlPotential;
use crate::system::{Potential, System};

/// A labeled training configuration.
pub struct LabeledConfig {
    /// The configuration.
    pub system: System,
    /// Ground-truth ("first principles") potential energy.
    pub energy: f64,
}

/// Sample `count` configurations by running ground-truth MD from different
/// seeds and thermal velocities, labeling each snapshot with its LJ energy.
pub fn sample_configurations(count: usize, seed: u64) -> Vec<LabeledConfig> {
    let lj = LennardJones::standard();
    // Vary density and temperature so the labels span a real energy range
    // (constant-condition sampling would leave nothing to learn beyond the
    // mean — the out-of-distribution trap Section VI-A warns about).
    let boxes = [6.9f64, 7.2, 7.5, 7.8, 8.1];
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let mut sys = System::lattice(
            36,
            boxes[i % boxes.len()],
            0.05 + 0.04 * ((i % 3) as f64),
            seed.wrapping_add(i as u64 * 97),
        );
        // Decorrelate from the lattice start.
        sys.run(&lj, 40 + (i as u32 % 4) * 15, 0.002);
        let energy = lj.energy_and_forces(&sys).0;
        out.push(LabeledConfig {
            system: sys,
            energy,
        });
    }
    out
}

/// Training report.
#[derive(Debug, Clone, Copy)]
pub struct FitReport {
    /// Root-mean-square total-energy error on the training set.
    pub train_rmse: f64,
    /// RMSE on held-out configurations.
    pub test_rmse: f64,
    /// Standard deviation of the test labels (the "predict the mean"
    /// baseline error).
    pub test_label_std: f64,
}

/// Fit `potential` to the training set with Adam; evaluate on `test`.
pub fn fit(
    potential: &mut MlPotential,
    train: &[LabeledConfig],
    test: &[LabeledConfig],
    epochs: u32,
) -> FitReport {
    assert!(!train.is_empty() && !test.is_empty(), "need data");
    // Standardize descriptors on the training distribution.
    let raw: Vec<Matrix> = train
        .iter()
        .map(|c| potential.descriptors(&c.system).0)
        .collect();
    potential.fit_scaler(&raw);
    let standardized: Vec<Matrix> = raw
        .into_iter()
        .map(|mut d| {
            potential.standardize(&mut d);
            d
        })
        .collect();

    // Atomic reference energy: the network learns deviations only.
    let mean_atomic: f64 = train
        .iter()
        .map(|c| c.energy / c.system.len() as f64)
        .sum::<f64>()
        / train.len() as f64;
    potential.atom_ref_energy = mean_atomic;

    let mut opt = Adam::new(3e-3, 1e-6);
    for _ in 0..epochs {
        for (d, config) in standardized.iter().zip(train) {
            let _ = potential.training_gradients(d, config.energy);
            potential.for_each_group(|id, p, g| opt.step_group(id, 1.0, p, g));
            opt.advance();
        }
    }

    let rmse = |set: &[LabeledConfig]| -> f64 {
        let mut se = 0.0;
        for c in set {
            let (mut d, _) = potential.descriptors(&c.system);
            potential.standardize(&mut d);
            let per_atom = potential.per_atom_energies(&d);
            let e: f64 = (0..per_atom.rows())
                .map(|i| f64::from(per_atom.get(i, 0)))
                .sum::<f64>()
                + potential.atom_ref_energy * c.system.len() as f64;
            se += (e - c.energy).powi(2);
        }
        (se / set.len() as f64).sqrt()
    };
    let mean: f64 = test.iter().map(|c| c.energy).sum::<f64>() / test.len() as f64;
    let var: f64 = test.iter().map(|c| (c.energy - mean).powi(2)).sum::<f64>() / test.len() as f64;
    FitReport {
        train_rmse: rmse(train),
        test_rmse: rmse(test),
        test_label_std: var.sqrt(),
    }
}

/// L1 distance between two normalized RDF histograms.
pub fn rdf_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "histogram length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained_potential() -> (MlPotential, FitReport) {
        let configs = sample_configurations(48, 2026);
        let (train, test) = configs.split_at(36);
        let mut pot = MlPotential::new(12, 2.5, &[24, 24], 5);
        let report = fit(&mut pot, train, test, 150);
        (pot, report)
    }

    /// Energy accuracy AND dynamical fidelity of the fitted potential —
    /// one test so the (expensive) training happens once.
    #[test]
    fn fitted_potential_is_accurate_and_stable() {
        let (pot, report) = trained_potential();
        // Accuracy: beats the predict-the-mean baseline on held-out data.
        assert!(
            report.test_rmse < 0.5 * report.test_label_std,
            "test RMSE {} vs label std {}",
            report.test_rmse,
            report.test_label_std
        );
        assert!(report.train_rmse.is_finite() && report.train_rmse > 0.0);
        let lj = LennardJones::standard();

        // Self-consistency: energy conservation under ML forces.
        let mut ml_sys = System::lattice(36, 7.5, 0.1, 31);
        let e0 = ml_sys.kinetic_energy() + pot.energy_and_forces(&ml_sys).0;
        ml_sys.run(&pot, 250, 0.002);
        let e1 = ml_sys.kinetic_energy() + pot.energy_and_forces(&ml_sys).0;
        assert!(
            (e1 - e0).abs() < 0.05 * e0.abs().max(1.0),
            "ML-MD energy drift {e0} → {e1}"
        );

        // Structural fidelity: RDF of ML-MD ≈ RDF of ground-truth MD.
        let mut lj_sys = System::lattice(36, 7.5, 0.1, 31);
        lj_sys.run(&lj, 250, 0.002);
        let d = rdf_distance(&ml_sys.rdf(16, 3.0), &lj_sys.rdf(16, 3.0));
        assert!(d < 0.4, "RDF distance {d}");
        // And the excluded core survives (no unphysical overlaps).
        let core: f64 = ml_sys.rdf(16, 3.0)[..4].iter().sum();
        assert!(core < 0.02, "core invaded under ML forces: {core}");
    }

    #[test]
    fn sampling_is_deterministic_and_varied() {
        let a = sample_configurations(6, 7);
        let b = sample_configurations(6, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.energy, y.energy);
        }
        // Energies vary across samples (different temperatures/seeds).
        let min = a.iter().map(|c| c.energy).fold(f64::INFINITY, f64::min);
        let max = a.iter().map(|c| c.energy).fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 1e-3, "degenerate sample set");
    }

    #[test]
    fn rdf_distance_basics() {
        let a = vec![0.5, 0.5];
        let b = vec![0.25, 0.75];
        assert!((rdf_distance(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(rdf_distance(&a, &a), 0.0);
    }
}
