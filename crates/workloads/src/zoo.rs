//! The model zoo.

use serde::Serialize;
use summit_io::DatasetSpec;

use crate::GradPrecision;

/// A deep-learning training workload, described quantitatively.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Workload {
    /// Model/workload name.
    pub name: &'static str,
    /// Trainable parameter count.
    pub params: f64,
    /// Training FLOPs per sample (forward + backward).
    pub flops_per_sample: f64,
    /// Bytes read per training sample.
    pub sample_bytes: f64,
    /// Per-GPU micro-batch size.
    pub per_gpu_batch: u32,
    /// Sustained single-GPU training throughput on in-memory data,
    /// samples/s (the quantity the paper's VI-B estimate starts from).
    pub samples_per_sec_per_gpu: f64,
    /// Gradient allreduce precision.
    pub grad_precision: GradPrecision,
    /// The training dataset.
    pub dataset: DatasetSpec,
}

impl Workload {
    /// Every workload in the zoo, for sweeps.
    pub fn all() -> Vec<Workload> {
        vec![
            Workload::resnet50(),
            Workload::bert_large(),
            Workload::deeplabv3plus(),
            Workload::tiramisu(),
            Workload::fc_densenet(),
            Workload::pi_gan(),
            Workload::wavenet_gw(),
            Workload::bert_smiles(),
            Workload::deepmd(),
        ]
    }

    /// ResNet50 on ImageNet — Section VI-B's reference CNN. 25.6 M params
    /// (≈100 MB fp32 gradient message). Throughput 2,900 samples/s/GPU is
    /// the synthetic-data upper bound chosen so the full-Summit demand is
    /// the paper's ≈20 TB/s (see DESIGN.md fidelity notes); production
    /// throughput is roughly half that.
    pub fn resnet50() -> Self {
        Workload {
            name: "ResNet50/ImageNet",
            params: 25.6e6,
            flops_per_sample: 2.34e10, // ≈3× the 7.8 GF forward pass
            sample_bytes: 250.0e3,
            per_gpu_batch: 192,
            samples_per_sec_per_gpu: 2900.0,
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::imagenet(),
        }
    }

    /// BERT-large pretraining — Section VI-B's reference transformer.
    /// 345 M params (≈1.4 GB fp32 gradient message). The per-GPU batch and
    /// rate are set so one batch's forward+backward takes ≈110 ms, which the
    /// paper says matches the allreduce time ("hard to hide").
    pub fn bert_large() -> Self {
        Workload {
            name: "BERT-large",
            params: 345.0e6,
            flops_per_sample: 4.6e11, // seq len 512
            sample_bytes: 2.0e3,      // tokenized 512-token record
            per_gpu_batch: 8,
            samples_per_sec_per_gpu: 72.0,
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::new("wiki+books corpus", 40_000_000, 2.0e3),
        }
    }

    /// Modified DeepLabv3+ climate segmentation (Kurth et al., GB/2018).
    /// 1.13 EF peak at 4,560 nodes → ≈41 TF/GPU achieved; single-GPU rate
    /// back-derived using the reported 90.7% parallel efficiency. fp16
    /// gradients with LARC and gradient lag.
    pub fn deeplabv3plus() -> Self {
        Workload {
            name: "DeepLabv3+ climate",
            params: 43.6e6,
            flops_per_sample: 2.0e12,     // 1152×768×16-channel segmentation
            sample_bytes: 317.0e6 / 22.0, // dataset bytes per cropped sample
            per_gpu_batch: 2,
            samples_per_sec_per_gpu: 22.8, // 45.5 TF/GPU single-GPU rate
            grad_precision: GradPrecision::Fp16,
            dataset: DatasetSpec::climate_extreme_weather(),
        }
    }

    /// Modified Tiramisu climate segmentation (Kurth et al.'s second
    /// network) — smaller and denser than DeepLabv3+.
    pub fn tiramisu() -> Self {
        Workload {
            name: "Tiramisu climate",
            params: 9.4e6,
            flops_per_sample: 1.1e12,
            sample_bytes: 317.0e6 / 22.0,
            per_gpu_batch: 2,
            samples_per_sec_per_gpu: 35.0,
            grad_precision: GradPrecision::Fp16,
            dataset: DatasetSpec::climate_extreme_weather(),
        }
    }

    /// FC-DenseNet for electron-microscopy inverse problems (Laanait et
    /// al.): 2.15 EF peak at 4,600 nodes → ≈78 TF/GPU; global batch 27,600
    /// = 1 sample per GPU; very large samples, heavy gradient-reduction
    /// optimizations (fp16 gradients).
    pub fn fc_densenet() -> Self {
        Workload {
            name: "FC-DenseNet microscopy",
            params: 220.0e6,
            flops_per_sample: 7.8e12,
            sample_bytes: 25.0e6,
            per_gpu_batch: 1,
            samples_per_sec_per_gpu: 10.4, // ≈81 TF/GPU single-GPU
            grad_precision: GradPrecision::Fp16,
            dataset: DatasetSpec::microscopy_diffraction(),
        }
    }

    /// Physics-informed GAN for stochastic PDEs (Yang et al.): >1.2 EF on
    /// 4,584 nodes at 93% efficiency; small network, huge sample rate, and
    /// a model-parallel scheme that keeps the data-parallel message small.
    pub fn pi_gan() -> Self {
        Workload {
            name: "PI-GAN subsurface",
            params: 5.6e6,
            flops_per_sample: 4.5e9,
            sample_bytes: 8.0e3,
            per_gpu_batch: 1024,
            samples_per_sec_per_gpu: 10600.0, // ≈47 TF/GPU single-GPU
            grad_precision: GradPrecision::Fp16,
            dataset: DatasetSpec::new("stochastic PDE realizations", 120_000_000, 8.0e3),
        }
    }

    /// Modified WaveNet for gravitational-wave parameter inference (Khan et
    /// al.): LAMB optimizer, 80% scaling efficiency from 8 to 1,024 nodes.
    pub fn wavenet_gw() -> Self {
        Workload {
            name: "WaveNet black-hole mergers",
            params: 23.0e6,
            flops_per_sample: 1.2e10,
            sample_bytes: 32.0e3, // 1-second strain series
            per_gpu_batch: 64,
            samples_per_sec_per_gpu: 2600.0,
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::new("simulated BBH waveforms", 12_000_000, 32.0e3),
        }
    }

    /// BERT pretrained on SMILES compounds (Blanchard et al., GB/2021
    /// COVID): 603 PF at 4,032 nodes → ≈25 TF/GPU achieved; LAMB with
    /// gradient accumulation to a 5.8 M global batch; 68% scaling 1→4,032
    /// nodes (83.3% without I/O).
    pub fn bert_smiles() -> Self {
        Workload {
            name: "BERT-SMILES drug LM",
            params: 340.0e6,
            flops_per_sample: 1.3e11, // short SMILES sequences
            sample_bytes: 60.0,
            per_gpu_batch: 240,
            samples_per_sec_per_gpu: 230.0, // ≈30 TF/GPU single-GPU
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::smiles_compounds(),
        }
    }

    /// DeePMD machine-learned molecular-dynamics potential (Jia et al.,
    /// GB/2020 winner): a tiny network evaluated at enormous rate inside an
    /// MD loop; training is small-scale, inference dominates.
    pub fn deepmd() -> Self {
        Workload {
            name: "DeePMD water/copper potential",
            params: 840.0e3,
            flops_per_sample: 4.0e7, // per-atom descriptor + net
            sample_bytes: 1.2e3,
            per_gpu_batch: 4096,
            samples_per_sec_per_gpu: 450_000.0,
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::new("DFT training configurations", 30_000_000, 1.2e3),
        }
    }

    /// A generic decoder-style transformer language model of `params`
    /// parameters at sequence length 1,024 — the "growing the model size to
    /// improve accuracy" trajectory the paper expects to continue (Section
    /// IV-B and its reference 35). Training FLOPs follow the 6·params·tokens rule;
    /// sustained rate is a V100-realistic 30 TF/GPU; used by the model-
    /// parallelism planner for beyond-BERT what-if analyses.
    ///
    /// # Panics
    /// Panics if `params` is not positive.
    pub fn transformer_lm(name: &'static str, params: f64) -> Self {
        assert!(params > 0.0, "parameter count must be positive");
        let tokens_per_sample = 1024.0;
        let flops_per_sample = 6.0 * params * tokens_per_sample;
        let sustained = 30.0e12;
        Workload {
            name,
            params,
            flops_per_sample,
            sample_bytes: 4.0 * tokens_per_sample,
            per_gpu_batch: 8,
            samples_per_sec_per_gpu: sustained / flops_per_sample,
            grad_precision: GradPrecision::Fp32,
            dataset: DatasetSpec::new("generic LM corpus", 1_000_000_000, 4.0 * 1024.0),
        }
    }

    /// Bytes of the per-device gradient allreduce message.
    pub fn gradient_message_bytes(&self) -> f64 {
        self.params * self.grad_precision.bytes()
    }

    /// Sustained single-GPU training rate in FLOP/s.
    pub fn sustained_flops_per_gpu(&self) -> f64 {
        self.samples_per_sec_per_gpu * self.flops_per_sample
    }

    /// Time for one micro-batch forward+backward on one GPU, seconds.
    pub fn step_compute_seconds(&self) -> f64 {
        f64::from(self.per_gpu_batch) / self.samples_per_sec_per_gpu
    }

    /// Per-GPU input read bandwidth at full training rate, bytes/s.
    pub fn read_bw_per_gpu(&self) -> f64 {
        self.samples_per_sec_per_gpu * self.sample_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gradient_message_sizes() {
        // "the per device allreduce message size for the ResNet50 and
        // BERT-large models is about 100MB and 1.4 GB, respectively"
        let resnet = Workload::resnet50().gradient_message_bytes();
        assert!((resnet - 100.0e6).abs() / 100.0e6 < 0.05, "got {resnet}");
        let bert = Workload::bert_large().gradient_message_bytes();
        assert!((bert - 1.4e9).abs() / 1.4e9 < 0.05, "got {bert}");
    }

    #[test]
    fn bert_step_time_matches_paper_comm_comparison() {
        // Paper: the 110 ms BERT-large allreduce "is close to the time of
        // per-batch forward and backward propagation".
        let t = Workload::bert_large().step_compute_seconds();
        assert!((t - 0.110).abs() / 0.110 < 0.05, "got {t}");
    }

    #[test]
    fn resnet50_demand_matches_io_crate() {
        let w = Workload::resnet50();
        // 2900 samples/s × 250 KB = 725 MB/s per GPU; × 27,648 ≈ 20 TB/s.
        let total = w.read_bw_per_gpu() * 27_648.0;
        assert!((total - 20.0e12).abs() / 20.0e12 < 0.05, "got {total}");
    }

    #[test]
    fn sustained_rates_below_v100_peak() {
        // No workload may claim more than the V100's 125 TF mixed peak.
        for w in Workload::all() {
            let rate = w.sustained_flops_per_gpu();
            assert!(
                rate < 125.0e12,
                "{} claims {rate} FLOP/s > V100 peak",
                w.name
            );
            assert!(rate > 1.0e11, "{} implausibly slow: {rate}", w.name);
        }
    }

    #[test]
    fn laanait_and_kurth_rates_match_reported_aggregates() {
        // Laanait: 2.15 EF over 4,600 nodes × 6 GPUs ≈ 78 TF/GPU achieved;
        // our single-GPU rate must be ≥ that (efficiency ≤ 1).
        let fcd = Workload::fc_densenet().sustained_flops_per_gpu();
        assert!(fcd >= 2.15e18 / (4600.0 * 6.0));
        // Kurth: 1.13 EF over 4,560 × 6 ≈ 41.3 TF/GPU achieved at 90.7%
        // efficiency → single GPU ≈ 45.5 TF.
        let dlv3 = Workload::deeplabv3plus().sustained_flops_per_gpu();
        let achieved = 1.13e18 / (4560.0 * 6.0);
        assert!(dlv3 >= achieved && dlv3 <= achieved / 0.85);
    }

    #[test]
    fn zoo_names_unique() {
        let all = Workload::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name, b.name);
            }
        }
    }

    #[test]
    fn blanchard_global_batch_reachable_by_accumulation() {
        // 5.8 M global batch at 4,032 nodes × 6 GPUs × 240 per-GPU ≈ 5.8 M.
        let w = Workload::bert_smiles();
        let per_step = 4032.0 * 6.0 * f64::from(w.per_gpu_batch);
        assert!((per_step - 5.8e6).abs() / 5.8e6 < 0.01, "got {per_step}");
    }

    #[test]
    fn fp16_halves_message() {
        let k = Workload::deeplabv3plus();
        assert!((k.gradient_message_bytes() - k.params * 2.0).abs() < 1.0);
    }
}
