//! Offline stand-in for the `bytes` crate.
//!
//! `Bytes` is a cheaply cloneable, sliceable view over shared immutable
//! storage (`Arc<Vec<u8>>`); `BytesMut` is an append buffer that freezes
//! into `Bytes`. The `Buf`/`BufMut` traits carry the cursor-style
//! big-endian / little-endian accessors the checkpoint codec needs.

use std::sync::Arc;

/// Read cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > remaining()`.
    fn advance(&mut self, n: usize);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Consume a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Consume a big-endian u64.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Consume a little-endian f32.
    fn get_f32_le(&mut self) -> f32 {
        let v = f32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Consume a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
}

/// Append-side counterpart of [`Buf`].
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append the remaining contents of another buffer.
    fn put<B: Buf>(&mut self, mut src: B)
    where
        Self: Sized,
    {
        let n = src.remaining();
        self.put_slice(src.chunk());
        src.advance(n);
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a little-endian f32.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Shared immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Length of the (unconsumed) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new `Bytes` over `range` of this view (no copy).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copy the view into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] (no copy).
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.data.len(), "advance past end of buffer");
        self.data.drain(..n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_endian() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u32(0xDEADBEEF);
        b.put_u16(7);
        b.put_u64(1 << 40);
        b.put_f32_le(1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 4 + 2 + 8 + 4);
        assert_eq!(bytes.get_u32(), 0xDEADBEEF);
        assert_eq!(bytes.get_u16(), 7);
        assert_eq!(bytes.get_u64(), 1 << 40);
        assert_eq!(bytes.get_f32_le(), 1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = bytes.slice(2..5);
        assert_eq!(s.chunk(), &[2, 3, 4]);
        assert_eq!(s.to_vec(), vec![2, 3, 4]);
        assert_eq!(bytes.len(), 6, "parent view unchanged");
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_bounds_checked() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.advance(3);
    }
}
