//! Training-set descriptions and node-sharding plans.

use serde::Serialize;

/// A training dataset, described by sample count and bytes per sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of training samples.
    pub samples: u64,
    /// Average bytes per stored sample.
    pub bytes_per_sample: f64,
}

impl DatasetSpec {
    /// Create a dataset description.
    ///
    /// # Panics
    /// Panics if `samples == 0` or `bytes_per_sample <= 0`.
    pub fn new(name: &'static str, samples: u64, bytes_per_sample: f64) -> Self {
        assert!(samples > 0, "dataset must have samples");
        assert!(bytes_per_sample > 0.0, "sample size must be positive");
        DatasetSpec {
            name,
            samples,
            bytes_per_sample,
        }
    }

    /// ImageNet-1k as used by the ResNet50 benchmark the paper analyzes.
    /// 1.28 M images; we take 250 KB per decoded-and-resized training record
    /// (see DESIGN.md fidelity notes — the figure is chosen so the paper's
    /// ≈20 TB/s full-Summit demand is reproduced).
    pub fn imagenet() -> Self {
        DatasetSpec::new("ImageNet-1k", 1_281_167, 250.0e3)
    }

    /// The climate segmentation dataset of Kurth et al. (GB/2018): ≈20 TB of
    /// 16-channel weather imagery, ≈63 k high-resolution samples.
    pub fn climate_extreme_weather() -> Self {
        DatasetSpec::new("CAM5 extreme-weather imagery", 63_000, 317.0e6)
    }

    /// SMILES compound corpus of Blanchard et al. (GB/2021 COVID): ~9.6e9
    /// compound strings, ~60 B each.
    pub fn smiles_compounds() -> Self {
        DatasetSpec::new("SMILES compound corpus", 9_600_000_000, 60.0)
    }

    /// Electron microscopy diffraction dataset of Laanait et al.: ≈500 TB.
    pub fn microscopy_diffraction() -> Self {
        DatasetSpec::new("electron microscopy diffraction", 2_000_000, 250.0e6)
    }

    /// Total stored size in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.samples as f64 * self.bytes_per_sample
    }
}

/// An assignment of dataset samples to job nodes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardPlan {
    /// Number of nodes in the job.
    pub nodes: u32,
    /// Sample count per node (node i gets `counts[i]`).
    pub counts: Vec<u64>,
    /// Bytes per sample (copied from the dataset).
    pub bytes_per_sample: f64,
}

impl ShardPlan {
    /// Partition `dataset` across `nodes` nodes as evenly as possible
    /// (first `samples % nodes` nodes receive one extra sample).
    ///
    /// # Panics
    /// Panics if `nodes == 0`.
    pub fn partition(dataset: &DatasetSpec, nodes: u32) -> Self {
        assert!(nodes > 0, "cannot shard over zero nodes");
        let n = u64::from(nodes);
        let base = dataset.samples / n;
        let extra = dataset.samples % n;
        let counts = (0..n).map(|i| base + u64::from(i < extra)).collect();
        ShardPlan {
            nodes,
            counts,
            bytes_per_sample: dataset.bytes_per_sample,
        }
    }

    /// Replicate the full dataset on every node.
    pub fn replicate(dataset: &DatasetSpec, nodes: u32) -> Self {
        assert!(nodes > 0, "cannot shard over zero nodes");
        ShardPlan {
            nodes,
            counts: vec![dataset.samples; nodes as usize],
            bytes_per_sample: dataset.bytes_per_sample,
        }
    }

    /// Total samples stored across all nodes (> dataset samples when
    /// replicated).
    pub fn stored_samples(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bytes stored on the largest shard — what must fit in one node's NVMe.
    pub fn max_shard_bytes(&self) -> f64 {
        self.counts.iter().copied().max().unwrap_or(0) as f64 * self.bytes_per_sample
    }

    /// Total bytes stored across the job.
    pub fn total_bytes(&self) -> f64 {
        self.stored_samples() as f64 * self.bytes_per_sample
    }

    /// Whether this plan is a partition (every sample stored exactly once).
    pub fn is_partition(&self, dataset: &DatasetSpec) -> bool {
        self.stored_samples() == dataset.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imagenet_full_summit_demand_scale() {
        let d = DatasetSpec::imagenet();
        // 1.28 M × 250 KB ≈ 320 GB: fits easily on one node's 1.6 TB NVMe,
        // which is why ResNet50/ImageNet can be fully replicated.
        assert!(d.total_bytes() < 1.6e12);
    }

    #[test]
    fn big_science_datasets_outsize_one_nvme() {
        // "training data of a large-scale scientific application can easily
        // outsize single NVMe volume, hence data partitioning is needed"
        assert!(DatasetSpec::climate_extreme_weather().total_bytes() > 1.6e12);
        assert!(DatasetSpec::microscopy_diffraction().total_bytes() > 1.6e12);
    }

    #[test]
    fn partition_is_exact_and_balanced() {
        let d = DatasetSpec::new("t", 1003, 10.0);
        let p = ShardPlan::partition(&d, 8);
        assert!(p.is_partition(&d));
        let max = p.counts.iter().max().unwrap();
        let min = p.counts.iter().min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn replication_multiplies_storage() {
        let d = DatasetSpec::new("t", 100, 10.0);
        let r = ShardPlan::replicate(&d, 4);
        assert_eq!(r.stored_samples(), 400);
        assert!(!r.is_partition(&d));
        assert!((r.total_bytes() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn max_shard_bytes_reflects_imbalance() {
        let d = DatasetSpec::new("t", 10, 100.0);
        let p = ShardPlan::partition(&d, 3); // 4, 3, 3
        assert!((p.max_shard_bytes() - 400.0).abs() < 1e-9);
    }
}
