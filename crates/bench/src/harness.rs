//! Shared machinery for the machine-readable bench artifacts.
//!
//! Every bench target that used to hand-roll its own `target/BENCH_*.json`
//! writing (path anchoring, directory creation, error reporting) goes
//! through [`write_bench_json`] instead, and records its headline numbers
//! into the **committed perf trajectory** `BENCH_trajectory.json` at the
//! workspace root — one JSON line per (bench, PR) with the git revision and
//! date, so perf history survives `target/` cleans and reviews can diff the
//! curve instead of re-running old revisions.
//!
//! The trajectory file is append-per-PR: routine bench runs only *read* it
//! (the regression gate in `src/bin/gemm_gate.rs` compares fresh numbers
//! against the last committed entry); a run with `SUMMIT_BENCH_RECORD=1`
//! appends the new entry, which the PR then commits. No serde_json is
//! vendored, so both directions speak a line-oriented subset: one complete
//! JSON object per line, string keys, number/string scalar values.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The workspace root (the bench crate lives two levels below it).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// The workspace `target/` directory the CI artifacts upload from. Bench
/// binaries run with the *package* directory as CWD, so a bare relative
/// `target` would land in `crates/bench/target` — always anchor here.
pub fn target_dir() -> PathBuf {
    let dir = workspace_root().join("target");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a bench summary to `target/BENCH_<name>.json`, echoing the JSON
/// and the path to stdout (the CI log is the fallback artifact). Returns
/// the path written.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let file = target_dir().join(format!("BENCH_{name}.json"));
    match std::fs::write(&file, json) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
    print!("{json}");
    file
}

/// One committed trajectory record: a bench's headline metrics at one
/// revision.
#[derive(Debug, Clone)]
pub struct TrajectoryEntry {
    /// Bench name (`gemm`, `comm`, ...).
    pub bench: String,
    /// Abbreviated git revision the numbers were measured at.
    pub rev: String,
    /// ISO date of the measurement.
    pub date: String,
    /// Headline metrics, name → value. BTreeMap so the serialized line is
    /// deterministic.
    pub metrics: BTreeMap<String, f64>,
}

impl TrajectoryEntry {
    /// Build an entry for `bench` stamped with the current git revision
    /// and today's date.
    pub fn now(bench: &str, metrics: BTreeMap<String, f64>) -> Self {
        TrajectoryEntry {
            bench: bench.to_string(),
            rev: git_rev(),
            date: today(),
            metrics,
        }
    }

    fn to_json_line(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"bench\": \"{}\", \"rev\": \"{}\", \"date\": \"{}\", \"metrics\": {{{metrics}}}}}",
            self.bench, self.rev, self.date
        )
    }
}

/// Path of the committed trajectory file.
pub fn trajectory_path() -> PathBuf {
    workspace_root().join("BENCH_trajectory.json")
}

/// Append `entry` to the committed trajectory — only when
/// `SUMMIT_BENCH_RECORD=1`, so routine bench runs never dirty the working
/// tree. Returns whether a line was written.
pub fn record_trajectory(entry: &TrajectoryEntry) -> bool {
    if std::env::var("SUMMIT_BENCH_RECORD").as_deref() != Ok("1") {
        return false;
    }
    let path = trajectory_path();
    let mut body = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| "{\"schema\": \"summit-bench-trajectory-v1\"}\n".to_string());
    if !body.ends_with('\n') {
        body.push('\n');
    }
    body.push_str(&entry.to_json_line());
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => {
            println!(
                "recorded trajectory entry for '{}' in {}",
                entry.bench,
                path.display()
            );
            true
        }
        Err(e) => {
            eprintln!("could not append {}: {e}", path.display());
            false
        }
    }
}

/// The metrics of the most recent committed trajectory entry for `bench`,
/// or `None` if the file or entry does not exist. This is the regression
/// gate's baseline.
pub fn latest_trajectory_metrics(bench: &str) -> Option<BTreeMap<String, f64>> {
    let body = std::fs::read_to_string(trajectory_path()).ok()?;
    let prefix = format!("{{\"bench\": \"{bench}\"");
    body.lines()
        .rev()
        .find(|l| l.trim_start().starts_with(&prefix))
        .map(|l| parse_flat_object(l, "metrics"))
}

/// Extract the flat `"key": {...}` string→number object named `key` from
/// `text` (a trajectory line's `metrics`, a bench JSON's `headline`).
/// Tolerant of exactly the subset this module writes — the object must sit
/// on one line with scalar number values; anything unparseable is skipped.
pub fn parse_flat_object(text: &str, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(start) = text.find(&format!("\"{key}\"")) else {
        return out;
    };
    let Some(open) = text[start..].find('{') else {
        return out;
    };
    let inner = &text[start + open + 1..];
    let inner = &inner[..inner.find('}').unwrap_or(inner.len())];
    for pair in inner.split(',') {
        let mut halves = pair.splitn(2, ':');
        let (Some(k), Some(v)) = (halves.next(), halves.next()) else {
            continue;
        };
        let k = k.trim().trim_matches('"');
        if let Ok(v) = v.trim().parse::<f64>() {
            out.insert(k.to_string(), v);
        }
    }
    out
}

/// Which way a headline metric improves. Throughput-style metrics
/// (GFLOP/s, events/s, advantage ratios) are [`Direction::HigherIsBetter`];
/// latency-style metrics (p50/p99 milliseconds) are
/// [`Direction::LowerIsBetter`] — a serving gate that treated latency like
/// throughput would celebrate a 10× p99 blowup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Regression = value dropped more than the tolerance.
    HigherIsBetter,
    /// Regression = value grew more than the tolerance.
    LowerIsBetter,
}

/// Compare `current` metrics against a `baseline`, pushing a failure per
/// metric that regressed beyond `tolerance` (relative, e.g. `0.10`) in its
/// selected [`Direction`]. `select` names the metrics under the gate and
/// their direction; unselected baseline keys are ignored, selected keys
/// missing from `current` fail. Returns a `metric, baseline, current,
/// ratio` diff table for the CI artifact, and prints one `trajectory:`
/// line per metric checked.
pub fn compare_metrics(
    baseline: &BTreeMap<String, f64>,
    current: &BTreeMap<String, f64>,
    select: &dyn Fn(&str) -> Option<Direction>,
    tolerance: f64,
    failures: &mut Vec<String>,
) -> String {
    let mut diff = String::from("metric, baseline, current, ratio\n");
    for (key, base) in baseline {
        let Some(direction) = select(key) else {
            continue;
        };
        let Some(&now) = current.get(key) else {
            failures.push(format!("{key} missing from current metrics"));
            continue;
        };
        let ratio = if *base > 0.0 { now / base } else { 1.0 };
        diff.push_str(&format!("{key}, {base:.4}, {now:.4}, {ratio:.3}\n"));
        let (regressed, moved_pct) = match direction {
            Direction::HigherIsBetter => (ratio < 1.0 - tolerance, (1.0 - ratio) * 100.0),
            Direction::LowerIsBetter => (ratio > 1.0 + tolerance, (ratio - 1.0) * 100.0),
        };
        if regressed {
            let verb = match direction {
                Direction::HigherIsBetter => "regressed",
                Direction::LowerIsBetter => "grew",
            };
            failures.push(format!(
                "{key} {verb} {moved_pct:.1}% vs trajectory ({base:.4} -> {now:.4})"
            ));
        } else {
            println!("trajectory: {key} {base:.4} -> {now:.4} ({ratio:.3}×) ✓");
        }
    }
    diff
}

/// The standard trajectory-regression leg every gate binary runs: honors
/// `SUMMIT_GATE_SKIP_TRAJECTORY=1` (hosts not comparable to the recording
/// machine), loads the last committed entry for `bench`, and delegates to
/// [`compare_metrics`]. Returns the diff table (header-only when skipped
/// or no baseline exists).
pub fn gate_trajectory(
    bench: &str,
    current: &BTreeMap<String, f64>,
    select: &dyn Fn(&str) -> Option<Direction>,
    tolerance: f64,
    failures: &mut Vec<String>,
) -> String {
    if std::env::var("SUMMIT_GATE_SKIP_TRAJECTORY").as_deref() == Ok("1") {
        println!("trajectory: comparison skipped (SUMMIT_GATE_SKIP_TRAJECTORY=1)");
        return String::from("metric, baseline, current, ratio\n");
    }
    match latest_trajectory_metrics(bench) {
        Some(baseline) => compare_metrics(&baseline, current, select, tolerance, failures),
        None => {
            println!("trajectory: no committed {bench} entry yet — other legs only");
            String::from("metric, baseline, current, ratio\n")
        }
    }
}

/// Abbreviated git revision of the working tree, or `"unknown"` outside a
/// repository.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, derived from the system clock
/// with the standard days-from-epoch algorithm — no chrono dependency.
pub fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_line_round_trips_through_the_parser() {
        let mut metrics = BTreeMap::new();
        metrics.insert("matmul_512_f32_gflops".to_string(), 56.8123);
        metrics.insert("matmul_512_f32_pct_of_roofline".to_string(), 84.5);
        let entry = TrajectoryEntry {
            bench: "gemm".to_string(),
            rev: "abc1234".to_string(),
            date: "2026-08-07".to_string(),
            metrics: metrics.clone(),
        };
        let line = entry.to_json_line();
        let parsed = parse_flat_object(&line, "metrics");
        for (k, v) in &metrics {
            let got = parsed.get(k).copied().expect("key survives");
            assert!((got - v).abs() < 1e-3, "{k}: {got} vs {v}");
        }
    }

    #[test]
    fn date_arithmetic_is_civil() {
        // The algorithm is pure in the epoch-seconds → date direction;
        // spot-check the format and a sane range rather than a wall-clock
        // value.
        let d = today();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        let year: i32 = d[..4].parse().expect("year parses");
        assert!((2024..2124).contains(&year), "year {year}");
    }

    #[test]
    fn compare_metrics_is_direction_aware() {
        let base: BTreeMap<String, f64> = [
            ("p99_ms".to_string(), 10.0),
            ("peak_rps".to_string(), 1000.0),
            ("ignored".to_string(), 5.0),
        ]
        .into();
        let select = |k: &str| match k {
            "p99_ms" => Some(Direction::LowerIsBetter),
            "peak_rps" => Some(Direction::HigherIsBetter),
            _ => None,
        };

        // Latency doubled and throughput halved: both fail.
        let worse: BTreeMap<String, f64> = [
            ("p99_ms".to_string(), 20.0),
            ("peak_rps".to_string(), 500.0),
        ]
        .into();
        let mut failures = Vec::new();
        let diff = compare_metrics(&base, &worse, &select, 0.10, &mut failures);
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("p99_ms grew")));
        assert!(failures.iter().any(|f| f.contains("peak_rps regressed")));
        assert!(diff.contains("p99_ms, 10.0000, 20.0000, 2.000"));
        assert!(!diff.contains("ignored"));

        // Latency halved and throughput doubled: improvements both ways.
        let better: BTreeMap<String, f64> = [
            ("p99_ms".to_string(), 5.0),
            ("peak_rps".to_string(), 2000.0),
        ]
        .into();
        let mut failures = Vec::new();
        compare_metrics(&base, &better, &select, 0.10, &mut failures);
        assert!(failures.is_empty(), "{failures:?}");

        // Within tolerance either way: no failure.
        let noisy: BTreeMap<String, f64> = [
            ("p99_ms".to_string(), 10.5),
            ("peak_rps".to_string(), 950.0),
        ]
        .into();
        let mut failures = Vec::new();
        compare_metrics(&base, &noisy, &select, 0.10, &mut failures);
        assert!(failures.is_empty(), "{failures:?}");

        // A selected metric missing from current is itself a failure.
        let missing: BTreeMap<String, f64> = [("p99_ms".to_string(), 9.0)].into();
        let mut failures = Vec::new();
        compare_metrics(&base, &missing, &select, 0.10, &mut failures);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("peak_rps missing"));
    }

    #[test]
    fn workspace_root_holds_the_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }

    #[test]
    fn record_is_inert_without_the_env_gate() {
        // SUMMIT_BENCH_RECORD unset/≠1 → nothing written.
        if std::env::var("SUMMIT_BENCH_RECORD").as_deref() == Ok("1") {
            return; // someone is deliberately recording; don't fight them
        }
        let entry = TrajectoryEntry::now("harness-selftest", BTreeMap::new());
        assert!(!record_trajectory(&entry));
        assert!(latest_trajectory_metrics("harness-selftest").is_none());
    }
}
