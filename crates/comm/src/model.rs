//! α–β cost models of the collective algorithms.
//!
//! These predict collective completion time for arbitrary rank counts and
//! message sizes, using the standard literature formulas (Thakur et al.;
//! Chan et al.). The paper's Section VI-B reasons with exactly the ring
//! model's large-p limit: algorithm bandwidth = β/2, so a message of `m`
//! bytes takes ≈ `2m/β` — 8 ms for ResNet50's 100 MB and 110 ms for
//! BERT-large's 1.4 GB on Summit's 25 GB/s injection links. Those two
//! figures are regression-tested here.

use serde::Serialize;
use summit_machine::LinkModel;

use crate::engine::Collective;

/// Which collective algorithm to cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Algorithm {
    /// Ring reduce-scatter + ring allgather.
    Ring,
    /// Recursive doubling (full-buffer exchanges).
    RecursiveDoubling,
    /// Rabenseifner: recursive-halving reduce-scatter + recursive-doubling
    /// allgather.
    Rabenseifner,
    /// Binomial reduce to a root followed by binomial broadcast.
    BinomialTree,
}

impl Algorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::Ring,
        Algorithm::RecursiveDoubling,
        Algorithm::Rabenseifner,
        Algorithm::BinomialTree,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::Rabenseifner => "rabenseifner",
            Algorithm::BinomialTree => "binomial-tree",
        }
    }
}

/// Memo table for [`CollectiveModel::simulated_allreduce_time`]: the perf
/// models call it repeatedly with identical (algorithm, world, size, link)
/// tuples while sweeping other parameters, and a full-machine simulation is
/// the expensive leg. Keyed on the link's exact bit patterns so distinct
/// fabrics never collide.
type SimMemoKey = (u8, u64, u64, u64, u64);
type SimMemo = std::sync::Mutex<std::collections::HashMap<SimMemoKey, f64>>;
static SIM_MEMO: std::sync::OnceLock<SimMemo> = std::sync::OnceLock::new();

/// Cost model for collectives over a homogeneous link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CollectiveModel {
    /// The point-to-point link between adjacent ranks.
    pub link: LinkModel,
}

impl CollectiveModel {
    /// Build a model over a link.
    pub fn new(link: LinkModel) -> Self {
        CollectiveModel { link }
    }

    /// Predicted allreduce time in seconds for `p` ranks and a message of
    /// `bytes` per rank.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn allreduce_time(&self, alg: Algorithm, p: u64, bytes: f64) -> f64 {
        assert!(p > 0, "rank count must be positive");
        if p == 1 {
            return 0.0;
        }
        let pf = p as f64;
        let a = self.link.alpha;
        let inv_b = 1.0 / self.link.beta;
        let lg = (pf).log2();
        match alg {
            // 2(p-1) steps, each moving m/p: 2(p-1)α + 2 (p-1)/p · m/β.
            Algorithm::Ring => 2.0 * (pf - 1.0) * a + 2.0 * (pf - 1.0) / pf * bytes * inv_b,
            // log p steps of the full message.
            Algorithm::RecursiveDoubling => lg * (a + bytes * inv_b),
            // 2 log p latency terms, ring-like bandwidth term.
            Algorithm::Rabenseifner => 2.0 * lg * a + 2.0 * (pf - 1.0) / pf * bytes * inv_b,
            // Reduce + broadcast, each log p steps of the full message.
            Algorithm::BinomialTree => 2.0 * lg * (a + bytes * inv_b),
        }
    }

    /// The bandwidth-only component of [`Self::allreduce_time`] — i.e. the
    /// time with all α (latency) terms dropped.
    ///
    /// Production collectives (NCCL) pipeline chunks so the serialized
    /// latency term of the textbook model is largely hidden; the paper's
    /// Section VI-B arithmetic accordingly neglects latency entirely. Use
    /// this for large-message, large-p predictions and the full model when
    /// latency matters (small messages).
    pub fn bandwidth_term(&self, alg: Algorithm, p: u64, bytes: f64) -> f64 {
        assert!(p > 0, "rank count must be positive");
        if p == 1 {
            return 0.0;
        }
        let pf = p as f64;
        let inv_b = 1.0 / self.link.beta;
        match alg {
            Algorithm::Ring | Algorithm::Rabenseifner => 2.0 * (pf - 1.0) / pf * bytes * inv_b,
            Algorithm::RecursiveDoubling => pf.log2() * bytes * inv_b,
            Algorithm::BinomialTree => 2.0 * pf.log2() * bytes * inv_b,
        }
    }

    /// Allreduce time predicted by driving the **executable schedule** of
    /// `alg` against per-rank virtual clocks ([`crate::sim::simulate`])
    /// instead of a closed form.
    ///
    /// The simulation runs the exact per-step schedule the executed
    /// collective runs — uneven chunk splits, empty tail segments and the
    /// reduce→gather handoff included — so it refines the closed forms
    /// where they idealize (`m/p` divisibility). The event-driven engine
    /// simulates any world size, full-Summit (p = 27,648) included; there
    /// is no rank-count gate. It returns `None` only when the schedule
    /// cannot be instantiated: Rabenseifner with a message not divisible
    /// by the power-of-two core of `p` (its halving phase has no schedule
    /// for such splits).
    ///
    /// `bytes` is rounded to whole f32 elements, matching the executed
    /// collectives' payloads. Results are memoized process-wide — the perf
    /// models re-ask identical questions across sweeps.
    pub fn simulated_allreduce_time(&self, alg: Algorithm, p: u64, bytes: f64) -> Option<f64> {
        assert!(p > 0, "rank count must be positive");
        assert!(bytes >= 0.0, "message size cannot be negative");
        if p == 1 {
            return Some(0.0);
        }
        let pu = p as usize;
        let elems = (bytes / 4.0).round() as usize;
        let collective = match alg {
            Algorithm::Ring => Collective::RingAllreduce {
                bucket_elems: usize::MAX,
            },
            Algorithm::RecursiveDoubling => Collective::RecursiveDoubling,
            Algorithm::Rabenseifner => {
                if !elems.is_multiple_of(crate::engine::pow2_core(pu)) {
                    return None;
                }
                Collective::Rabenseifner
            }
            Algorithm::BinomialTree => Collective::TreeAllreduce,
        };
        let key = (
            alg as u8,
            p,
            elems as u64,
            self.link.alpha.to_bits(),
            self.link.beta.to_bits(),
        );
        let memo = SIM_MEMO.get_or_init(Default::default);
        if let Some(&t) = memo.lock().expect("sim memo poisoned").get(&key) {
            return Some(t);
        }
        let t = crate::sim::simulate(collective, pu, elems, self.link).time_seconds;
        memo.lock().expect("sim memo poisoned").insert(key, t);
        Some(t)
    }

    /// The fastest algorithm and its time for the given size.
    pub fn best_allreduce(&self, p: u64, bytes: f64) -> (Algorithm, f64) {
        Algorithm::ALL
            .iter()
            .map(|&alg| (alg, self.allreduce_time(alg, p, bytes)))
            .min_by(|x, y| x.1.total_cmp(&y.1))
            .expect("ALL is non-empty")
    }

    /// Effective allreduce "algorithm bandwidth" in bytes/s: message size
    /// divided by completion time. For a large-p ring this approaches β/2 —
    /// the paper's 12.5 GB/s on Summit.
    pub fn algorithm_bandwidth(&self, alg: Algorithm, p: u64, bytes: f64) -> f64 {
        assert!(bytes > 0.0, "bandwidth needs a positive message");
        let t = self.allreduce_time(alg, p, bytes);
        if t == 0.0 {
            f64::INFINITY
        } else {
            bytes / t
        }
    }

    /// Broadcast time (binomial tree).
    pub fn broadcast_time(&self, p: u64, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.link.transfer_time(bytes)
    }

    /// Allgather time (ring): each rank ends with `p × bytes` of data having
    /// contributed `bytes`.
    pub fn allgather_time(&self, p: u64, bytes: f64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let pf = p as f64;
        (pf - 1.0) * (self.link.alpha + bytes / self.link.beta)
    }

    /// Barrier time: a dissemination barrier costs ⌈log2 p⌉ rounds of α.
    pub fn barrier_time(&self, p: u64) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p as f64).log2().ceil() * self.link.alpha
    }
}

/// Two-level (hierarchical) allreduce: intra-node reduction over NVLink,
/// inter-node ring allreduce over the fabric on one "leader" GPU per node,
/// then intra-node broadcast. This is how Horovod/NCCL structure Summit
/// allreduces and what the scaling models in `summit-perf` use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct HierarchicalModel {
    /// Intra-node link (NVLink).
    pub intra: LinkModel,
    /// Inter-node link (InfiniBand injection).
    pub inter: LinkModel,
    /// GPUs per node.
    pub gpus_per_node: u32,
    /// Inter-node algorithm.
    pub inter_algorithm: Algorithm,
}

impl HierarchicalModel {
    /// Predicted allreduce time across `nodes` nodes of `gpus_per_node` GPUs
    /// each, message of `bytes` per GPU.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or the model has zero GPUs per node.
    pub fn allreduce_time(&self, nodes: u64, bytes: f64) -> f64 {
        assert!(nodes > 0, "node count must be positive");
        assert!(self.gpus_per_node > 0, "need at least one GPU per node");
        let g = u64::from(self.gpus_per_node);
        // Intra-node ring reduce-scatter + allgather across g GPUs, twice
        // (reduce before, broadcast after). Model each as half a ring
        // allreduce.
        let intra_model = CollectiveModel::new(self.intra);
        let intra = intra_model.allreduce_time(Algorithm::Ring, g, bytes);
        let inter_model = CollectiveModel::new(self.inter);
        let inter = inter_model.allreduce_time(self.inter_algorithm, nodes, bytes);
        intra + inter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_machine::spec::NodeSpec;

    fn summit_model() -> CollectiveModel {
        CollectiveModel::new(LinkModel::inter_node(&NodeSpec::summit()))
    }

    /// Paper, Section VI-B: "the per device allreduce message size for the
    /// ResNet50 and BERT-large models is about 100MB and 1.4 GB ...
    /// communication time is roughly 8 ms and 110 ms."
    #[test]
    fn paper_resnet50_and_bert_times() {
        let m = summit_model();
        let p = 4608; // full-Summit data-parallel job, one ring over nodes
                      // The paper's arithmetic is bandwidth-only (pipelined collectives
                      // hide the ring's latency term).
        let t_resnet = m.bandwidth_term(Algorithm::Ring, p, 100.0e6);
        let t_bert = m.bandwidth_term(Algorithm::Ring, p, 1.4e9);
        assert!((t_resnet - 8.0e-3).abs() / 8.0e-3 < 0.05, "got {t_resnet}");
        assert!((t_bert - 110.0e-3).abs() / 110.0e-3 < 0.05, "got {t_bert}");
    }

    /// The ring's algorithm bandwidth approaches half the link bandwidth —
    /// the paper's 12.5 GB/s figure.
    #[test]
    fn ring_algorithm_bandwidth_halves_link() {
        let m = summit_model();
        let bw = 1.0e9 / m.bandwidth_term(Algorithm::Ring, 4608, 1.0e9);
        assert!((bw - 12.5e9).abs() / 12.5e9 < 0.01, "got {bw}");
    }

    #[test]
    fn single_rank_is_free() {
        let m = summit_model();
        for alg in Algorithm::ALL {
            assert_eq!(m.allreduce_time(alg, 1, 1e9), 0.0);
        }
    }

    #[test]
    fn small_messages_favor_low_latency_algorithms() {
        let m = summit_model();
        let (best, _) = m.best_allreduce(1024, 8.0);
        assert!(
            matches!(best, Algorithm::RecursiveDoubling | Algorithm::Rabenseifner),
            "tiny message picked {best:?}"
        );
    }

    #[test]
    fn large_messages_favor_bandwidth_optimal_algorithms() {
        let m = summit_model();
        let (best, _) = m.best_allreduce(1024, 1.0e9);
        assert!(
            matches!(best, Algorithm::Ring | Algorithm::Rabenseifner),
            "large message picked {best:?}"
        );
    }

    #[test]
    fn ring_time_flat_in_p_for_large_messages() {
        // The bandwidth term (p-1)/p saturates; doubling p barely changes t.
        let m = summit_model();
        let t1 = m.allreduce_time(Algorithm::Ring, 1024, 1.0e9);
        let t2 = m.allreduce_time(Algorithm::Ring, 2048, 1.0e9);
        assert!((t2 - t1) / t1 < 0.05);
    }

    #[test]
    fn hierarchical_adds_intra_and_inter() {
        let node = NodeSpec::summit();
        let h = HierarchicalModel {
            intra: LinkModel::nvlink(&node),
            inter: LinkModel::inter_node(&node),
            gpus_per_node: 6,
            inter_algorithm: Algorithm::Ring,
        };
        let t = h.allreduce_time(4608, 100.0e6);
        let inter_only = summit_model().allreduce_time(Algorithm::Ring, 4608, 100.0e6);
        assert!(t > inter_only);
        // NVLink is fast; the hierarchy should cost < 2x the inter-node part.
        assert!(t < 2.0 * inter_only);
    }

    /// On even splits (p | elems, power-of-two p) the schedule simulation
    /// reproduces every closed form exactly — same algorithm, two
    /// derivations.
    #[test]
    fn simulation_matches_closed_forms_on_even_splits() {
        let m = summit_model();
        for p in [2u64, 4, 8, 16, 64, 128] {
            let bytes = (p * 1024 * 4) as f64; // p | elems, whole f32s
            for alg in Algorithm::ALL {
                let closed = m.allreduce_time(alg, p, bytes);
                let sim = m
                    .simulated_allreduce_time(alg, p, bytes)
                    .expect("simulable: pow2 p, p | elems");
                assert!(
                    (sim - closed).abs() <= 1e-9 * closed.max(1e-12),
                    "{} p={p}: sim {sim} vs closed {closed}",
                    alg.name()
                );
            }
        }
    }

    /// Uneven chunk splits are where simulation refines the closed form:
    /// the ring's critical path carries ceil(n/p) chunks, so the simulated
    /// time is never below the idealized m/p arithmetic.
    #[test]
    fn simulation_refines_uneven_ring_splits() {
        let m = summit_model();
        let bytes = (4 * 1001) as f64; // 1001 elems across 4 ranks: uneven
        let closed = m.allreduce_time(Algorithm::Ring, 4, bytes);
        let sim = m
            .simulated_allreduce_time(Algorithm::Ring, 4, bytes)
            .unwrap();
        assert!(sim >= closed - 1e-15, "sim {sim} below closed {closed}");
        assert!(sim <= closed * 1.01, "sim {sim} far from closed {closed}");
    }

    /// The old 128-rank simulation gate is gone: every algorithm simulates
    /// at any world size, including beyond the former `MAX_SIM_RANKS`, and
    /// the simulated value agrees with the closed form it converges to.
    /// The only remaining `None` is Rabenseifner's divisibility condition.
    #[test]
    fn simulation_has_no_rank_gate() {
        let m = summit_model();
        assert_eq!(
            m.simulated_allreduce_time(Algorithm::Ring, 1, 4096.0),
            Some(0.0)
        );
        // 129 and 4608 ranks — both rejected by the retired gate.
        let t129 = m
            .simulated_allreduce_time(Algorithm::Ring, 129, 129.0 * 4096.0)
            .expect("no gate");
        let closed129 = m.allreduce_time(Algorithm::Ring, 129, 129.0 * 4096.0);
        assert!((t129 - closed129).abs() <= 1e-9 * closed129, "got {t129}");
        assert!(m
            .simulated_allreduce_time(Algorithm::Ring, 4608, 4096.0)
            .is_some());
        // Non-power-of-two worlds fold into a power-of-two core.
        let t6 = m
            .simulated_allreduce_time(Algorithm::RecursiveDoubling, 6, 4096.0)
            .expect("folded schedule");
        // The fold adds a pre-reduce and post-broadcast step on top of the
        // pow2-core exchange, so the non-pow2 time exceeds the p=4 time.
        let t4 = m
            .simulated_allreduce_time(Algorithm::RecursiveDoubling, 4, 4096.0)
            .unwrap();
        assert!(t6 > t4, "fold overhead missing: {t6} vs {t4}");
        assert!(m
            .simulated_allreduce_time(Algorithm::Rabenseifner, 6, 4096.0)
            .is_some());
        // Rabenseifner still needs pow2_core(p) | elems: 9 elems on a
        // p=8 world has no halving schedule.
        assert!(m
            .simulated_allreduce_time(Algorithm::Rabenseifner, 8, 4.0 * 9.0)
            .is_none());
        assert!(m
            .simulated_allreduce_time(Algorithm::BinomialTree, 8, 4096.0)
            .is_some());
    }

    #[test]
    fn broadcast_and_barrier_scale_logarithmically() {
        let m = summit_model();
        let b256 = m.barrier_time(256);
        let b512 = m.barrier_time(512);
        assert!((b512 - b256 - m.link.alpha).abs() < 1e-12);
        assert!(m.broadcast_time(2, 1e6) < m.broadcast_time(1024, 1e6));
    }
}
