//! Shared machinery for the machine-readable bench artifacts.
//!
//! Every bench target that used to hand-roll its own `target/BENCH_*.json`
//! writing (path anchoring, directory creation, error reporting) goes
//! through [`write_bench_json`] instead, and records its headline numbers
//! into the **committed perf trajectory** `BENCH_trajectory.json` at the
//! workspace root — one JSON line per (bench, PR) with the git revision and
//! date, so perf history survives `target/` cleans and reviews can diff the
//! curve instead of re-running old revisions.
//!
//! The trajectory file is append-per-PR: routine bench runs only *read* it
//! (the regression gate in `src/bin/gemm_gate.rs` compares fresh numbers
//! against the last committed entry); a run with `SUMMIT_BENCH_RECORD=1`
//! appends the new entry, which the PR then commits. No serde_json is
//! vendored, so both directions speak a line-oriented subset: one complete
//! JSON object per line, string keys, number/string scalar values.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The workspace root (the bench crate lives two levels below it).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// The workspace `target/` directory the CI artifacts upload from. Bench
/// binaries run with the *package* directory as CWD, so a bare relative
/// `target` would land in `crates/bench/target` — always anchor here.
pub fn target_dir() -> PathBuf {
    let dir = workspace_root().join("target");
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Write a bench summary to `target/BENCH_<name>.json`, echoing the JSON
/// and the path to stdout (the CI log is the fallback artifact). Returns
/// the path written.
pub fn write_bench_json(name: &str, json: &str) -> PathBuf {
    let file = target_dir().join(format!("BENCH_{name}.json"));
    match std::fs::write(&file, json) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
    print!("{json}");
    file
}

/// One committed trajectory record: a bench's headline metrics at one
/// revision.
#[derive(Debug, Clone)]
pub struct TrajectoryEntry {
    /// Bench name (`gemm`, `comm`, ...).
    pub bench: String,
    /// Abbreviated git revision the numbers were measured at.
    pub rev: String,
    /// ISO date of the measurement.
    pub date: String,
    /// Headline metrics, name → value. BTreeMap so the serialized line is
    /// deterministic.
    pub metrics: BTreeMap<String, f64>,
}

impl TrajectoryEntry {
    /// Build an entry for `bench` stamped with the current git revision
    /// and today's date.
    pub fn now(bench: &str, metrics: BTreeMap<String, f64>) -> Self {
        TrajectoryEntry {
            bench: bench.to_string(),
            rev: git_rev(),
            date: today(),
            metrics,
        }
    }

    fn to_json_line(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"bench\": \"{}\", \"rev\": \"{}\", \"date\": \"{}\", \"metrics\": {{{metrics}}}}}",
            self.bench, self.rev, self.date
        )
    }
}

/// Path of the committed trajectory file.
pub fn trajectory_path() -> PathBuf {
    workspace_root().join("BENCH_trajectory.json")
}

/// Append `entry` to the committed trajectory — only when
/// `SUMMIT_BENCH_RECORD=1`, so routine bench runs never dirty the working
/// tree. Returns whether a line was written.
pub fn record_trajectory(entry: &TrajectoryEntry) -> bool {
    if std::env::var("SUMMIT_BENCH_RECORD").as_deref() != Ok("1") {
        return false;
    }
    let path = trajectory_path();
    let mut body = std::fs::read_to_string(&path)
        .unwrap_or_else(|_| "{\"schema\": \"summit-bench-trajectory-v1\"}\n".to_string());
    if !body.ends_with('\n') {
        body.push('\n');
    }
    body.push_str(&entry.to_json_line());
    body.push('\n');
    match std::fs::write(&path, body) {
        Ok(()) => {
            println!(
                "recorded trajectory entry for '{}' in {}",
                entry.bench,
                path.display()
            );
            true
        }
        Err(e) => {
            eprintln!("could not append {}: {e}", path.display());
            false
        }
    }
}

/// The metrics of the most recent committed trajectory entry for `bench`,
/// or `None` if the file or entry does not exist. This is the regression
/// gate's baseline.
pub fn latest_trajectory_metrics(bench: &str) -> Option<BTreeMap<String, f64>> {
    let body = std::fs::read_to_string(trajectory_path()).ok()?;
    let prefix = format!("{{\"bench\": \"{bench}\"");
    body.lines()
        .rev()
        .find(|l| l.trim_start().starts_with(&prefix))
        .map(|l| parse_flat_object(l, "metrics"))
}

/// Extract the flat `"key": {...}` string→number object named `key` from
/// `text` (a trajectory line's `metrics`, a bench JSON's `headline`).
/// Tolerant of exactly the subset this module writes — the object must sit
/// on one line with scalar number values; anything unparseable is skipped.
pub fn parse_flat_object(text: &str, key: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let Some(start) = text.find(&format!("\"{key}\"")) else {
        return out;
    };
    let Some(open) = text[start..].find('{') else {
        return out;
    };
    let inner = &text[start + open + 1..];
    let inner = &inner[..inner.find('}').unwrap_or(inner.len())];
    for pair in inner.split(',') {
        let mut halves = pair.splitn(2, ':');
        let (Some(k), Some(v)) = (halves.next(), halves.next()) else {
            continue;
        };
        let k = k.trim().trim_matches('"');
        if let Ok(v) = v.trim().parse::<f64>() {
            out.insert(k.to_string(), v);
        }
    }
    out
}

/// Abbreviated git revision of the working tree, or `"unknown"` outside a
/// repository.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .current_dir(workspace_root())
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's civil date (UTC) as `YYYY-MM-DD`, derived from the system clock
/// with the standard days-from-epoch algorithm — no chrono dependency.
pub fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let days = (secs / 86_400) as i64;
    // Howard Hinnant's civil-from-days.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_line_round_trips_through_the_parser() {
        let mut metrics = BTreeMap::new();
        metrics.insert("matmul_512_f32_gflops".to_string(), 56.8123);
        metrics.insert("matmul_512_f32_pct_of_roofline".to_string(), 84.5);
        let entry = TrajectoryEntry {
            bench: "gemm".to_string(),
            rev: "abc1234".to_string(),
            date: "2026-08-07".to_string(),
            metrics: metrics.clone(),
        };
        let line = entry.to_json_line();
        let parsed = parse_flat_object(&line, "metrics");
        for (k, v) in &metrics {
            let got = parsed.get(k).copied().expect("key survives");
            assert!((got - v).abs() < 1e-3, "{k}: {got} vs {v}");
        }
    }

    #[test]
    fn date_arithmetic_is_civil() {
        // The algorithm is pure in the epoch-seconds → date direction;
        // spot-check the format and a sane range rather than a wall-clock
        // value.
        let d = today();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
        let year: i32 = d[..4].parse().expect("year parses");
        assert!((2024..2124).contains(&year), "year {year}");
    }

    #[test]
    fn workspace_root_holds_the_manifest() {
        assert!(workspace_root().join("Cargo.toml").exists());
    }

    #[test]
    fn record_is_inert_without_the_env_gate() {
        // SUMMIT_BENCH_RECORD unset/≠1 → nothing written.
        if std::env::var("SUMMIT_BENCH_RECORD").as_deref() == Ok("1") {
            return; // someone is deliberately recording; don't fight them
        }
        let entry = TrajectoryEntry::now("harness-selftest", BTreeMap::new());
        assert!(!record_trajectory(&entry));
        assert!(latest_trajectory_metrics("harness-selftest").is_none());
    }
}
