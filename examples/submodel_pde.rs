//! The submodel motif on a domain-decomposed PDE (the survey's top motif).
//!
//! Run with `cargo run --example submodel_pde`.
//!
//! A diffusion–reaction field is advanced three ways: serially with the
//! exact (expensive) kinetics, in parallel over 4 thread-ranks with real
//! halo exchange, and with an MLP submodel replacing the kinetics — the
//! "physics-based [term] in a climate code replaced by ML model" pattern,
//! with the expensive-call accounting made explicit.

use std::cell::Cell;
use std::rc::Rc;

use summit_modsim::{
    grid::Field,
    parallel::ParallelSolver,
    solver::{Reaction, Solver},
    submodel::ReactionSurrogate,
};

fn render(field: &Field) -> String {
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut out = String::new();
    for r in (0..field.ny()).step_by(2) {
        out.push_str("  ");
        for c in 0..field.nx() {
            let v = field.get(r as isize, c as isize).clamp(0.0, 1.0);
            out.push(glyphs[(v * 7.0).round() as usize]);
        }
        out.push('\n');
    }
    out
}

fn main() {
    let k = 2.0f32;
    let steps = 120u32;
    let mut init = Field::new(32, 48);
    init.fill_test_pattern();
    println!("Initial field (two Gaussian bumps):\n{}", render(&init));

    // ---- 1. Exact kinetics, counting the expensive calls ---------------
    let calls = Rc::new(Cell::new(0u64));
    let mut exact = Solver::new(
        init.clone(),
        0.15,
        0.05,
        Reaction::ExactKinetics {
            k,
            calls: Rc::clone(&calls),
        },
    );
    exact.step(steps);
    println!(
        "Exact kinetics after {steps} steps: {} expensive calls\n{}",
        calls.get(),
        render(exact.field())
    );

    // ---- 2. The ML submodel -------------------------------------------
    let surrogate = ReactionSurrogate::train(k, 64, 3);
    println!(
        "Training the submodel took {} expensive calls (max fit error {:.4}).",
        surrogate.training_evaluations,
        surrogate.max_error(k)
    );
    let mut ml = Solver::new(init.clone(), 0.15, 0.05, Reaction::Surrogate(surrogate));
    ml.step(steps);
    let err = ml.field().max_abs_diff(exact.field());
    println!(
        "Submodel run reproduces the exact field to max error {err:.4} — with \
         64 expensive calls instead of {}.",
        calls.get()
    );

    // ---- 3. Parallel execution with real halo exchange ------------------
    fn kinetics(u: f32) -> f32 {
        Reaction::exact_value(2.0, u)
    }
    let solver = ParallelSolver {
        alpha: 0.15,
        dt: 0.05,
        reaction: Some(kinetics),
    };
    let serial = solver.run_serial(&init, steps);
    let parallel = solver.run(&init, 4, steps);
    println!(
        "4-rank halo-exchange run matches the serial solver to max error {:.2e} \
         (real message passing between thread-ranks).",
        parallel.max_abs_diff(&serial)
    );
}
