//! The particle system: periodic box, neighbor search, velocity Verlet.

use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::Serialize;

/// Anything that can evaluate energy and forces for a configuration.
pub trait Potential {
    /// Total potential energy and per-atom forces `(fx, fy)`.
    fn energy_and_forces(&self, system: &System) -> (f64, Vec<(f64, f64)>);
}

/// A 2D periodic particle system.
#[derive(Debug, Clone, Serialize)]
pub struct System {
    /// Box edge length (square box).
    pub box_len: f64,
    /// Positions, wrapped into `[0, box_len)`.
    pub positions: Vec<(f64, f64)>,
    /// Velocities.
    pub velocities: Vec<(f64, f64)>,
}

impl System {
    /// Place `n` atoms on a jittered square lattice in a box of `box_len`,
    /// with Maxwell-ish random velocities of scale `v_scale` (center-of-mass
    /// motion removed).
    ///
    /// # Panics
    /// Panics if `n` is not a perfect square or the box is not positive.
    pub fn lattice(n: usize, box_len: f64, v_scale: f64, seed: u64) -> Self {
        assert!(box_len > 0.0, "box must be positive");
        let side = (n as f64).sqrt().round() as usize;
        assert_eq!(side * side, n, "n must be a perfect square");
        let mut rng = StdRng::seed_from_u64(seed);
        let spacing = box_len / side as f64;
        let mut positions = Vec::with_capacity(n);
        let mut velocities = Vec::with_capacity(n);
        for i in 0..side {
            for j in 0..side {
                let jitter = 0.05 * spacing;
                positions.push((
                    (i as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                    (j as f64 + 0.5) * spacing + rng.gen_range(-jitter..jitter),
                ));
                velocities.push((
                    v_scale * rng.gen_range(-1.0..1.0),
                    v_scale * rng.gen_range(-1.0..1.0),
                ));
            }
        }
        // Remove center-of-mass drift.
        let (mut px, mut py) = (0.0, 0.0);
        for &(vx, vy) in &velocities {
            px += vx;
            py += vy;
        }
        let nf = n as f64;
        for v in &mut velocities {
            v.0 -= px / nf;
            v.1 -= py / nf;
        }
        System {
            box_len,
            positions,
            velocities,
        }
    }

    /// Atom count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Whether the system is empty.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Minimum-image displacement from atom `i` to atom `j`.
    #[inline]
    pub fn displacement(&self, i: usize, j: usize) -> (f64, f64) {
        let (xi, yi) = self.positions[i];
        let (xj, yj) = self.positions[j];
        let mut dx = xj - xi;
        let mut dy = yj - yi;
        let half = self.box_len / 2.0;
        if dx > half {
            dx -= self.box_len;
        } else if dx < -half {
            dx += self.box_len;
        }
        if dy > half {
            dy -= self.box_len;
        } else if dy < -half {
            dy += self.box_len;
        }
        (dx, dy)
    }

    /// All pairs `(i, j, r)` with `i < j` and `r < cutoff` — brute force
    /// O(N²) reference.
    pub fn pairs_brute_force(&self, cutoff: f64) -> Vec<(usize, usize, f64)> {
        let mut out = Vec::new();
        for i in 0..self.len() {
            for j in i + 1..self.len() {
                let (dx, dy) = self.displacement(i, j);
                let r = (dx * dx + dy * dy).sqrt();
                if r < cutoff {
                    out.push((i, j, r));
                }
            }
        }
        out
    }

    /// All pairs within `cutoff` via a cell list — O(N) for homogeneous
    /// densities; the standard MD neighbor-search structure.
    ///
    /// # Panics
    /// Panics if `cutoff` is not positive or exceeds half the box.
    pub fn pairs_cell_list(&self, cutoff: f64) -> Vec<(usize, usize, f64)> {
        assert!(cutoff > 0.0, "cutoff must be positive");
        assert!(
            cutoff <= self.box_len / 2.0,
            "cutoff beyond the minimum-image radius"
        );
        let cells_per_dim = ((self.box_len / cutoff).floor() as usize).max(1);
        if cells_per_dim < 3 {
            // Too few cells for the 9-stencil to be distinct; fall back.
            return self.pairs_brute_force(cutoff);
        }
        let cell_len = self.box_len / cells_per_dim as f64;
        let cell_of = |x: f64, y: f64| -> (usize, usize) {
            let cx = ((x / cell_len) as usize).min(cells_per_dim - 1);
            let cy = ((y / cell_len) as usize).min(cells_per_dim - 1);
            (cx, cy)
        };
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); cells_per_dim * cells_per_dim];
        for (idx, &(x, y)) in self.positions.iter().enumerate() {
            let (cx, cy) = cell_of(x, y);
            cells[cy * cells_per_dim + cx].push(idx);
        }
        let mut out = Vec::new();
        for cy in 0..cells_per_dim {
            for cx in 0..cells_per_dim {
                let home = &cells[cy * cells_per_dim + cx];
                // Scan the 3×3 periodic stencil; to avoid double counting,
                // only visit "forward" neighbor cells plus the home cell.
                let neighbor_offsets: [(isize, isize); 5] =
                    [(0, 0), (1, 0), (-1, 1), (0, 1), (1, 1)];
                for &(ox, oy) in &neighbor_offsets {
                    let nx = (cx as isize + ox).rem_euclid(cells_per_dim as isize) as usize;
                    let ny = (cy as isize + oy).rem_euclid(cells_per_dim as isize) as usize;
                    let other = &cells[ny * cells_per_dim + nx];
                    for &i in home {
                        for &j in other {
                            let same_cell = ox == 0 && oy == 0;
                            if same_cell && j <= i {
                                continue;
                            }
                            let (dx, dy) = self.displacement(i, j);
                            let r = (dx * dx + dy * dy).sqrt();
                            if r < cutoff {
                                out.push((i.min(j), i.max(j), r));
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Kinetic energy (unit mass).
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self
            .velocities
            .iter()
            .map(|&(vx, vy)| vx * vx + vy * vy)
            .sum::<f64>()
    }

    /// Total energy under a potential.
    pub fn total_energy(&self, potential: &impl Potential) -> f64 {
        self.kinetic_energy() + potential.energy_and_forces(self).0
    }

    /// Total momentum (should stay ≈0 under pairwise forces).
    pub fn momentum(&self) -> (f64, f64) {
        self.velocities
            .iter()
            .fold((0.0, 0.0), |(px, py), &(vx, vy)| (px + vx, py + vy))
    }

    fn wrap(&mut self) {
        let l = self.box_len;
        for p in &mut self.positions {
            p.0 = p.0.rem_euclid(l);
            p.1 = p.1.rem_euclid(l);
        }
    }

    /// Velocity-Verlet integration for `steps` steps of size `dt`.
    #[allow(clippy::needless_range_loop)] // velocities/positions/forces in lockstep
    pub fn run(&mut self, potential: &impl Potential, steps: u32, dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        let (_, mut forces) = potential.energy_and_forces(self);
        for _ in 0..steps {
            // Half-kick + drift.
            for i in 0..self.len() {
                self.velocities[i].0 += 0.5 * dt * forces[i].0;
                self.velocities[i].1 += 0.5 * dt * forces[i].1;
                self.positions[i].0 += dt * self.velocities[i].0;
                self.positions[i].1 += dt * self.velocities[i].1;
            }
            self.wrap();
            // New forces + half-kick.
            forces = potential.energy_and_forces(self).1;
            for i in 0..self.len() {
                self.velocities[i].0 += 0.5 * dt * forces[i].0;
                self.velocities[i].1 += 0.5 * dt * forces[i].1;
            }
        }
    }

    /// Radial distribution function histogram: pair counts in `bins` radial
    /// shells up to `r_max`, normalized per pair.
    pub fn rdf(&self, bins: usize, r_max: f64) -> Vec<f64> {
        assert!(bins > 0 && r_max > 0.0, "rdf needs bins and range");
        let mut hist = vec![0.0f64; bins];
        let pairs = self.pairs_brute_force(r_max);
        for &(_, _, r) in &pairs {
            let b = ((r / r_max) * bins as f64) as usize;
            hist[b.min(bins - 1)] += 1.0;
        }
        let n_pairs = (self.len() * (self.len() - 1) / 2) as f64;
        for h in &mut hist {
            *h /= n_pairs;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lj::LennardJones;

    #[test]
    fn lattice_shape_and_com() {
        let s = System::lattice(25, 5.0, 0.1, 1);
        assert_eq!(s.len(), 25);
        let (px, py) = s.momentum();
        assert!(px.abs() < 1e-12 && py.abs() < 1e-12, "COM not removed");
        assert!(s
            .positions
            .iter()
            .all(|&(x, y)| (0.0..5.0).contains(&x) && (0.0..5.0).contains(&y)));
    }

    #[test]
    fn minimum_image_convention() {
        let mut s = System::lattice(4, 10.0, 0.0, 0);
        s.positions[0] = (0.5, 0.5);
        s.positions[1] = (9.5, 9.5);
        let (dx, dy) = s.displacement(0, 1);
        assert!((dx + 1.0).abs() < 1e-12 && (dy + 1.0).abs() < 1e-12);
    }

    #[test]
    fn cell_list_matches_brute_force() {
        for seed in 0..5 {
            let s = System::lattice(49, 9.0, 0.3, seed);
            let cutoff = 2.5;
            let mut brute = s.pairs_brute_force(cutoff);
            let mut cells = s.pairs_cell_list(cutoff);
            brute.sort_by_key(|a| (a.0, a.1));
            cells.sort_by_key(|a| (a.0, a.1));
            assert_eq!(brute.len(), cells.len(), "seed {seed}");
            for (x, y) in brute.iter().zip(&cells) {
                assert_eq!((x.0, x.1), (y.0, y.1));
                assert!((x.2 - y.2).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn nve_conserves_energy_and_momentum() {
        let lj = LennardJones::standard();
        let mut s = System::lattice(36, 7.5, 0.1, 7);
        let e0 = s.total_energy(&lj);
        s.run(&lj, 400, 0.002);
        let e1 = s.total_energy(&lj);
        assert!(
            (e1 - e0).abs() < 5e-3 * e0.abs().max(1.0),
            "energy drift {e0} → {e1}"
        );
        let (px, py) = s.momentum();
        assert!(px.abs() < 1e-9 && py.abs() < 1e-9, "momentum leaked");
    }

    #[test]
    fn rdf_shows_excluded_core_and_first_shell() {
        let lj = LennardJones::standard();
        let mut s = System::lattice(36, 7.5, 0.1, 3);
        s.run(&lj, 300, 0.002);
        let rdf = s.rdf(20, 3.0);
        // No pairs inside the repulsive core (< 0.9σ → first 6 bins).
        assert!(rdf[..6].iter().all(|&h| h == 0.0), "core invaded: {rdf:?}");
        // A populated first coordination shell near r ≈ 1.12σ (bins 7..9).
        let shell: f64 = rdf[6..10].iter().sum();
        assert!(shell > 0.0, "no first shell: {rdf:?}");
    }
}
