//! Hardware models of the OLCF Summit system and its companion clusters.
//!
//! This crate encodes, as data and small cost models, everything the paper
//! *Learning to Scale the Summit* (Joubert et al., 2022) assumes about the
//! machines it discusses:
//!
//! * [`spec`] — node, CPU, GPU, memory and storage specifications for Summit,
//!   the Summit high-memory nodes, and the Rhea/Andes companion clusters
//!   (paper Section II-A).
//! * [`topology`] — a two-level non-blocking fat-tree model of Summit's
//!   dual-rail EDR InfiniBand fabric, with hop counting and bisection
//!   bandwidth, and an intra-node NVLink graph.
//! * [`link`] — the α–β (latency–bandwidth) link cost model used by the
//!   communication and scaling analyses.
//!
//! The numbers the paper's Section VI-B analysis depends on — 25 GB/s
//! injection bandwidth per node, 2.5 TB/s shared-filesystem read bandwidth,
//! >27 TB/s aggregate node-local NVMe read bandwidth, 6 V100 GPUs per node
//! > with Tensor Cores — are all encoded here as constants on [`spec::MachineSpec`]
//! > constructors and are unit-tested against the figures quoted in the paper.
//!
//! # Example
//!
//! ```
//! use summit_machine::spec::MachineSpec;
//!
//! let summit = MachineSpec::summit();
//! assert_eq!(summit.nodes, 4608);
//! assert_eq!(summit.node.gpus_per_node, 6);
//! // Peak mixed-precision rate exceeds 3 "AI ExaOps" (paper Section I).
//! assert!(summit.peak_mixed_precision_flops() > 3.0e18);
//! ```

pub mod link;
pub mod simnet;
pub mod spec;
pub mod topology;

pub use link::LinkModel;
pub use simnet::{ClusterModel, FlowNet, SimNetwork, Transfer};
pub use spec::{GpuSpec, MachineSpec, NodeSpec, StorageSpec};
pub use topology::{FatTree, NvLinkGraph};

/// One gibibyte in bytes.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// One gigabyte (decimal) in bytes. Network and storage bandwidths in the
/// paper are quoted in decimal units.
pub const GB: f64 = 1.0e9;
/// One terabyte (decimal) in bytes.
pub const TB: f64 = 1.0e12;
