//! Binary model checkpoints with integrity checking.
//!
//! The at-scale training runs the paper reviews checkpoint constantly
//! (Blanchard et al.'s I/O overhead is partly this traffic; the
//! `summit-io` crate prices it). This module is the serialization half: a
//! compact binary format for model parameters — little-endian f32 payload,
//! versioned header, FNV-1a content checksum — over [`bytes::Bytes`]
//! buffers, with corruption and version-mismatch detection.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::model::Mlp;

/// Format magic: "SMT1".
const MAGIC: u32 = 0x534D_5431;
/// Current format version.
const VERSION: u16 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Buffer too short or structurally invalid.
    Truncated,
    /// Magic number mismatch — not a checkpoint.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u16),
    /// Payload checksum mismatch — corruption.
    ChecksumMismatch,
    /// Parameter count does not match the target model.
    ShapeMismatch {
        /// Parameters in the checkpoint.
        checkpoint: u64,
        /// Parameters in the model.
        model: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint corrupted (checksum)"),
            CheckpointError::ShapeMismatch { checkpoint, model } => {
                write!(
                    f,
                    "parameter count mismatch: checkpoint {checkpoint}, model {model}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a over a byte slice.
fn fnv1a(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Serialize a model's parameters (and the training step) to a checkpoint
/// buffer.
pub fn save(model: &Mlp, step: u32) -> Bytes {
    let params = model.flat_params();
    let mut payload = BytesMut::with_capacity(params.len() * 4);
    for p in &params {
        payload.put_f32_le(*p);
    }
    let checksum = fnv1a(&payload);

    let mut out = BytesMut::with_capacity(payload.len() + 32);
    out.put_u32(MAGIC);
    out.put_u16(VERSION);
    out.put_u32(step);
    out.put_u64(params.len() as u64);
    out.put_u64(checksum);
    out.put(payload);
    out.freeze()
}

/// Restore a model's parameters from a checkpoint. Returns the saved step.
///
/// # Errors
/// Every malformation is detected and reported; the model is only written
/// on success.
pub fn load(model: &mut Mlp, mut buf: Bytes) -> Result<u32, CheckpointError> {
    if buf.remaining() < 4 + 2 + 4 + 8 + 8 {
        return Err(CheckpointError::Truncated);
    }
    if buf.get_u32() != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = buf.get_u16();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let step = buf.get_u32();
    let count = buf.get_u64();
    let checksum = buf.get_u64();
    if buf.remaining() as u64 != count * 4 {
        return Err(CheckpointError::Truncated);
    }
    if count != model.param_count() as u64 {
        return Err(CheckpointError::ShapeMismatch {
            checkpoint: count,
            model: model.param_count() as u64,
        });
    }
    if fnv1a(buf.chunk()) != checksum {
        return Err(CheckpointError::ChecksumMismatch);
    }
    let mut params = Vec::with_capacity(count as usize);
    for _ in 0..count {
        params.push(buf.get_f32_le());
    }
    model.set_flat_params(&params);
    Ok(step)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MlpSpec;

    #[test]
    fn roundtrip_restores_exact_parameters() {
        let spec = MlpSpec::new(4, &[8, 8], 3);
        let model = spec.build(42);
        let bytes = save(&model, 1234);
        let mut restored = spec.build(99); // different init
        assert_ne!(restored.flat_params(), model.flat_params());
        let step = load(&mut restored, bytes).expect("valid checkpoint");
        assert_eq!(step, 1234);
        assert_eq!(restored.flat_params(), model.flat_params());
    }

    #[test]
    fn corruption_detected() {
        let model = MlpSpec::new(3, &[4], 2).build(1);
        let bytes = save(&model, 0);
        let mut corrupt = bytes.to_vec();
        let idx = corrupt.len() - 3; // inside the payload
        corrupt[idx] ^= 0xFF;
        let mut target = MlpSpec::new(3, &[4], 2).build(2);
        let err = load(&mut target, Bytes::from(corrupt)).unwrap_err();
        assert_eq!(err, CheckpointError::ChecksumMismatch);
    }

    #[test]
    fn truncation_detected() {
        let model = MlpSpec::new(3, &[4], 2).build(1);
        let bytes = save(&model, 0);
        let mut target = MlpSpec::new(3, &[4], 2).build(2);
        let before = target.flat_params();
        let err = load(&mut target, bytes.slice(0..bytes.len() - 5)).unwrap_err();
        assert_eq!(err, CheckpointError::Truncated);
        // Target untouched on failure.
        assert_eq!(target.flat_params(), before);
    }

    #[test]
    fn wrong_magic_and_shape_detected() {
        let model = MlpSpec::new(3, &[4], 2).build(1);
        let bytes = save(&model, 7);

        let mut junk = bytes.to_vec();
        junk[0] = 0;
        let mut target = MlpSpec::new(3, &[4], 2).build(2);
        assert_eq!(
            load(&mut target, Bytes::from(junk)).unwrap_err(),
            CheckpointError::BadMagic
        );

        let mut other_shape = MlpSpec::new(3, &[5], 2).build(2);
        match load(&mut other_shape, bytes).unwrap_err() {
            CheckpointError::ShapeMismatch { .. } => {}
            e => panic!("expected shape mismatch, got {e}"),
        }
    }

    #[test]
    fn checkpoint_size_is_header_plus_payload() {
        let model = MlpSpec::new(4, &[8], 2).build(3);
        let bytes = save(&model, 0);
        assert_eq!(bytes.len(), 26 + model.param_count() * 4);
    }
}
