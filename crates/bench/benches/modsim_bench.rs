//! Mod-sim benchmarks: halo-exchange scaling over thread-ranks and the
//! submodel speedup (exact kinetics vs batched MLP inference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::Cell;
use std::rc::Rc;
use summit_modsim::{
    grid::Field,
    parallel::ParallelSolver,
    solver::{Reaction, Solver},
    submodel::ReactionSurrogate,
};

fn halo_exchange_scaling(c: &mut Criterion) {
    let mut init = Field::new(48, 48);
    init.fill_test_pattern();
    let solver = ParallelSolver {
        alpha: 0.2,
        dt: 0.05,
        reaction: None,
    };
    let mut group = c.benchmark_group("halo");
    group.sample_size(10);
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("ranks", ranks), &ranks, |b, &ranks| {
            b.iter(|| solver.run(&init, ranks, 20))
        });
    }
    group.finish();
}

fn submodel_vs_exact(c: &mut Criterion) {
    let mut init = Field::new(24, 24);
    init.fill_test_pattern();
    // Pre-train the surrogate once; bench only the simulation loops.
    let surrogate = ReactionSurrogate::train(2.0, 64, 3);
    println!(
        "[submodel] surrogate max fit error {:.4} after {} expensive calls",
        surrogate.max_error(2.0),
        surrogate.training_evaluations
    );
    let mut group = c.benchmark_group("reaction");
    group.sample_size(10);
    group.bench_function("exact_kinetics_20_steps", |b| {
        b.iter_batched(
            || {
                Solver::new(
                    init.clone(),
                    0.15,
                    0.05,
                    Reaction::ExactKinetics {
                        k: 2.0,
                        calls: Rc::new(Cell::new(0)),
                    },
                )
            },
            |mut s| {
                s.step(20);
                s.field().total_mass()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    // Reuse one trained surrogate; the evolving field does not change the
    // per-step cost.
    let mut ml_solver = Solver::new(init.clone(), 0.15, 0.05, Reaction::Surrogate(surrogate));
    group.bench_function("ml_submodel_20_steps", |b| {
        b.iter(|| {
            ml_solver.step(20);
            ml_solver.field().total_mass()
        })
    });
    group.finish();
}

criterion_group!(benches, halo_exchange_scaling, submodel_vs_exact);
criterion_main!(benches);
