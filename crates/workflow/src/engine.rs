//! A multi-threaded DAG workflow engine with multi-facility scheduling.
//!
//! Stands in for the Balsam and RAPTOR systems the paper's Section V
//! workflows used. Two layers:
//!
//! * **Real execution** — [`WorkflowBuilder::run`] executes every task's
//!   closure on a worker pool, delivering dependency outputs and enforcing
//!   DAG order. This is actual concurrency over crossbeam channels, used by
//!   the steering/screening/materials case studies.
//! * **Simulated time** — tasks carry a simulated duration and a
//!   [`Facility`]; [`simulate_schedule`] list-schedules the DAG against
//!   per-facility concurrency limits and reports start times and makespan,
//!   so examples can report campaign-scale timings without waiting for
//!   them.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::unbounded;
use parking_lot::Mutex;
use serde::Serialize;

/// A compute facility in a cross-site campaign (paper Section V-B runs
/// components at OLCF, NERSC and ALCF simultaneously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Facility {
    /// OLCF Summit.
    Summit,
    /// OLCF Andes (pre/post-processing cluster).
    Andes,
    /// NERSC Perlmutter.
    Perlmutter,
    /// ALCF ThetaGPU.
    ThetaGpu,
    /// ALCF Cerebras CS-2.
    CerebrasCs2,
}

impl Facility {
    /// All facilities.
    pub const ALL: [Facility; 5] = [
        Facility::Summit,
        Facility::Andes,
        Facility::Perlmutter,
        Facility::ThetaGpu,
        Facility::CerebrasCs2,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Facility::Summit => "Summit",
            Facility::Andes => "Andes",
            Facility::Perlmutter => "Perlmutter",
            Facility::ThetaGpu => "ThetaGPU",
            Facility::CerebrasCs2 => "Cerebras CS-2",
        }
    }
}

/// Identifier of a task within one workflow.
pub type TaskId = usize;

/// The work closure of a task: receives dependency outputs, returns the
/// task's value.
pub type TaskWork<T> = Box<dyn FnOnce(&[Arc<T>]) -> T + Send>;

struct TaskSpec<T> {
    name: String,
    facility: Facility,
    sim_seconds: f64,
    deps: Vec<TaskId>,
    work: TaskWork<T>,
}

/// Builder and executor for one DAG of tasks producing values of type `T`.
pub struct WorkflowBuilder<T> {
    tasks: Vec<TaskSpec<T>>,
}

impl<T: Send + Sync + 'static> Default for WorkflowBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + Sync + 'static> WorkflowBuilder<T> {
    /// Create an empty workflow.
    pub fn new() -> Self {
        WorkflowBuilder { tasks: Vec::new() }
    }

    /// Add a task. `deps` must already exist; `work` receives the dep
    /// outputs in `deps` order. Returns the new task's id.
    ///
    /// # Panics
    /// Panics if a dependency id is not yet defined (this also rules out
    /// cycles, since ids are assigned in creation order).
    pub fn task(
        &mut self,
        name: impl Into<String>,
        facility: Facility,
        sim_seconds: f64,
        deps: Vec<TaskId>,
        work: impl FnOnce(&[Arc<T>]) -> T + Send + 'static,
    ) -> TaskId {
        let id = self.tasks.len();
        for &d in &deps {
            assert!(d < id, "dependency {d} not defined before task {id}");
        }
        assert!(
            sim_seconds >= 0.0,
            "simulated duration must be non-negative"
        );
        self.tasks.push(TaskSpec {
            name: name.into(),
            facility,
            sim_seconds,
            deps,
            work: Box::new(work),
        });
        id
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workflow is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Task metadata for simulation: (name, facility, sim_seconds, deps).
    pub fn specs(&self) -> Vec<(String, Facility, f64, Vec<TaskId>)> {
        self.tasks
            .iter()
            .map(|t| (t.name.clone(), t.facility, t.sim_seconds, t.deps.clone()))
            .collect()
    }

    /// Execute the DAG on `workers` threads and return every task's output,
    /// indexed by task id.
    ///
    /// # Panics
    /// Panics if `workers == 0` or a task panics.
    pub fn run(self, workers: usize) -> Vec<Arc<T>> {
        assert!(workers > 0, "need at least one worker");
        let n = self.tasks.len();
        if n == 0 {
            return Vec::new();
        }

        // Dependency bookkeeping.
        let mut indegree: Vec<usize> = self.tasks.iter().map(|t| t.deps.len()).collect();
        let mut dependents: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for (id, t) in self.tasks.iter().enumerate() {
            for &d in &t.deps {
                dependents[d].push(id);
            }
        }
        let deps: Vec<Vec<TaskId>> = self.tasks.iter().map(|t| t.deps.clone()).collect();

        // Work distribution channels.
        let (ready_tx, ready_rx) = unbounded::<(TaskId, TaskWork<T>)>();
        let (done_tx, done_rx) = unbounded::<(TaskId, T)>();

        let outputs: Arc<Mutex<Vec<Option<Arc<T>>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));

        // Stage the work closures so we can dispatch by id.
        let mut work: Vec<Option<TaskWork<T>>> =
            self.tasks.into_iter().map(|t| Some(t.work)).collect();

        // Seed initially-ready tasks.
        for id in 0..n {
            if indegree[id] == 0 {
                ready_tx
                    .send((id, work[id].take().expect("work staged once")))
                    .expect("receiver alive");
            }
        }

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let ready_rx = ready_rx.clone();
                let done_tx = done_tx.clone();
                let outputs = Arc::clone(&outputs);
                let deps = &deps;
                scope.spawn(move || {
                    while let Ok((id, f)) = ready_rx.recv() {
                        let dep_outputs: Vec<Arc<T>> = {
                            let guard = outputs.lock();
                            deps[id]
                                .iter()
                                .map(|&d| {
                                    Arc::clone(
                                        guard[d].as_ref().expect("dependency completed first"),
                                    )
                                })
                                .collect()
                        };
                        let value = f(&dep_outputs);
                        if done_tx.send((id, value)).is_err() {
                            return; // coordinator gone (workflow finished)
                        }
                    }
                });
            }

            // Coordinator: collect completions, release dependents.
            let mut completed = 0usize;
            while completed < n {
                let (id, value) = done_rx.recv().expect("workers alive");
                outputs.lock()[id] = Some(Arc::new(value));
                completed += 1;
                for &dep in &dependents[id] {
                    indegree[dep] -= 1;
                    if indegree[dep] == 0 {
                        ready_tx
                            .send((dep, work[dep].take().expect("work staged once")))
                            .expect("receiver alive");
                    }
                }
            }
            // Close the ready channel so workers exit.
            drop(ready_tx);
        });

        Arc::try_unwrap(outputs)
            .map_err(|_| ())
            .expect("all workers joined")
            .into_inner()
            .into_iter()
            .map(|o| o.expect("every task completed"))
            .collect()
    }
}

/// A task's placement in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SimPlacement {
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time.
    pub end: f64,
}

/// List-schedule the DAG against per-facility concurrency limits (tasks
/// ready earliest start first). Returns per-task placements and the
/// makespan.
///
/// # Panics
/// Panics if a task references an undefined dependency or a facility has a
/// zero limit.
pub fn simulate_schedule(
    specs: &[(String, Facility, f64, Vec<TaskId>)],
    capacity: &HashMap<Facility, usize>,
) -> (Vec<SimPlacement>, f64) {
    let n = specs.len();
    for (_, f, _, deps) in specs {
        assert!(
            capacity.get(f).copied().unwrap_or(1) > 0,
            "facility {} has zero capacity",
            f.name()
        );
        for &d in deps {
            assert!(d < n, "undefined dependency");
        }
    }
    // Per-facility running sets as (end_time) vectors.
    let mut running: HashMap<Facility, Vec<f64>> = HashMap::new();
    let mut placements: Vec<Option<SimPlacement>> = vec![None; n];
    let mut remaining: Vec<usize> = (0..n).collect();

    while !remaining.is_empty() {
        // Among tasks whose deps are placed, compute the earliest feasible
        // start (dep ends and a facility slot).
        let mut best: Option<(f64, usize)> = None;
        for (pos, &id) in remaining.iter().enumerate() {
            let (_, facility, _, deps) = &specs[id];
            if deps.iter().any(|&d| placements[d].is_none()) {
                continue;
            }
            let dep_ready = deps
                .iter()
                .map(|&d| placements[d].expect("checked").end)
                .fold(0.0f64, f64::max);
            let cap = capacity.get(facility).copied().unwrap_or(1);
            let slots = running.entry(*facility).or_default();
            let slot_ready = if slots.len() < cap {
                0.0
            } else {
                // Earliest end among running tasks at this facility when at
                // capacity: kth smallest end such that a slot frees.
                let mut ends = slots.clone();
                ends.sort_by(f64::total_cmp);
                ends[ends.len() - cap]
            };
            let start = dep_ready.max(slot_ready);
            if best.is_none_or(|(s, _)| start < s) {
                best = Some((start, pos));
            }
        }
        let (start, pos) = best.expect("acyclic DAG always has a ready task");
        let id = remaining.remove(pos);
        let (_, facility, dur, _) = &specs[id];
        let end = start + dur;
        placements[id] = Some(SimPlacement { start, end });
        let slots = running.entry(*facility).or_default();
        // Keep only tasks still running at `start`, then add this one.
        slots.retain(|&e| e > start);
        slots.push(end);
    }

    let makespan = placements
        .iter()
        .map(|p| p.expect("all placed").end)
        .fold(0.0f64, f64::max);
    (
        placements.into_iter().map(|p| p.expect("placed")).collect(),
        makespan,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn diamond_dag_order_and_outputs() {
        let mut wf = WorkflowBuilder::new();
        let a = wf.task("a", Facility::Summit, 1.0, vec![], |_| 1u64);
        let b = wf.task("b", Facility::Summit, 1.0, vec![a], |d| *d[0] + 10);
        let c = wf.task("c", Facility::Summit, 1.0, vec![a], |d| *d[0] + 100);
        let d = wf.task("d", Facility::Summit, 1.0, vec![b, c], |d| *d[0] + *d[1]);
        let out = wf.run(4);
        assert_eq!(*out[a], 1);
        assert_eq!(*out[b], 11);
        assert_eq!(*out[c], 101);
        assert_eq!(*out[d], 112);
    }

    #[test]
    fn independent_tasks_actually_overlap() {
        static IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);
        static MAX_SEEN: AtomicUsize = AtomicUsize::new(0);
        let mut wf = WorkflowBuilder::new();
        for i in 0..8 {
            wf.task(format!("t{i}"), Facility::Summit, 1.0, vec![], |_| {
                let now = IN_FLIGHT.fetch_add(1, Ordering::SeqCst) + 1;
                MAX_SEEN.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                IN_FLIGHT.fetch_sub(1, Ordering::SeqCst);
                0u8
            });
        }
        let _ = wf.run(4);
        assert!(
            MAX_SEEN.load(Ordering::SeqCst) >= 2,
            "independent tasks never overlapped"
        );
    }

    #[test]
    fn single_worker_still_completes() {
        let mut wf = WorkflowBuilder::new();
        let mut prev = wf.task("t0", Facility::Andes, 1.0, vec![], |_| 0u32);
        for i in 1..20 {
            prev = wf.task(
                format!("t{i}"),
                Facility::Andes,
                1.0,
                vec![prev],
                move |d| *d[0] + 1,
            );
        }
        let out = wf.run(1);
        assert_eq!(*out[prev], 19);
    }

    #[test]
    #[should_panic(expected = "not defined before")]
    fn forward_dependency_rejected() {
        let mut wf: WorkflowBuilder<()> = WorkflowBuilder::new();
        wf.task("bad", Facility::Summit, 1.0, vec![5], |_| ());
    }

    #[test]
    fn simulated_chain_is_sequential() {
        let mut wf: WorkflowBuilder<u8> = WorkflowBuilder::new();
        let a = wf.task("a", Facility::Summit, 10.0, vec![], |_| 0);
        let b = wf.task("b", Facility::Summit, 20.0, vec![a], |_| 0);
        let _ = wf.task("c", Facility::Summit, 5.0, vec![b], |_| 0);
        let caps = HashMap::from([(Facility::Summit, 4)]);
        let (placements, makespan) = simulate_schedule(&wf.specs(), &caps);
        assert_eq!(placements[0].start, 0.0);
        assert_eq!(placements[1].start, 10.0);
        assert_eq!(placements[2].start, 30.0);
        assert_eq!(makespan, 35.0);
    }

    #[test]
    fn facility_capacity_serializes_tasks() {
        let mut wf: WorkflowBuilder<u8> = WorkflowBuilder::new();
        for i in 0..4 {
            wf.task(format!("t{i}"), Facility::ThetaGpu, 10.0, vec![], |_| 0);
        }
        let caps = HashMap::from([(Facility::ThetaGpu, 2)]);
        let (_, makespan) = simulate_schedule(&wf.specs(), &caps);
        assert_eq!(makespan, 20.0, "4 tasks on 2 slots take two waves");
        let caps4 = HashMap::from([(Facility::ThetaGpu, 4)]);
        let (_, makespan4) = simulate_schedule(&wf.specs(), &caps4);
        assert_eq!(makespan4, 10.0);
    }

    #[test]
    fn cross_facility_tasks_run_concurrently_in_sim() {
        let mut wf: WorkflowBuilder<u8> = WorkflowBuilder::new();
        wf.task("md", Facility::Perlmutter, 100.0, vec![], |_| 0);
        wf.task("train", Facility::Summit, 100.0, vec![], |_| 0);
        wf.task("ffea", Facility::ThetaGpu, 100.0, vec![], |_| 0);
        let caps = HashMap::from([
            (Facility::Perlmutter, 1),
            (Facility::Summit, 1),
            (Facility::ThetaGpu, 1),
        ]);
        let (_, makespan) = simulate_schedule(&wf.specs(), &caps);
        assert_eq!(makespan, 100.0, "different facilities overlap");
    }
}
