//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`
//! returns the guard directly (poisoning is swallowed — a poisoned std
//! mutex yields its inner data, matching parking_lot's no-poisoning
//! semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking; never panics on poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(vec![1, 2, 3]);
        m.lock().push(4);
        assert_eq!(*m.lock(), vec![1, 2, 3, 4]);
        assert_eq!(m.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
    }
}
