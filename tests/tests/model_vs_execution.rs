//! Integration X1: the executed collectives and the analytic cost models
//! agree on the quantities both can observe — transferred bytes and
//! message (step) counts.

use summit_comm::{
    collectives::{recursive_doubling_allreduce, ring_allreduce, ReduceOp},
    world::World,
};

/// Ring allreduce moves exactly 2(p−1)/p · n elements per rank — the byte
/// term the analytic ring model charges to the link.
#[test]
fn ring_traffic_matches_model_bandwidth_term() {
    for p in [2usize, 3, 5, 8] {
        for n in [16usize, 100, 1024] {
            let (_, stats) = World::run_with_stats(p, |rank| {
                let mut buf = vec![1.0f32; n];
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
            });
            // Total across ranks: p · 2(p−1)/p · n elements × 4 bytes,
            // except chunk rounding: with exact chunking the total is
            // exactly 2(p−1)·n elements.
            assert_eq!(stats.bytes_sent, (8 * (p - 1) * n) as u64, "p={p} n={n}");
            // 2(p−1) steps per rank.
            assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
        }
    }
}

/// Recursive doubling sends log2(p) full buffers per rank — the model's
/// byte term.
#[test]
fn recursive_doubling_traffic_matches_model() {
    for logp in 1u32..4 {
        let p = 1usize << logp;
        let n = 64usize;
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![1.0f32; n];
            recursive_doubling_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        assert_eq!(stats.bytes_sent, (p * logp as usize * n * 4) as u64);
        assert_eq!(stats.messages_sent, (p * logp as usize) as u64);
    }
}

/// The executed ring's per-rank traffic is independent of p for large p
/// (the saturation behind the paper's "12.5 GB/s algorithm bandwidth").
#[test]
fn ring_per_rank_traffic_saturates() {
    let n = 840usize; // divisible by all p below: exact chunks
    let mut per_rank: Vec<f64> = Vec::new();
    for p in [2usize, 4, 8] {
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![0.5f32; n];
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        per_rank.push(stats.bytes_sent as f64 / p as f64);
    }
    // 2(p-1)/p · n · 4: p=2 → 1·n·4; p=8 → 1.75·n·4. Ratio < 2 and
    // monotonically approaching 2n·4.
    assert!(per_rank.windows(2).all(|w| w[1] > w[0]));
    assert!(per_rank[2] < 2.0 * 840.0 * 4.0);
}
