//! Neural-network forward/backward kernels on [`Matrix`] batches.
//!
//! Row convention: a batch activation matrix is `batch × features`.
//!
//! The in-place elementwise/row-wise kernels (`relu_inplace`,
//! `relu_backward`, `add_bias`, `softmax_inplace`) dispatch row chunks onto
//! the persistent compute pool above [`ELEMWISE_PAR_THRESHOLD`] elements,
//! under the calling thread's core budget. Each element (or row, for
//! softmax) is computed independently, so pooled results are trivially
//! bit-identical to serial. Reductions (`column_sums`, losses, `accuracy`)
//! stay serial: their accumulation order is part of the numeric contract.

use crate::matrix::Matrix;

/// Element count above which in-place elementwise kernels parallelize —
/// below this the pool dispatch overhead exceeds the memory-bound work.
const ELEMWISE_PAR_THRESHOLD: usize = 16_384;

/// Chunk count for an elementwise kernel over `rows` rows of `elems` total
/// elements: serial below the threshold, else the core budget.
fn elem_parts(elems: usize, rows: usize) -> usize {
    if elems < ELEMWISE_PAR_THRESHOLD {
        1
    } else {
        summit_pool::core_budget().min(rows)
    }
}

/// ReLU forward, in place. The SIMD backend (`max` against zero, no
/// reassociation) is bit-identical to the scalar loop.
pub fn relu_inplace(x: &mut Matrix) {
    let (rows, cols) = (x.rows(), x.cols());
    let parts = elem_parts(rows * cols, rows);
    let use_simd = crate::simd::active();
    summit_pool::global().run_rows(x.as_mut_slice(), cols, parts, |chunk, _| {
        if use_simd {
            // SAFETY: `active()` verified AVX2+FMA on this CPU.
            unsafe { crate::simd::relu_dispatch(chunk) }
        } else {
            for v in chunk.iter_mut() {
                *v = v.max(0.0);
            }
        }
    });
}

/// ReLU backward: zero `grad` wherever the forward *output* was zero.
///
/// # Panics
/// Panics on shape mismatch.
pub fn relu_backward(output: &Matrix, grad: &mut Matrix) {
    assert_eq!(
        (output.rows(), output.cols()),
        (grad.rows(), grad.cols()),
        "relu_backward shape mismatch"
    );
    let (rows, cols) = (grad.rows(), grad.cols());
    let parts = elem_parts(rows * cols, rows);
    let out = output.as_slice();
    summit_pool::global().run_rows(grad.as_mut_slice(), cols, parts, |chunk, range| {
        let o = &out[range.start * cols..range.end * cols];
        for (g, &ov) in chunk.iter_mut().zip(o) {
            if ov <= 0.0 {
                *g = 0.0;
            }
        }
    });
}

/// Add a bias row-vector to every row of `x`.
///
/// # Panics
/// Panics if `bias.len() != x.cols()`.
pub fn add_bias(x: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), x.cols(), "bias length mismatch");
    let (rows, cols) = (x.rows(), x.cols());
    let parts = elem_parts(rows * cols, rows);
    let use_simd = crate::simd::active();
    summit_pool::global().run_rows(x.as_mut_slice(), cols, parts, |chunk, _| {
        if use_simd {
            // SAFETY: `active()` verified AVX2+FMA on this CPU (one add per
            // element — bit-identical to the scalar loop).
            unsafe { crate::simd::add_bias_dispatch(chunk, bias) }
        } else {
            for row in chunk.chunks_exact_mut(cols) {
                for (v, b) in row.iter_mut().zip(bias) {
                    *v += b;
                }
            }
        }
    });
}

/// Column-wise sum of a gradient matrix — the bias gradient.
pub fn column_sums(x: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0f32; x.cols()];
    for r in 0..x.rows() {
        for (o, &v) in out.iter_mut().zip(x.row(r)) {
            *o += v;
        }
    }
    out
}

/// Numerically stable row-wise softmax, in place. Rows are independent, so
/// row chunks run on the pool above the elementwise threshold.
pub fn softmax_inplace(x: &mut Matrix) {
    let (rows, cols) = (x.rows(), x.cols());
    let parts = elem_parts(rows * cols, rows);
    summit_pool::global().run_rows(x.as_mut_slice(), cols, parts, |chunk, _| {
        for row in chunk.chunks_exact_mut(cols) {
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    });
}

/// Mean cross-entropy loss of row-wise softmax probabilities against integer
/// labels, plus the logits gradient `(softmax - onehot) / batch`.
///
/// `logits` is consumed as scratch and returned as the gradient.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(mut logits: Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "labels length mismatch");
    softmax_inplace(&mut logits);
    let batch = logits.rows() as f32;
    let mut loss = 0.0f32;
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < logits.cols(), "label out of range");
        let p = logits.get(r, label).max(1e-12);
        loss -= p.ln();
        let row = logits.row_mut(r);
        row[label] -= 1.0;
    }
    // Scale to mean gradient.
    logits.map_inplace(|v| v / batch);
    (loss / batch, logits)
}

/// Classification accuracy of logits (or probabilities) against labels.
///
/// # Panics
/// Panics if `labels.len() != logits.rows()`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(labels.len(), logits.rows(), "labels length mismatch");
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("rows are non-empty");
        if argmax == label {
            correct += 1;
        }
    }
    correct as f32 / labels.len() as f32
}

/// Mean squared error loss and gradient `2(pred - target)/n_elements`.
///
/// # Panics
/// Panics on shape mismatch.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "mse shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f32;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_and_masks() {
        let mut x = Matrix::from_rows(&[&[-1.0, 2.0], &[0.5, -0.5]]);
        relu_inplace(&mut x);
        assert_eq!(x.row(0), &[0.0, 2.0]);
        let mut g = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        relu_backward(&x, &mut g);
        assert_eq!(g.row(0), &[0.0, 1.0]);
        assert_eq!(g.row(1), &[1.0, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = Matrix::from_rows(&[&[1000.0, 1000.0, 1000.0], &[-500.0, 0.0, 500.0]]);
        softmax_inplace(&mut x);
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(x.row(r).iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        // Uniform logits → uniform probabilities.
        assert!((x.get(0, 0) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_matches_hand_computation() {
        // Single sample, two classes, logits (0, 0) → p = (0.5, 0.5),
        // loss = ln 2, grad = (p - onehot).
        let logits = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (loss, grad) = softmax_cross_entropy(logits, &[0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-5);
        assert!((grad.get(0, 0) + 0.5).abs() < 1e-5);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_is_numerically_correct() {
        // Finite-difference check on a 2×3 logits matrix.
        let base = Matrix::from_rows(&[&[0.3, -0.2, 0.9], &[-1.0, 0.4, 0.1]]);
        let labels = [2usize, 1];
        let (_, grad) = softmax_cross_entropy(base.clone(), &labels);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = base.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let (lp, _) = softmax_cross_entropy(plus, &labels);
                let mut minus = base.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lm, _) = softmax_cross_entropy(minus, &labels);
                let fd = (lp - lm) / (2.0 * eps);
                assert!(
                    (fd - grad.get(r, c)).abs() < 1e-2,
                    "({r},{c}): fd {fd} vs grad {}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn bias_and_column_sums_roundtrip() {
        let mut x = Matrix::zeros(3, 2);
        add_bias(&mut x, &[1.0, -2.0]);
        assert_eq!(column_sums(&x), vec![3.0, -6.0]);
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mse_gradient_direction() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 2.0]]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!(grad.get(0, 0) > 0.0);
        assert_eq!(grad.get(0, 1), 0.0);
    }
}
