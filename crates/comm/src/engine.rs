//! The unified collective engine: every collective algorithm written once
//! as a polled schedule, executed by interchangeable drivers.
//!
//! A collective is described by a [`Schedule`]: a state machine whose
//! [`current`](Schedule::current) method names the single next transport
//! operation ([`Op`]) — send a window, or receive a window and fold/copy it —
//! and whose [`advance`](Schedule::advance) method moves to the next one.
//! `current` is pure arithmetic over `chunk_bounds` windows; all mutation
//! lives in `advance`. From that one description the four public surfaces
//! are derived:
//!
//! * **blocking** — [`drive_blocking`] executes ops in order with the
//!   infallible pooled primitives (the allocation-free hot path);
//! * **fallible** — [`drive_checked`] executes the same ops with
//!   deadline-bounded checked receives and per-op kill polls, surfacing
//!   faults as [`CommError`] instead of hanging;
//! * **nonblocking** — [`step_nonblocking`] executes exactly one op (or
//!   polls for it), which `RingAllreduceHandle` wraps into the
//!   `progress()`/`wait()` API;
//! * **modeled** — [`simulate`] executes the schedule against a
//!   [`ModelTransport`]-style virtual clock per rank: no bytes move, each
//!   send costs `α + bytes/β` on the α–β [`LinkModel`], and the report's
//!   message/byte counters equal the executed transport's counters **by
//!   construction** (same schedule, same ops).
//!
//! The schedules reproduce the historical per-algorithm implementations
//! message for message: identical tags, identical fold operand order
//! (`local ⊕ incoming`), identical empty-window semantics (the ring skips
//! empty chunks; the dissemination-style algorithms send empty messages
//! unconditionally), so results are bit-identical to the pre-engine code
//! and the fault plane's `TagClass` targeting keeps working unchanged.

use std::collections::{HashMap, VecDeque};
use std::time::Instant;

use summit_machine::LinkModel;

use crate::collectives::{chunk_bounds, ReduceOp};
use crate::faults::CommError;
use crate::world::Rank;

/// Tag-space separator: nonblocking tags set the top bit, which no blocking
/// collective tag (`collective id << 32`, ids < 2^7) can reach, so handles
/// and blocking collectives coexist on one wire without collisions.
pub(crate) const NB_BIT: u64 = 1 << 63;

/// Tag for one segment of a bucketed chunk transfer: `(collective id,
/// step, segment)` packed so that the flat path (`segment == 0`) produces
/// the same tags as the historical unsegmented collectives. The 15-bit
/// step field covers ring steps on full-Summit worlds (p − 2 = 27,646 at
/// p = 27,648); the collective id stays at bit 32, which
/// [`TagClass`](crate::faults::TagClass) decoding relies on.
pub(crate) fn tag_seg(collective: u64, step: usize, seg: usize) -> u64 {
    debug_assert!(step < 1 << 15, "step out of tag range");
    assert!(seg < 1 << 17, "segment index out of tag range");
    (collective << 32) | ((seg as u64) << 15) | step as u64
}

/// What a receive does with the payload relative to the schedule's buffer
/// window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecvAct {
    /// `window ⊕= payload` (the final in-place fold).
    FoldIntoBuf,
    /// `payload = window ⊕ payload` — the circulating-partial fold of an
    /// intermediate ring hop; `buf` is untouched.
    FoldForward,
    /// `payload = window ⊕ payload`, then land it: `window = payload`.
    /// The final reduce hop that hands its finished chunk to the allgather.
    FoldLand,
    /// `window = payload` (allgather / broadcast data).
    Copy,
}

/// What happens to the payload buffer after the receive action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposal {
    /// Recycle it into this rank's pool.
    Release,
    /// Forward it as-is to `to` under `tag` (the ring's zero-copy relay).
    Forward { to: usize, tag: u64 },
}

/// One transport operation of a schedule.
///
/// `win` indexes the schedule's buffer; `slot` indexes its owned-vector
/// slot array (the personalized collectives — alltoall/scatter/gather —
/// move whole caller-owned vectors instead of windows of one buffer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// Send `buf[win.0..win.1]` to `to` (pooled copy via `send_from`).
    Send {
        to: usize,
        tag: u64,
        win: (usize, usize),
    },
    /// Receive from `from`, apply `act` against `buf[win.0..win.1]`, then
    /// dispose of the payload per `then`.
    Recv {
        from: usize,
        tag: u64,
        win: (usize, usize),
        act: RecvAct,
        then: Disposal,
    },
    /// Send the owned vector `slots[slot]` to `to` (moves it; no copy).
    SendSlot { to: usize, tag: u64, slot: usize },
    /// Receive from `from` into `slots[slot]` (takes payload ownership).
    RecvSlot { from: usize, tag: u64, slot: usize },
    /// Bruck round: send the concatenation of every `slots[i]` whose index
    /// has `bit` set, ascending, as one wire message.
    SendGather { to: usize, tag: u64, bit: u32 },
    /// Bruck round: split the payload from `from` evenly across the slots
    /// whose index has `bit` set, ascending.
    RecvScatter { from: usize, tag: u64, bit: u32 },
}

/// Number of slot indices in `0..p` with `bit` set — a Bruck round's block
/// count, closed-form so the simulators never scan `p` slots per message.
pub(crate) fn bruck_count(p: usize, bit: u32) -> usize {
    let half = 1usize << bit;
    (p >> (bit + 1)) * half + (p & (2 * half - 1)).saturating_sub(half)
}

/// Concatenate the slots a Bruck round sends (ascending index order).
fn bruck_gather(slots: &[Vec<f32>], bit: u32) -> Vec<f32> {
    let mut out = Vec::with_capacity(
        (0..slots.len())
            .filter(|i| i >> bit & 1 == 1)
            .map(|i| slots[i].len())
            .sum(),
    );
    for (i, slot) in slots.iter().enumerate() {
        if i >> bit & 1 == 1 {
            out.extend_from_slice(slot);
        }
    }
    out
}

/// Scatter a received Bruck payload back into the bit-selected slots.
fn bruck_scatter(slots: &mut [Vec<f32>], bit: u32, payload: &[f32]) {
    let count = bruck_count(slots.len(), bit);
    if count == 0 {
        assert!(payload.is_empty(), "Bruck payload for an empty round");
        return;
    }
    assert_eq!(
        payload.len() % count,
        0,
        "Bruck payload not block-divisible"
    );
    let each = payload.len() / count;
    let mut off = 0;
    for (i, slot) in slots.iter_mut().enumerate() {
        if i >> bit & 1 == 1 {
            slot.clear();
            slot.extend_from_slice(&payload[off..off + each]);
            off += each;
        }
    }
}

/// A collective as a polled sequence of transport operations.
///
/// `current` returns the next op without side effects (`None` when the
/// collective is complete); `advance` commits it. Drivers call them in
/// strict pairs, except the nonblocking driver, which may observe the same
/// `current` repeatedly while polling for its message.
pub(crate) trait Schedule {
    fn current(&self) -> Option<Op>;
    fn advance(&mut self);
}

/// Execute one received payload: fold/copy against the buffer window, then
/// release or forward the transport buffer.
fn apply(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    win: (usize, usize),
    act: RecvAct,
    then: Disposal,
    mut payload: Vec<f32>,
) {
    let window = &mut buf[win.0..win.1];
    match act {
        RecvAct::FoldIntoBuf => op.fold(window, &payload),
        RecvAct::FoldForward => op.fold_into_payload(&mut payload, window),
        RecvAct::FoldLand => {
            op.fold_into_payload(&mut payload, window);
            window.copy_from_slice(&payload);
        }
        RecvAct::Copy => {
            assert_eq!(payload.len(), window.len(), "payload length mismatch");
            window.copy_from_slice(&payload);
        }
    }
    match then {
        Disposal::Release => rank.release_payload(payload),
        Disposal::Forward { to, tag } => rank.send(to, tag, payload),
    }
}

/// Drive a schedule to completion on the infallible pooled primitives —
/// the blocking surface. Receives carry no checksum verification or kill
/// polls, exactly like the historical blocking collectives, so the
/// allocation-free hot path pays nothing for the fault plane.
pub(crate) fn drive_blocking(
    rank: &Rank,
    buf: &mut [f32],
    slots: &mut [Vec<f32>],
    op: ReduceOp,
    sched: &mut dyn Schedule,
) {
    while let Some(step) = sched.current() {
        match step {
            Op::Send { to, tag, win } => rank.send_from(to, tag, &buf[win.0..win.1]),
            Op::Recv {
                from,
                tag,
                win,
                act,
                then,
            } => {
                let payload = rank.recv(from, tag);
                apply(rank, buf, op, win, act, then, payload);
            }
            Op::SendSlot { to, tag, slot } => {
                rank.send(to, tag, std::mem::take(&mut slots[slot]));
            }
            Op::RecvSlot { from, tag, slot } => slots[slot] = rank.recv(from, tag),
            Op::SendGather { to, tag, bit } => rank.send(to, tag, bruck_gather(slots, bit)),
            Op::RecvScatter { from, tag, bit } => {
                let payload = rank.recv(from, tag);
                bruck_scatter(slots, bit, &payload);
                rank.release_payload(payload);
            }
        }
        sched.advance();
    }
}

/// Drive a schedule to completion with checked, deadline-bounded receives
/// and a kill poll before every op — the fallible surface. The op sequence,
/// fold order, and operand order are identical to [`drive_blocking`], so a
/// fault-free run is bit-identical to the blocking one.
///
/// # Errors
/// Any [`CommError`] from the checked receives or the kill poll.
pub(crate) fn drive_checked(
    rank: &Rank,
    buf: &mut [f32],
    slots: &mut [Vec<f32>],
    op: ReduceOp,
    sched: &mut dyn Schedule,
    deadline: Option<Instant>,
) -> Result<(), CommError> {
    while let Some(step) = sched.current() {
        rank.poll_fault_kill()?;
        match step {
            Op::Send { to, tag, win } => rank.send_from(to, tag, &buf[win.0..win.1]),
            Op::Recv {
                from,
                tag,
                win,
                act,
                then,
            } => {
                let payload = rank.recv_checked(from, tag, deadline)?;
                apply(rank, buf, op, win, act, then, payload);
            }
            Op::SendSlot { to, tag, slot } => {
                rank.send(to, tag, std::mem::take(&mut slots[slot]));
            }
            Op::RecvSlot { from, tag, slot } => {
                slots[slot] = rank.recv_checked(from, tag, deadline)?;
            }
            Op::SendGather { to, tag, bit } => rank.send(to, tag, bruck_gather(slots, bit)),
            Op::RecvScatter { from, tag, bit } => {
                let payload = rank.recv_checked(from, tag, deadline)?;
                bruck_scatter(slots, bit, &payload);
                rank.release_payload(payload);
            }
        }
        sched.advance();
    }
    Ok(())
}

/// Execute at most one op of a schedule — the nonblocking surface's
/// stepper. Sends execute immediately; receives either block (checked,
/// deadline-bounded) or poll. Returns whether the schedule advanced;
/// `Ok(false)` with `block = false` means the awaited message has not
/// arrived yet (or the schedule is complete).
///
/// # Errors
/// Any [`CommError`] from the checked receives.
pub(crate) fn step_nonblocking(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    sched: &mut dyn Schedule,
    block: bool,
    deadline: Option<Instant>,
) -> Result<bool, CommError> {
    let Some(step) = sched.current() else {
        return Ok(false);
    };
    match step {
        Op::Send { to, tag, win } => rank.send_from(to, tag, &buf[win.0..win.1]),
        Op::Recv {
            from,
            tag,
            win,
            act,
            then,
        } => {
            let payload = if block {
                Some(rank.recv_checked(from, tag, deadline)?)
            } else {
                rank.try_recv_checked(from, tag)?
            };
            let Some(payload) = payload else {
                return Ok(false);
            };
            apply(rank, buf, op, win, act, then, payload);
        }
        Op::SendSlot { .. }
        | Op::RecvSlot { .. }
        | Op::SendGather { .. }
        | Op::RecvScatter { .. } => {
            unreachable!("slot collectives have no nonblocking surface")
        }
    }
    sched.advance();
    Ok(true)
}

/// A schedule adapter that rewrites *dense* member indices into *physical*
/// rank ids through a membership table — the elastic surface.
///
/// Every schedule in this module is a pure function of `(p, me)` over dense
/// ids `0..p`. An elastic view re-derives the same schedule at the
/// surviving size and threads it through this adapter, which maps each
/// op's endpoints (`to`, `from`, and the zero-copy `Forward` relay) through
/// `members[dense]` on the way out. Ops are rewritten, never reordered, so
/// the fold order — and with it bit-identity — is untouched.
pub(crate) struct RemapSchedule<'a> {
    inner: &'a mut dyn Schedule,
    members: &'a [usize],
}

impl<'a> RemapSchedule<'a> {
    pub(crate) fn new(inner: &'a mut dyn Schedule, members: &'a [usize]) -> Self {
        Self { inner, members }
    }
}

impl Schedule for RemapSchedule<'_> {
    fn current(&self) -> Option<Op> {
        let m = self.members;
        self.inner.current().map(|op| match op {
            Op::Send { to, tag, win } => Op::Send {
                to: m[to],
                tag,
                win,
            },
            Op::Recv {
                from,
                tag,
                win,
                act,
                then,
            } => Op::Recv {
                from: m[from],
                tag,
                win,
                act,
                then: match then {
                    Disposal::Release => Disposal::Release,
                    Disposal::Forward { to, tag } => Disposal::Forward { to: m[to], tag },
                },
            },
            Op::SendSlot { to, tag, slot } => Op::SendSlot {
                to: m[to],
                tag,
                slot,
            },
            Op::RecvSlot { from, tag, slot } => Op::RecvSlot {
                from: m[from],
                tag,
                slot,
            },
            Op::SendGather { to, tag, bit } => Op::SendGather {
                to: m[to],
                tag,
                bit,
            },
            Op::RecvScatter { from, tag, bit } => Op::RecvScatter {
                from: m[from],
                tag,
                bit,
            },
        })
    }

    fn advance(&mut self) {
        self.inner.advance();
    }
}

/// Which ring phase a tag belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Reduce,
    Gather,
}

/// How a ring schedule maps `(phase, step, segment)` to wire tags: the
/// blocking namespace (`collective id << 32`) or the nonblocking one
/// (`NB_BIT | id << 13 | phase << 12 | step`). Both layouts are exactly the
/// historical ones, so `TagClass` fault targeting decodes them unchanged.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TagScheme {
    Blocking { reduce_id: u64, gather_id: u64 },
    Nonblocking { collective: u64 },
}

impl TagScheme {
    fn tag(self, phase: Phase, step: usize, seg: usize) -> u64 {
        match self {
            TagScheme::Blocking {
                reduce_id,
                gather_id,
            } => {
                let id = match phase {
                    Phase::Reduce => reduce_id,
                    Phase::Gather => gather_id,
                };
                tag_seg(id, step, seg)
            }
            TagScheme::Nonblocking { collective } => {
                debug_assert_eq!(seg, 0, "nonblocking tags carry no segment");
                debug_assert!(step < 1 << 12, "step out of tag range");
                let ph = match phase {
                    Phase::Reduce => 0u64,
                    Phase::Gather => 1u64,
                };
                NB_BIT | (collective << 13) | (ph << 12) | step as u64
            }
        }
    }
}

/// Stage cursor of a [`RingSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RingStage {
    /// Sending segment `seg` of this rank's own chunk (step 0).
    Prime {
        seg: usize,
    },
    /// Reduce-scatter step `step`, segment `seg`.
    Reduce {
        step: usize,
        seg: usize,
    },
    /// Allgather step `step`, segment `seg`.
    Gather {
        step: usize,
        seg: usize,
    },
    Done,
}

/// The ring family as one schedule: allreduce (reduce-scatter + allgather
/// with the zero-copy handoff between them), standalone reduce-scatter,
/// standalone allgather, bucketed segmentation, and the windowed variant
/// the nonblocking overlap path uses (chunks computed against the *global*
/// `total_len` partition and intersected with this buffer's window, so
/// per-bucket collectives keep the serial fold order bit for bit).
///
/// Empty windows/segments produce no ops — consistently on every rank —
/// matching both the historical blocking ring (`chunks()` over an empty
/// slice) and the nonblocking handle's pure state transitions.
pub(crate) struct RingSchedule {
    p: usize,
    me: usize,
    total_len: usize,
    win_start: usize,
    win_len: usize,
    bucket: usize,
    tags: TagScheme,
    do_reduce: bool,
    do_gather: bool,
    stage: RingStage,
    /// `total_len / p` — the base chunk size, precomputed so the per-op
    /// chunk arithmetic is division-free (the event-driven simulator runs
    /// these cursors ~10⁸ times per full-machine collective).
    base: usize,
    /// `total_len % p` — the first `rem` chunks carry one extra element.
    rem: usize,
}

impl RingSchedule {
    #[allow(clippy::too_many_arguments)] // internal constructor behind the named entry points
    fn new(
        p: usize,
        me: usize,
        total_len: usize,
        win_start: usize,
        win_len: usize,
        bucket: usize,
        tags: TagScheme,
        do_reduce: bool,
        do_gather: bool,
    ) -> Self {
        assert!(bucket > 0, "bucket must hold at least one element");
        debug_assert!(win_start + win_len <= total_len);
        let mut s = RingSchedule {
            p,
            me,
            total_len,
            win_start,
            win_len,
            bucket,
            tags,
            do_reduce,
            do_gather,
            stage: if p == 1 {
                RingStage::Done
            } else {
                RingStage::Prime { seg: 0 }
            },
            base: total_len / p,
            rem: total_len % p,
        };
        s.normalize();
        s
    }

    /// Blocking allreduce over all of an `n`-element buffer, segmented into
    /// messages of at most `bucket` elements (ids 0/1 — the historical
    /// `ring_allreduce_bucketed` wire schedule).
    pub(crate) fn allreduce(p: usize, me: usize, n: usize, bucket: usize) -> Self {
        Self::new(
            p,
            me,
            n,
            0,
            n,
            bucket,
            TagScheme::Blocking {
                reduce_id: 0,
                gather_id: 1,
            },
            true,
            true,
        )
    }

    /// Nonblocking allreduce over the window
    /// `[win_start, win_start + win_len)` of a `total_len`-element gradient
    /// (the overlap path's per-bucket collective).
    pub(crate) fn allreduce_windowed(
        p: usize,
        me: usize,
        total_len: usize,
        win_start: usize,
        win_len: usize,
        collective: u64,
    ) -> Self {
        Self::new(
            p,
            me,
            total_len,
            win_start,
            win_len,
            usize::MAX,
            TagScheme::Nonblocking { collective },
            true,
            true,
        )
    }

    /// Blocking allreduce in an explicit tag namespace `ns` (an elastic
    /// view's epoch namespace): collective ids `ns` / `ns | 1`. Namespace 0
    /// is exactly [`RingSchedule::allreduce`], so a full-membership view at
    /// epoch 0 is wire-identical to the classic path.
    pub(crate) fn allreduce_ns(p: usize, me: usize, n: usize, bucket: usize, ns: u64) -> Self {
        Self::new(
            p,
            me,
            n,
            0,
            n,
            bucket,
            TagScheme::Blocking {
                reduce_id: ns,
                gather_id: ns | 1,
            },
            true,
            true,
        )
    }

    /// Abort the collective: jump the cursor straight to `Done` so no
    /// further ops are emitted. The elastic path cancels in-flight
    /// schedules before quiescing, so a stale handle poked after the drain
    /// cannot inject traffic from a dead membership epoch.
    pub(crate) fn cancel(&mut self) {
        self.stage = RingStage::Done;
    }

    /// Standalone reduce-scatter (id 2): after completion rank `i` holds
    /// the fully reduced chunk `(i + 1) mod p`.
    pub(crate) fn reduce_scatter(p: usize, me: usize, n: usize) -> Self {
        Self::new(
            p,
            me,
            n,
            0,
            n,
            n.max(1),
            TagScheme::Blocking {
                reduce_id: 2,
                gather_id: 2,
            },
            true,
            false,
        )
    }

    /// Standalone ring allgather (id 3): each rank contributes its own
    /// `chunk_bounds` chunk and receives everyone else's.
    pub(crate) fn allgather(p: usize, me: usize, n: usize) -> Self {
        Self::new(
            p,
            me,
            n,
            0,
            n,
            n.max(1),
            TagScheme::Blocking {
                reduce_id: 3,
                gather_id: 3,
            },
            false,
            true,
        )
    }

    /// This schedule's window of global chunk `c`, in buffer-local
    /// coordinates (`(0, 0)` when the chunk misses the window).
    fn window(&self, c: usize) -> (usize, usize) {
        // Division-free `chunk_bounds(self.total_len, self.p, c)`: the
        // first `rem` chunks get `base + 1` elements, the rest `base`.
        let cs = c * self.base + c.min(self.rem);
        let ce = cs + self.base + usize::from(c < self.rem);
        debug_assert_eq!((cs, ce), chunk_bounds(self.total_len, self.p, c));
        let lo = cs.max(self.win_start);
        let hi = ce.min(self.win_start + self.win_len);
        if lo < hi {
            (lo - self.win_start, hi - self.win_start)
        } else {
            (0, 0)
        }
    }

    /// Number of bucket segments in chunk `c`'s window.
    fn segs(&self, c: usize) -> usize {
        let (ws, we) = self.window(c);
        (we - ws).div_ceil(self.bucket)
    }

    /// Bounds of segment `seg` within chunk `c`'s window.
    fn seg_win(&self, c: usize, seg: usize) -> (usize, usize) {
        let (ws, we) = self.window(c);
        let start = ws + seg.saturating_mul(self.bucket);
        (start, we.min(start.saturating_add(self.bucket)))
    }

    /// The global chunk a stage operates on. The gather offset differs by
    /// one between the fused allreduce (whose gather step 0 consumes the
    /// reduce handoff) and the standalone allgather (whose step 0 consumes
    /// its own prime) — exactly the historical `offset` parameter.
    fn stage_chunk(&self, stage: RingStage) -> usize {
        let (p, me) = (self.p, self.me);
        // `x mod p` for `x < 2p`, division-free (step < p − 1 always).
        let wrap = |x: usize| if x >= p { x - p } else { x };
        match stage {
            RingStage::Prime { .. } => me,
            RingStage::Reduce { step, .. } => wrap(me + p - step - 1),
            RingStage::Gather { step, .. } => wrap(me + p - step - 1 + usize::from(self.do_reduce)),
            RingStage::Done => unreachable!("Done has no chunk"),
        }
    }

    /// Whether the sparse fast-forward applies: a flat (full-window)
    /// schedule over fewer elements than ranks, so chunks `rem..p` are all
    /// empty and the stage cursor can jump over the empty run in O(1)
    /// instead of visiting every empty step.
    fn sparse(&self) -> bool {
        self.base == 0 && self.win_start == 0 && self.win_len == self.total_len
    }

    /// From an empty chunk `c` at `step`, the step at which the next
    /// non-empty chunk appears (capped at the stage's last step
    /// `p − 2`). The stage chunk decreases by one per step, and the
    /// non-empty chunks are exactly `0..rem`, so the cursor next meets a
    /// non-empty chunk at `rem − 1`.
    fn sparse_jump(&self, step: usize, c: usize) -> usize {
        debug_assert!(self.sparse() && c >= self.rem);
        if self.rem == 0 {
            self.p - 2 // zero-length buffer: every chunk is empty
        } else {
            (step + (c + 1 - self.rem)).min(self.p - 2)
        }
    }

    /// Skip exhausted segment cursors and empty windows until the stage
    /// cursor rests on a real op (or `Done`).
    fn normalize(&mut self) {
        loop {
            let seg = match self.stage {
                RingStage::Prime { seg }
                | RingStage::Reduce { seg, .. }
                | RingStage::Gather { seg, .. } => seg,
                RingStage::Done => return,
            };
            let chunk = self.stage_chunk(self.stage);
            if seg < self.segs(chunk) {
                return;
            }
            // An exhausted cursor on an *empty* chunk (seg == 0) under a
            // sparse flat schedule means every chunk until `rem − 1`
            // reappears is also empty — jump the whole run at once instead
            // of iterating p − rem empty steps (O(p²) across ranks, fatal
            // at p = 27,648).
            let skip = seg == 0 && self.sparse();
            self.stage = match self.stage {
                RingStage::Prime { .. } => {
                    if self.do_reduce {
                        RingStage::Reduce { step: 0, seg: 0 }
                    } else {
                        RingStage::Gather { step: 0, seg: 0 }
                    }
                }
                RingStage::Reduce { step, .. } => {
                    if step < self.p - 2 {
                        RingStage::Reduce {
                            step: if skip {
                                self.sparse_jump(step, chunk)
                            } else {
                                step + 1
                            },
                            seg: 0,
                        }
                    } else if self.do_gather {
                        RingStage::Gather { step: 0, seg: 0 }
                    } else {
                        RingStage::Done
                    }
                }
                RingStage::Gather { step, .. } => {
                    if step < self.p - 2 {
                        RingStage::Gather {
                            step: if skip {
                                self.sparse_jump(step, chunk)
                            } else {
                                step + 1
                            },
                            seg: 0,
                        }
                    } else {
                        RingStage::Done
                    }
                }
                RingStage::Done => return,
            };
        }
    }
}

impl Schedule for RingSchedule {
    fn current(&self) -> Option<Op> {
        let right = if self.me + 1 == self.p {
            0
        } else {
            self.me + 1
        };
        let left = if self.me == 0 {
            self.p - 1
        } else {
            self.me - 1
        };
        let last = |step: usize| step == self.p - 2;
        match self.stage {
            RingStage::Done => None,
            RingStage::Prime { seg } => {
                let phase = if self.do_reduce {
                    Phase::Reduce
                } else {
                    Phase::Gather
                };
                Some(Op::Send {
                    to: right,
                    tag: self.tags.tag(phase, 0, seg),
                    win: self.seg_win(self.stage_chunk(self.stage), seg),
                })
            }
            RingStage::Reduce { step, seg } => {
                let (act, then) = if !last(step) {
                    (
                        RecvAct::FoldForward,
                        Disposal::Forward {
                            to: right,
                            tag: self.tags.tag(Phase::Reduce, step + 1, seg),
                        },
                    )
                } else if self.do_gather {
                    // The handoff: finish the chunk in the payload, land it,
                    // and forward it as the allgather's priming message.
                    (
                        RecvAct::FoldLand,
                        Disposal::Forward {
                            to: right,
                            tag: self.tags.tag(Phase::Gather, 0, seg),
                        },
                    )
                } else {
                    (RecvAct::FoldIntoBuf, Disposal::Release)
                };
                Some(Op::Recv {
                    from: left,
                    tag: self.tags.tag(Phase::Reduce, step, seg),
                    win: self.seg_win(self.stage_chunk(self.stage), seg),
                    act,
                    then,
                })
            }
            RingStage::Gather { step, seg } => {
                let then = if last(step) {
                    Disposal::Release
                } else {
                    Disposal::Forward {
                        to: right,
                        tag: self.tags.tag(Phase::Gather, step + 1, seg),
                    }
                };
                Some(Op::Recv {
                    from: left,
                    tag: self.tags.tag(Phase::Gather, step, seg),
                    win: self.seg_win(self.stage_chunk(self.stage), seg),
                    act: RecvAct::Copy,
                    then,
                })
            }
        }
    }

    fn advance(&mut self) {
        self.stage = match self.stage {
            RingStage::Prime { seg } => RingStage::Prime { seg: seg + 1 },
            RingStage::Reduce { step, seg } => RingStage::Reduce { step, seg: seg + 1 },
            RingStage::Gather { step, seg } => RingStage::Gather { step, seg: seg + 1 },
            RingStage::Done => RingStage::Done,
        };
        self.normalize();
    }
}

/// The largest power of two not exceeding `p`.
pub(crate) fn pow2_core(p: usize) -> usize {
    assert!(p > 0, "world size must be positive");
    1 << (usize::BITS - 1 - p.leading_zeros())
}

/// Virtual step ids of the non-power-of-two fold phases. They live far
/// outside the `0..log2(core)` range the core exchange steps occupy (and
/// under `tag_seg`'s 2¹² step cap), so fold tags never collide with core
/// tags.
const FOLD_PRE_STEP: usize = 0xE00;
const FOLD_POST_STEP: usize = 0xE01;

/// Cursor of the MPICH-style non-power-of-two fold wrapped around a
/// power-of-two core exchange (recursive doubling and Rabenseifner).
///
/// With `core = 2^⌊log2 p⌋` and `rem = p − core`, the first `2·rem` ranks
/// pair up: each even rank sends its buffer to its odd neighbour
/// (`PreSend`/`PreRecv`) and then sits out the core, receiving the final
/// result afterwards (`PostRecv`/`PostSend`). The `core` surviving ranks —
/// the odd halves of the pairs plus every rank ≥ `2·rem` — run the
/// power-of-two exchange under *virtual* ranks. For power-of-two worlds
/// `rem == 0` and every rank starts (and ends) in `Core`, byte-identical to
/// the historical schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FoldState {
    PreSend,
    PreRecv,
    Core,
    PostSend,
    PostRecv,
    Done,
}

/// Initial fold state and virtual rank of `me` in a `p`-rank world with a
/// `core`-rank power-of-two kernel. Folded-out ranks get a dummy vrank.
fn fold_entry(p: usize, me: usize, core: usize) -> (FoldState, usize) {
    let rem = p - core;
    if me < 2 * rem {
        if me.is_multiple_of(2) {
            (FoldState::PreSend, usize::MAX)
        } else {
            (FoldState::PreRecv, me / 2)
        }
    } else {
        (FoldState::Core, me - rem)
    }
}

/// The real rank holding virtual rank `v` (inverse of [`fold_entry`]).
fn fold_real_rank(rem: usize, v: usize) -> usize {
    if v < rem {
        2 * v + 1
    } else {
        v + rem
    }
}

/// Recursive-doubling allreduce (id 4): `log2 core` full-buffer exchanges,
/// send-then-receive per step, wrapped in the [`FoldState`] pre/post fold
/// for non-power-of-two worlds. Sends even empty buffers unconditionally,
/// like the historical implementation.
pub(crate) struct RdSchedule {
    me: usize,
    n: usize,
    core: usize,
    rem: usize,
    vrank: usize,
    dist: usize,
    step: usize,
    recv_pending: bool,
    state: FoldState,
}

impl RdSchedule {
    pub(crate) fn new(p: usize, me: usize, n: usize) -> Self {
        let core = pow2_core(p);
        let (state, vrank) = fold_entry(p, me, core);
        RdSchedule {
            me,
            n,
            core,
            rem: p - core,
            vrank,
            dist: 1,
            step: 0,
            recv_pending: false,
            state,
        }
    }
}

impl Schedule for RdSchedule {
    fn current(&self) -> Option<Op> {
        let win = (0, self.n);
        match self.state {
            FoldState::Done => None,
            FoldState::PreSend => Some(Op::Send {
                to: self.me + 1,
                tag: tag_seg(4, FOLD_PRE_STEP, 0),
                win,
            }),
            FoldState::PreRecv => Some(Op::Recv {
                from: self.me - 1,
                tag: tag_seg(4, FOLD_PRE_STEP, 0),
                win,
                act: RecvAct::FoldIntoBuf,
                then: Disposal::Release,
            }),
            FoldState::PostSend => Some(Op::Send {
                to: self.me - 1,
                tag: tag_seg(4, FOLD_POST_STEP, 0),
                win,
            }),
            FoldState::PostRecv => Some(Op::Recv {
                from: self.me + 1,
                tag: tag_seg(4, FOLD_POST_STEP, 0),
                win,
                act: RecvAct::Copy,
                then: Disposal::Release,
            }),
            FoldState::Core => {
                if self.dist >= self.core {
                    return None; // p == 1 only; larger cores exit via advance
                }
                let peer = fold_real_rank(self.rem, self.vrank ^ self.dist);
                let t = tag_seg(4, self.step, 0);
                Some(if self.recv_pending {
                    Op::Recv {
                        from: peer,
                        tag: t,
                        win,
                        act: RecvAct::FoldIntoBuf,
                        then: Disposal::Release,
                    }
                } else {
                    Op::Send {
                        to: peer,
                        tag: t,
                        win,
                    }
                })
            }
        }
    }

    fn advance(&mut self) {
        match self.state {
            FoldState::PreSend => self.state = FoldState::PostRecv,
            FoldState::PreRecv => self.state = FoldState::Core,
            FoldState::PostSend | FoldState::PostRecv | FoldState::Done => {
                self.state = FoldState::Done;
            }
            FoldState::Core => {
                if self.recv_pending {
                    self.recv_pending = false;
                    self.dist <<= 1;
                    self.step += 1;
                    if self.dist >= self.core {
                        self.state = if self.me < 2 * self.rem {
                            FoldState::PostSend
                        } else {
                            FoldState::Done
                        };
                    }
                } else {
                    self.recv_pending = true;
                }
            }
        }
    }
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter (id 5) then
/// recursive-doubling allgather (id 6) across the power-of-two core, with
/// the [`FoldState`] pre/post fold absorbing the `p − core` extra ranks of
/// non-power-of-two worlds. The step counter runs continuously across the
/// phase boundary — the doubling phase's first tag is `tag(6, log2 core)` —
/// exactly as the historical implementation numbered it.
pub(crate) struct RabenseifnerSchedule {
    me: usize,
    n: usize,
    core: usize,
    rem: usize,
    vrank: usize,
    lo: usize,
    hi: usize,
    dist: usize,
    step: usize,
    halving: bool,
    recv_pending: bool,
    state: FoldState,
}

impl RabenseifnerSchedule {
    pub(crate) fn new(p: usize, me: usize, n: usize) -> Self {
        let core = pow2_core(p);
        assert!(
            n.is_multiple_of(core),
            "buffer length must be divisible by the power-of-two core of the world size"
        );
        let (state, vrank) = fold_entry(p, me, core);
        RabenseifnerSchedule {
            me,
            n,
            core,
            rem: p - core,
            vrank,
            lo: 0,
            hi: n,
            // core == 1 starts (and therefore ends) in the doubling phase.
            dist: if core == 1 { 1 } else { core / 2 },
            step: 0,
            halving: core > 1,
            recv_pending: false,
            state,
        }
    }

    /// The halving step's window split: `(keep, send)` halves of `[lo, hi)`.
    fn halves(&self) -> ((usize, usize), (usize, usize)) {
        let mid = self.lo + (self.hi - self.lo) / 2;
        if self.vrank & self.dist == 0 {
            ((self.lo, mid), (mid, self.hi))
        } else {
            ((mid, self.hi), (self.lo, mid))
        }
    }

    /// The doubling step's peer window (the mirror of ours at this level).
    fn peer_window(&self) -> (usize, usize) {
        let window = self.hi - self.lo;
        if self.vrank & self.dist == 0 {
            (self.lo + window, self.hi + window)
        } else {
            (self.lo - window, self.hi - window)
        }
    }
}

impl Schedule for RabenseifnerSchedule {
    fn current(&self) -> Option<Op> {
        match self.state {
            FoldState::Done => return None,
            FoldState::PreSend => {
                return Some(Op::Send {
                    to: self.me + 1,
                    tag: tag_seg(5, FOLD_PRE_STEP, 0),
                    win: (0, self.n),
                });
            }
            FoldState::PreRecv => {
                return Some(Op::Recv {
                    from: self.me - 1,
                    tag: tag_seg(5, FOLD_PRE_STEP, 0),
                    win: (0, self.n),
                    act: RecvAct::FoldIntoBuf,
                    then: Disposal::Release,
                });
            }
            FoldState::PostSend => {
                return Some(Op::Send {
                    to: self.me - 1,
                    tag: tag_seg(6, FOLD_POST_STEP, 0),
                    win: (0, self.n),
                });
            }
            FoldState::PostRecv => {
                return Some(Op::Recv {
                    from: self.me + 1,
                    tag: tag_seg(6, FOLD_POST_STEP, 0),
                    win: (0, self.n),
                    act: RecvAct::Copy,
                    then: Disposal::Release,
                });
            }
            FoldState::Core => {}
        }
        if self.halving {
            let peer = fold_real_rank(self.rem, self.vrank ^ self.dist);
            let t = tag_seg(5, self.step, 0);
            let (keep, send) = self.halves();
            Some(if self.recv_pending {
                Op::Recv {
                    from: peer,
                    tag: t,
                    win: keep,
                    act: RecvAct::FoldIntoBuf,
                    then: Disposal::Release,
                }
            } else {
                Op::Send {
                    to: peer,
                    tag: t,
                    win: send,
                }
            })
        } else {
            if self.dist >= self.core {
                return None; // p == 1 only; larger cores exit via advance
            }
            let peer = fold_real_rank(self.rem, self.vrank ^ self.dist);
            let t = tag_seg(6, self.step, 0);
            Some(if self.recv_pending {
                Op::Recv {
                    from: peer,
                    tag: t,
                    win: self.peer_window(),
                    act: RecvAct::Copy,
                    then: Disposal::Release,
                }
            } else {
                Op::Send {
                    to: peer,
                    tag: t,
                    win: (self.lo, self.hi),
                }
            })
        }
    }

    fn advance(&mut self) {
        match self.state {
            FoldState::PreSend => {
                self.state = FoldState::PostRecv;
                return;
            }
            FoldState::PreRecv => {
                self.state = FoldState::Core;
                return;
            }
            FoldState::PostSend | FoldState::PostRecv | FoldState::Done => {
                self.state = FoldState::Done;
                return;
            }
            FoldState::Core => {}
        }
        if !self.recv_pending {
            self.recv_pending = true;
            return;
        }
        self.recv_pending = false;
        self.step += 1;
        if self.halving {
            let (keep, _) = self.halves();
            (self.lo, self.hi) = keep;
            self.dist /= 2;
            if self.dist == 0 {
                self.halving = false;
                self.dist = 1;
            }
        } else {
            let (plo, phi) = self.peer_window();
            self.lo = self.lo.min(plo);
            self.hi = self.hi.max(phi);
            self.dist <<= 1;
            if self.dist >= self.core {
                self.state = if self.me < 2 * self.rem {
                    FoldState::PostSend
                } else {
                    FoldState::Done
                };
            }
        }
    }
}

/// Cursor of a [`BroadcastSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BcastState {
    /// Waiting for the parent's message at tree edge `mask`.
    Recv {
        mask: usize,
    },
    /// Sending to the child at tree edge `mask` (descending masks).
    Send {
        mask: usize,
    },
    Done,
}

/// Binomial-tree broadcast over a fixed-size buffer (`binomial_broadcast_into`,
/// historical id 9; the tree allreduce reuses it with its own id). A rank
/// receives at its lowest set (virtual-rank) bit, then forwards to children
/// at all smaller masks.
pub(crate) struct BroadcastSchedule {
    p: usize,
    root: usize,
    vrank: usize,
    n: usize,
    tag_id: u64,
    state: BcastState,
}

impl BroadcastSchedule {
    pub(crate) fn new(p: usize, me: usize, n: usize, root: usize, tag_id: u64) -> Self {
        let vrank = (me + p - root) % p;
        let state = if p == 1 {
            BcastState::Done
        } else if vrank == 0 {
            // Root: start sending at the largest tree edge below p.
            let mut mask = 1usize;
            while mask < p {
                mask <<= 1;
            }
            BcastState::Send { mask: mask >> 1 }
        } else {
            BcastState::Recv {
                mask: vrank & vrank.wrapping_neg(), // lowest set bit
            }
        };
        let mut s = BroadcastSchedule {
            p,
            root,
            vrank,
            n,
            tag_id,
            state,
        };
        s.normalize();
        s
    }

    /// Skip send edges whose child falls outside the world.
    fn normalize(&mut self) {
        while let BcastState::Send { mask } = self.state {
            if mask == 0 {
                self.state = BcastState::Done;
            } else if self.vrank + mask < self.p {
                return;
            } else {
                self.state = BcastState::Send { mask: mask >> 1 };
            }
        }
    }
}

impl Schedule for BroadcastSchedule {
    fn current(&self) -> Option<Op> {
        match self.state {
            BcastState::Done => None,
            BcastState::Recv { mask } => {
                let parent = (self.vrank - mask + self.root) % self.p;
                Some(Op::Recv {
                    from: parent,
                    tag: tag_seg(self.tag_id, mask.trailing_zeros() as usize, 0),
                    win: (0, self.n),
                    act: RecvAct::Copy,
                    then: Disposal::Release,
                })
            }
            BcastState::Send { mask } => {
                let child = (self.vrank + mask + self.root) % self.p;
                Some(Op::Send {
                    to: child,
                    tag: tag_seg(self.tag_id, mask.trailing_zeros() as usize, 0),
                    win: (0, self.n),
                })
            }
        }
    }

    fn advance(&mut self) {
        self.state = match self.state {
            BcastState::Recv { mask } | BcastState::Send { mask } => {
                BcastState::Send { mask: mask >> 1 }
            }
            BcastState::Done => BcastState::Done,
        };
        self.normalize();
    }
}

/// Cursor of a [`ReduceSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RedState {
    /// Receiving from the child at tree edge `mask` (ascending masks).
    Recv {
        mask: usize,
    },
    /// Sending the partial to the parent at tree edge `mask`, then done.
    SendParent {
        mask: usize,
    },
    Done,
}

/// Binomial-tree reduce to `root` (id 8): ascending masks; a rank folds in
/// its children's partials, then sends its own to its parent and exits.
pub(crate) struct ReduceSchedule {
    p: usize,
    root: usize,
    vrank: usize,
    n: usize,
    state: RedState,
}

impl ReduceSchedule {
    pub(crate) fn new(p: usize, me: usize, n: usize, root: usize) -> Self {
        let vrank = (me + p - root) % p;
        let mut s = ReduceSchedule {
            p,
            root,
            vrank,
            n,
            state: if p == 1 {
                RedState::Done
            } else {
                RedState::Recv { mask: 1 }
            },
        };
        s.normalize();
        s
    }

    /// Settle the cursor on the next real op: the parent send at this
    /// rank's set bit, a child receive at a smaller mask, or done.
    fn normalize(&mut self) {
        while let RedState::Recv { mask } = self.state {
            if mask >= self.p {
                self.state = RedState::Done;
            } else if self.vrank & mask != 0 {
                self.state = RedState::SendParent { mask };
            } else if self.vrank + mask < self.p {
                return;
            } else {
                self.state = RedState::Recv { mask: mask << 1 };
            }
        }
    }
}

impl Schedule for ReduceSchedule {
    fn current(&self) -> Option<Op> {
        match self.state {
            RedState::Done => None,
            RedState::Recv { mask } => {
                let child = (self.vrank + mask + self.root) % self.p;
                Some(Op::Recv {
                    from: child,
                    tag: tag_seg(8, mask.trailing_zeros() as usize, 0),
                    win: (0, self.n),
                    act: RecvAct::FoldIntoBuf,
                    then: Disposal::Release,
                })
            }
            RedState::SendParent { mask } => {
                let parent = ((self.vrank & !mask) + self.root) % self.p;
                Some(Op::Send {
                    to: parent,
                    tag: tag_seg(8, mask.trailing_zeros() as usize, 0),
                    win: (0, self.n),
                })
            }
        }
    }

    fn advance(&mut self) {
        self.state = match self.state {
            RedState::Recv { mask } => RedState::Recv { mask: mask << 1 },
            RedState::SendParent { .. } | RedState::Done => RedState::Done,
        };
        self.normalize();
    }
}

/// Cursor of a [`HierarchicalSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HState {
    /// Member: send the local buffer up to the group leader.
    SendUp,
    /// Member: receive the result back from the leader.
    RecvDown,
    /// Leader: fold in lane `l`'s contribution.
    RecvUp {
        l: usize,
    },
    /// Leader ring reduce-scatter step `s` (send half, then recv half).
    Rs {
        s: usize,
        recv: bool,
    },
    /// Leader ring allgather step `s`.
    Ag {
        s: usize,
        recv: bool,
    },
    /// Leader: broadcast the result down to lane `l`.
    SendDown {
        l: usize,
    },
    Done,
}

/// Two-level allreduce (ids 13–16) mirroring Summit's NVLink-inside,
/// InfiniBand-between structure: linear reduce to each group leader, ring
/// reduce-scatter + allgather over the leaders (chunked by group id), then
/// linear broadcast back into each group. All ops are unconditional — empty
/// chunk windows still send empty messages, like the historical code.
pub(crate) struct HierarchicalSchedule {
    n: usize,
    group_size: usize,
    groups: usize,
    gid: usize,
    leader: usize,
    lane: usize,
    right_leader: usize,
    left_leader: usize,
    state: HState,
}

impl HierarchicalSchedule {
    pub(crate) fn new(p: usize, me: usize, n: usize, group_size: usize) -> Self {
        assert!(
            group_size > 0 && p.is_multiple_of(group_size),
            "world must tile into groups"
        );
        let leader = me - me % group_size;
        let lane = me - leader;
        let groups = p / group_size;
        let gid = me / group_size;
        let mut s = HierarchicalSchedule {
            n,
            group_size,
            groups,
            gid,
            leader,
            lane,
            right_leader: ((gid + 1) % groups) * group_size,
            left_leader: ((gid + groups - 1) % groups) * group_size,
            state: if lane == 0 {
                HState::RecvUp { l: 1 }
            } else {
                HState::SendUp
            },
        };
        s.normalize();
        s
    }

    /// Leader-ring chunk bounds: the buffer partitioned over the *groups*.
    fn gbounds(&self, chunk: usize) -> (usize, usize) {
        chunk_bounds(self.n, self.groups, chunk)
    }

    /// Settle the cursor on the next real op, skipping phases this rank
    /// does not participate in (single-member groups, single-group worlds).
    fn normalize(&mut self) {
        loop {
            match self.state {
                HState::RecvUp { l } if l >= self.group_size => {
                    self.state = if self.groups > 1 {
                        HState::Rs { s: 0, recv: false }
                    } else {
                        HState::SendDown { l: 1 }
                    };
                }
                HState::Rs { s, .. } if s >= self.groups - 1 => {
                    self.state = HState::Ag { s: 0, recv: false };
                }
                HState::Ag { s, .. } if s >= self.groups - 1 => {
                    self.state = HState::SendDown { l: 1 };
                }
                HState::SendDown { l } if l >= self.group_size => {
                    self.state = HState::Done;
                }
                _ => return,
            }
        }
    }
}

impl Schedule for HierarchicalSchedule {
    fn current(&self) -> Option<Op> {
        let full = (0, self.n);
        match self.state {
            HState::Done => None,
            HState::SendUp => Some(Op::Send {
                to: self.leader,
                tag: tag_seg(13, self.lane, 0),
                win: full,
            }),
            HState::RecvDown => Some(Op::Recv {
                from: self.leader,
                tag: tag_seg(16, self.lane, 0),
                win: full,
                act: RecvAct::Copy,
                then: Disposal::Release,
            }),
            HState::RecvUp { l } => Some(Op::Recv {
                from: self.leader + l,
                tag: tag_seg(13, l, 0),
                win: full,
                act: RecvAct::FoldIntoBuf,
                then: Disposal::Release,
            }),
            HState::Rs { s, recv: false } => Some(Op::Send {
                to: self.right_leader,
                tag: tag_seg(14, s, 0),
                win: self.gbounds((self.gid + self.groups - s) % self.groups),
            }),
            HState::Rs { s, recv: true } => Some(Op::Recv {
                from: self.left_leader,
                tag: tag_seg(14, s, 0),
                win: self.gbounds((self.gid + self.groups - s - 1) % self.groups),
                act: RecvAct::FoldIntoBuf,
                then: Disposal::Release,
            }),
            HState::Ag { s, recv: false } => Some(Op::Send {
                to: self.right_leader,
                tag: tag_seg(15, s, 0),
                win: self.gbounds((self.gid + 1 + self.groups - s) % self.groups),
            }),
            HState::Ag { s, recv: true } => Some(Op::Recv {
                from: self.left_leader,
                tag: tag_seg(15, s, 0),
                win: self.gbounds((self.gid + self.groups - s) % self.groups),
                act: RecvAct::Copy,
                then: Disposal::Release,
            }),
            HState::SendDown { l } => Some(Op::Send {
                to: self.leader + l,
                tag: tag_seg(16, l, 0),
                win: full,
            }),
        }
    }

    fn advance(&mut self) {
        self.state = match self.state {
            HState::SendUp => HState::RecvDown,
            HState::RecvDown => HState::Done,
            HState::RecvUp { l } => HState::RecvUp { l: l + 1 },
            HState::Rs { s, recv: false } => HState::Rs { s, recv: true },
            HState::Rs { s, recv: true } => HState::Rs {
                s: s + 1,
                recv: false,
            },
            HState::Ag { s, recv: false } => HState::Ag { s, recv: true },
            HState::Ag { s, recv: true } => HState::Ag {
                s: s + 1,
                recv: false,
            },
            HState::SendDown { l } => HState::SendDown { l: l + 1 },
            HState::Done => HState::Done,
        };
        self.normalize();
    }
}

/// Personalized all-to-all (id 10) over owned slot vectors: pairwise
/// exchange (`peer = me ^ s`) for power-of-two worlds, the shifted-ring
/// schedule (`send to me+s, recv from me-s`) otherwise.
///
/// Uses a `2p`-entry slot array: sends draw from `slots[0..p]` (the
/// outgoing buffers) and receives land in `slots[p..2p]`, because on the
/// shifted-ring schedule step `p - s` sends to the rank step `s` received
/// from — in-place slots would send received data instead of this rank's
/// contribution. Slot `me` is left for the wrapper to move across.
pub(crate) struct AlltoallSchedule {
    p: usize,
    me: usize,
    s: usize,
    recv_pending: bool,
}

impl AlltoallSchedule {
    pub(crate) fn new(p: usize, me: usize) -> Self {
        AlltoallSchedule {
            p,
            me,
            s: 1,
            recv_pending: false,
        }
    }
}

impl Schedule for AlltoallSchedule {
    fn current(&self) -> Option<Op> {
        if self.s >= self.p {
            return None;
        }
        let t = tag_seg(10, self.s, 0);
        Some(if self.p.is_power_of_two() {
            let peer = self.me ^ self.s;
            if self.recv_pending {
                Op::RecvSlot {
                    from: peer,
                    tag: t,
                    slot: self.p + peer,
                }
            } else {
                Op::SendSlot {
                    to: peer,
                    tag: t,
                    slot: peer,
                }
            }
        } else if self.recv_pending {
            let from = (self.me + self.p - self.s) % self.p;
            Op::RecvSlot {
                from,
                tag: t,
                slot: self.p + from,
            }
        } else {
            let to = (self.me + self.s) % self.p;
            Op::SendSlot {
                to,
                tag: t,
                slot: to,
            }
        })
    }

    fn advance(&mut self) {
        if self.recv_pending {
            self.recv_pending = false;
            self.s += 1;
        } else {
            self.recv_pending = true;
        }
    }
}

/// Small-message payloads at or below this many bytes per block route
/// [`Collective::Alltoall`] through the Bruck log-p schedule instead of the
/// pairwise exchange — the MPICH small-message switch. Pairwise moves each
/// block once but costs `p − 1` messages per rank (7.6×10⁸ total at full
/// Summit); Bruck sends each block `⌈lg p⌉` times but only `⌈lg p⌉`
/// messages per rank, which is what makes the full machine simulable and
/// is the latency-optimal choice for real small-block exchanges.
pub(crate) const BRUCK_MAX_BYTES: usize = 256;

/// Bruck all-to-all (id 10, segment 1 tags): `⌈lg p⌉` rounds over the
/// `p`-entry work array (`slots[i]` starts as the block for rank
/// `(me + i) mod p` — the caller's local rotation). Round `k` ships every
/// slot whose index has bit `k` set to rank `me + 2^k` as one combined
/// message and refills the same positions from rank `me − 2^k`; after the
/// last round `slots[i]` holds the block *from* rank `(me − i) mod p` and
/// the caller un-rotates. Works for any `p`, power of two or not.
pub(crate) struct BruckAlltoallSchedule {
    p: usize,
    me: usize,
    k: u32,
    recv_pending: bool,
}

impl BruckAlltoallSchedule {
    pub(crate) fn new(p: usize, me: usize) -> Self {
        BruckAlltoallSchedule {
            p,
            me,
            k: 0,
            recv_pending: false,
        }
    }
}

impl Schedule for BruckAlltoallSchedule {
    fn current(&self) -> Option<Op> {
        let d = 1usize << self.k;
        if d >= self.p {
            return None;
        }
        let t = tag_seg(10, self.k as usize, 1);
        Some(if self.recv_pending {
            Op::RecvScatter {
                from: (self.me + self.p - d) % self.p,
                tag: t,
                bit: self.k,
            }
        } else {
            Op::SendGather {
                to: (self.me + d) % self.p,
                tag: t,
                bit: self.k,
            }
        })
    }

    fn advance(&mut self) {
        if self.recv_pending {
            self.recv_pending = false;
            self.k += 1;
        } else {
            self.recv_pending = true;
        }
    }
}

/// Scatter from `root` (id 11): the root sends slot `dst` to each rank in
/// ascending order; every other rank receives its own slot.
pub(crate) struct ScatterSchedule {
    p: usize,
    me: usize,
    root: usize,
    /// Root: next destination; non-root: 0 = pending receive, `p` = done.
    cursor: usize,
}

impl ScatterSchedule {
    pub(crate) fn new(p: usize, me: usize, root: usize) -> Self {
        let mut s = ScatterSchedule {
            p,
            me,
            root,
            cursor: 0,
        };
        s.skip_root();
        s
    }

    fn skip_root(&mut self) {
        if self.me == self.root && self.cursor == self.root {
            self.cursor += 1;
        }
    }
}

impl Schedule for ScatterSchedule {
    fn current(&self) -> Option<Op> {
        if self.me == self.root {
            (self.cursor < self.p).then_some(Op::SendSlot {
                to: self.cursor,
                tag: tag_seg(11, self.cursor, 0),
                slot: self.cursor,
            })
        } else {
            (self.cursor == 0).then_some(Op::RecvSlot {
                from: self.root,
                tag: tag_seg(11, self.me, 0),
                slot: self.me,
            })
        }
    }

    fn advance(&mut self) {
        self.cursor = if self.me == self.root {
            self.cursor + 1
        } else {
            self.p
        };
        self.skip_root();
    }
}

/// Gather to `root` (id 12): every rank sends its slot to the root, which
/// receives them in ascending source order.
pub(crate) struct GatherSchedule {
    p: usize,
    me: usize,
    root: usize,
    /// Root: next source; non-root: 0 = pending send, `p` = done.
    cursor: usize,
}

impl GatherSchedule {
    pub(crate) fn new(p: usize, me: usize, root: usize) -> Self {
        let mut s = GatherSchedule {
            p,
            me,
            root,
            cursor: 0,
        };
        s.skip_root();
        s
    }

    fn skip_root(&mut self) {
        if self.me == self.root && self.cursor == self.root {
            self.cursor += 1;
        }
    }
}

impl Schedule for GatherSchedule {
    fn current(&self) -> Option<Op> {
        if self.me == self.root {
            (self.cursor < self.p).then_some(Op::RecvSlot {
                from: self.cursor,
                tag: tag_seg(12, self.cursor, 0),
                slot: self.cursor,
            })
        } else {
            (self.cursor == 0).then_some(Op::SendSlot {
                to: self.root,
                tag: tag_seg(12, self.me, 0),
                slot: self.me,
            })
        }
    }

    fn advance(&mut self) {
        self.cursor = if self.me == self.root {
            self.cursor + 1
        } else {
            self.p
        };
        self.skip_root();
    }
}

// ---------------------------------------------------------------------------
// Modeled surface: the same schedules against per-rank virtual clocks.

/// Which collective to run on the model transport. Mirrors the executable
/// entry points one to one; `elems` in [`simulate`] plays the role each
/// wrapper's buffer length plays (per-slot length for the personalized
/// collectives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    /// `ring_allreduce_bucketed` (use `usize::MAX` for the flat path).
    RingAllreduce { bucket_elems: usize },
    /// `reduce_scatter`.
    ReduceScatter,
    /// `ring_allgather`.
    RingAllgather,
    /// `recursive_doubling_allreduce` (non-power-of-two worlds fold into
    /// a power-of-two core).
    RecursiveDoubling,
    /// `rabenseifner_allreduce` (requires `pow2_core(p) | elems`).
    Rabenseifner,
    /// `binomial_broadcast_into`.
    BinomialBroadcast { root: usize },
    /// `binomial_reduce`.
    BinomialReduce { root: usize },
    /// `tree_allreduce` (reduce to 0 then broadcast from 0).
    TreeAllreduce,
    /// `hierarchical_allreduce`.
    HierarchicalAllreduce { group_size: usize },
    /// `alltoall` with `elems` elements per destination (blocks at or
    /// below [`BRUCK_MAX_BYTES`] take the Bruck log-p schedule, larger
    /// ones the direct pairwise exchange).
    Alltoall,
    /// `scatter` with `elems` elements per chunk.
    Scatter { root: usize },
    /// `gather` with `elems` elements per rank.
    Gather { root: usize },
}

/// Result of a modeled run: per-rank counters and virtual completion times.
///
/// `per_rank_messages` / `per_rank_bytes` count exactly what each rank's
/// executed twin would send (including zero-length messages and forwarded
/// ring payloads), so they can be compared for strict equality against
/// [`Rank::traffic`](crate::world::Rank::traffic) counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// Messages sent by each rank.
    pub per_rank_messages: Vec<u64>,
    /// Payload bytes sent by each rank (4 bytes per f32 element).
    pub per_rank_bytes: Vec<u64>,
    /// Virtual clock of each rank at its last operation, in seconds.
    pub per_rank_seconds: Vec<f64>,
    /// Predicted collective completion time: the maximum per-rank clock.
    pub time_seconds: f64,
}

impl ModelReport {
    /// Total messages across all ranks.
    pub fn total_messages(&self) -> u64 {
        self.per_rank_messages.iter().sum()
    }

    /// Total payload bytes across all ranks.
    pub fn total_bytes(&self) -> u64 {
        self.per_rank_bytes.iter().sum()
    }
}

/// A concrete schedule behind enum dispatch. The simulators drive ~10⁸
/// cursor reads per full-machine collective; a `match` on a concrete enum
/// inlines where `Box<dyn Schedule>` virtual calls cannot.
pub(crate) enum AnySchedule {
    Ring(RingSchedule),
    Rd(RdSchedule),
    Rab(RabenseifnerSchedule),
    Bcast(BroadcastSchedule),
    Reduce(ReduceSchedule),
    Hier(HierarchicalSchedule),
    A2a(AlltoallSchedule),
    Bruck(BruckAlltoallSchedule),
    Scatter(ScatterSchedule),
    Gather(GatherSchedule),
}

impl Schedule for AnySchedule {
    #[inline]
    fn current(&self) -> Option<Op> {
        match self {
            AnySchedule::Ring(s) => s.current(),
            AnySchedule::Rd(s) => s.current(),
            AnySchedule::Rab(s) => s.current(),
            AnySchedule::Bcast(s) => s.current(),
            AnySchedule::Reduce(s) => s.current(),
            AnySchedule::Hier(s) => s.current(),
            AnySchedule::A2a(s) => s.current(),
            AnySchedule::Bruck(s) => s.current(),
            AnySchedule::Scatter(s) => s.current(),
            AnySchedule::Gather(s) => s.current(),
        }
    }

    #[inline]
    fn advance(&mut self) {
        match self {
            AnySchedule::Ring(s) => s.advance(),
            AnySchedule::Rd(s) => s.advance(),
            AnySchedule::Rab(s) => s.advance(),
            AnySchedule::Bcast(s) => s.advance(),
            AnySchedule::Reduce(s) => s.advance(),
            AnySchedule::Hier(s) => s.advance(),
            AnySchedule::A2a(s) => s.advance(),
            AnySchedule::Bruck(s) => s.advance(),
            AnySchedule::Scatter(s) => s.advance(),
            AnySchedule::Gather(s) => s.advance(),
        }
    }
}

/// The per-rank schedule chain of a collective (multi-phase collectives,
/// like the tree allreduce, run their phases back to back).
pub(crate) fn phases(c: Collective, p: usize, me: usize, elems: usize) -> Vec<AnySchedule> {
    match c {
        Collective::RingAllreduce { bucket_elems } => vec![AnySchedule::Ring(
            RingSchedule::allreduce(p, me, elems, bucket_elems.max(1)),
        )],
        Collective::ReduceScatter => {
            vec![AnySchedule::Ring(RingSchedule::reduce_scatter(
                p, me, elems,
            ))]
        }
        Collective::RingAllgather => vec![AnySchedule::Ring(RingSchedule::allgather(p, me, elems))],
        Collective::RecursiveDoubling => vec![AnySchedule::Rd(RdSchedule::new(p, me, elems))],
        Collective::Rabenseifner => vec![AnySchedule::Rab(RabenseifnerSchedule::new(p, me, elems))],
        Collective::BinomialBroadcast { root } => {
            vec![AnySchedule::Bcast(BroadcastSchedule::new(
                p, me, elems, root, 9,
            ))]
        }
        Collective::BinomialReduce { root } => {
            vec![AnySchedule::Reduce(ReduceSchedule::new(p, me, elems, root))]
        }
        Collective::TreeAllreduce => vec![
            AnySchedule::Reduce(ReduceSchedule::new(p, me, elems, 0)),
            AnySchedule::Bcast(BroadcastSchedule::new(p, me, elems, 0, 9)),
        ],
        Collective::HierarchicalAllreduce { group_size } => {
            vec![AnySchedule::Hier(HierarchicalSchedule::new(
                p, me, elems, group_size,
            ))]
        }
        Collective::Alltoall => {
            if elems * 4 <= BRUCK_MAX_BYTES {
                vec![AnySchedule::Bruck(BruckAlltoallSchedule::new(p, me))]
            } else {
                vec![AnySchedule::A2a(AlltoallSchedule::new(p, me))]
            }
        }
        Collective::Scatter { root } => {
            vec![AnySchedule::Scatter(ScatterSchedule::new(p, me, root))]
        }
        Collective::Gather { root } => vec![AnySchedule::Gather(GatherSchedule::new(p, me, root))],
    }
}

/// Initial slot lengths for the personalized collectives (empty for the
/// windowed ones).
pub(crate) fn slots_for(c: Collective, p: usize, me: usize, elems: usize) -> Vec<usize> {
    match c {
        Collective::Alltoall => {
            if elems * 4 <= BRUCK_MAX_BYTES {
                // Bruck work array: every slot starts holding one block.
                vec![elems; p]
            } else {
                // Send half populated, receive half empty (see AlltoallSchedule).
                let mut v = vec![elems; p];
                v.extend(std::iter::repeat_n(0, p));
                v
            }
        }
        Collective::Scatter { root } => {
            if me == root {
                vec![elems; p]
            } else {
                vec![0; p]
            }
        }
        Collective::Gather { .. } => {
            let mut v = vec![0; p];
            v[me] = elems;
            v
        }
        _ => Vec::new(),
    }
}

/// In-flight modeled messages keyed `(from, to, tag)`, each a FIFO of
/// `(payload elements, ready time)` pairs.
type InFlight = HashMap<(usize, usize, u64), VecDeque<(usize, f64)>>;

/// The retired per-step polling simulator, kept as the **oracle** for the
/// event-driven engine in [`crate::sim`]: every rank is scanned every
/// iteration (O(p) per step), so it only scales to small worlds, but its
/// semantics — fire-and-forget sends becoming receivable at
/// `clock + α + m/β`, receives completing at `max(local clock, ready)`,
/// per-`(src, dst, tag)` FIFO — define what the fast engine must reproduce
/// *bit-for-bit*. The `sim_equivalence` suite pins `sim::simulate` against
/// this function (identical `f64` virtual times, identical per-rank
/// message/byte counts) for all 12 collectives.
///
/// # Panics
/// Panics if `p == 0`, on each algorithm's own world-shape requirements,
/// or if the schedules deadlock (a schedule bug, not a data condition).
pub fn simulate_reference(
    collective: Collective,
    p: usize,
    elems: usize,
    link: LinkModel,
) -> ModelReport {
    assert!(p > 0, "world size must be positive");
    let mut scheds: Vec<Vec<AnySchedule>> =
        (0..p).map(|me| phases(collective, p, me, elems)).collect();
    let mut slot_len: Vec<Vec<usize>> = (0..p)
        .map(|me| slots_for(collective, p, me, elems))
        .collect();
    let mut clock = vec![0.0f64; p];
    let mut messages = vec![0u64; p];
    let mut bytes = vec![0u64; p];
    // In-flight messages keyed (from, to, tag); per-key FIFO order matches
    // the channel transport's per-(source, tag) ordering guarantee.
    let mut in_flight: InFlight = HashMap::new();

    // A send is fire-and-forget: the sender's clock does not advance (the
    // textbook α–β models charge the transfer to the critical path through
    // the receiver), the message becomes receivable at `clock + α + m/β`.
    let post = |me: usize,
                to: usize,
                tag: u64,
                len: usize,
                clock: &[f64],
                messages: &mut [u64],
                bytes: &mut [u64],
                in_flight: &mut InFlight| {
        let ready = clock[me] + link.transfer_time((len * 4) as f64);
        in_flight
            .entry((me, to, tag))
            .or_default()
            .push_back((len, ready));
        messages[me] += 1;
        bytes[me] += (len * 4) as u64;
    };

    loop {
        let mut progressed = false;
        let mut all_done = true;
        for me in 0..p {
            while let Some(sched) = scheds[me].first_mut() {
                let Some(op) = sched.current() else {
                    scheds[me].remove(0);
                    continue;
                };
                match op {
                    Op::Send { to, tag, win } => {
                        post(
                            me,
                            to,
                            tag,
                            win.1 - win.0,
                            &clock,
                            &mut messages,
                            &mut bytes,
                            &mut in_flight,
                        );
                    }
                    Op::SendSlot { to, tag, slot } => {
                        let len = std::mem::take(&mut slot_len[me][slot]);
                        post(
                            me,
                            to,
                            tag,
                            len,
                            &clock,
                            &mut messages,
                            &mut bytes,
                            &mut in_flight,
                        );
                    }
                    Op::Recv {
                        from, tag, then, ..
                    } => {
                        let Some((len, ready)) = in_flight
                            .get_mut(&(from, me, tag))
                            .and_then(VecDeque::pop_front)
                        else {
                            break; // blocked on a message not yet posted
                        };
                        clock[me] = clock[me].max(ready);
                        if let Disposal::Forward { to, tag } = then {
                            post(
                                me,
                                to,
                                tag,
                                len,
                                &clock,
                                &mut messages,
                                &mut bytes,
                                &mut in_flight,
                            );
                        }
                    }
                    Op::RecvSlot { from, tag, slot } => {
                        let Some((len, ready)) = in_flight
                            .get_mut(&(from, me, tag))
                            .and_then(VecDeque::pop_front)
                        else {
                            break;
                        };
                        clock[me] = clock[me].max(ready);
                        slot_len[me][slot] = len;
                    }
                    // Bruck rounds keep every slot at `elems`; the combined
                    // message length is the closed-form block count.
                    Op::SendGather { to, tag, bit } => {
                        post(
                            me,
                            to,
                            tag,
                            bruck_count(p, bit) * elems,
                            &clock,
                            &mut messages,
                            &mut bytes,
                            &mut in_flight,
                        );
                    }
                    Op::RecvScatter { from, tag, .. } => {
                        let Some((_, ready)) = in_flight
                            .get_mut(&(from, me, tag))
                            .and_then(VecDeque::pop_front)
                        else {
                            break;
                        };
                        clock[me] = clock[me].max(ready);
                    }
                }
                sched.advance();
                progressed = true;
            }
            if !scheds[me].is_empty() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        assert!(
            progressed,
            "model transport deadlock: schedules stalled with ranks unfinished"
        );
    }

    let time_seconds = clock.iter().copied().fold(0.0, f64::max);
    ModelReport {
        per_rank_messages: messages,
        per_rank_bytes: bytes,
        per_rank_seconds: clock,
        time_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::simulate_reference as simulate;
    use super::*;
    use crate::model::{Algorithm, CollectiveModel};

    fn link() -> LinkModel {
        LinkModel::new(2.0e-6, 12.5e9)
    }

    /// The modeled run reproduces the closed-form α–β allreduce times
    /// exactly for the uniform cases the closed forms describe (power-of-two
    /// worlds, chunk-divisible buffers).
    #[test]
    fn simulated_times_match_closed_forms() {
        let link = link();
        let model = CollectiveModel::new(link);
        let cases = [
            (
                Collective::RingAllreduce {
                    bucket_elems: usize::MAX,
                },
                Algorithm::Ring,
            ),
            (Collective::RecursiveDoubling, Algorithm::RecursiveDoubling),
            (Collective::Rabenseifner, Algorithm::Rabenseifner),
            (Collective::TreeAllreduce, Algorithm::BinomialTree),
        ];
        for p in [2usize, 4, 8] {
            // Divisible by every p and by 2^log2(p) halvings.
            let elems = 64usize;
            for (collective, alg) in cases {
                let sim = simulate(collective, p, elems, link).time_seconds;
                let closed = model.allreduce_time(alg, p as u64, (elems * 4) as f64);
                assert!(
                    (sim - closed).abs() <= 1e-9 * closed.max(1e-12),
                    "{alg:?} p={p}: simulated {sim} vs closed form {closed}"
                );
            }
        }
    }

    /// Ring traffic is exact even for uneven chunks: 2(p-1) · n elements
    /// moved in total, one message per rank per step when no chunk is empty.
    #[test]
    fn simulated_ring_traffic_is_exact() {
        let link = link();
        for p in [2usize, 3, 4, 8] {
            for n in [1usize, 5, 37, 96] {
                let r = simulate(
                    Collective::RingAllreduce {
                        bucket_elems: usize::MAX,
                    },
                    p,
                    n,
                    link,
                );
                assert_eq!(r.total_bytes(), (4 * 2 * (p - 1) * n) as u64, "p={p} n={n}");
                if n >= p {
                    assert_eq!(r.total_messages(), (2 * (p - 1) * p) as u64);
                }
            }
        }
    }

    /// Bucketing changes message counts but never byte volume.
    #[test]
    fn simulated_bucketing_preserves_bytes() {
        let link = link();
        let (p, n) = (4usize, 37usize);
        let flat = simulate(
            Collective::RingAllreduce {
                bucket_elems: usize::MAX,
            },
            p,
            n,
            link,
        );
        for bucket in [1usize, 3, 8] {
            let b = simulate(
                Collective::RingAllreduce {
                    bucket_elems: bucket,
                },
                p,
                n,
                link,
            );
            assert_eq!(b.total_bytes(), flat.total_bytes(), "bucket={bucket}");
            assert!(b.total_messages() >= flat.total_messages());
        }
    }

    /// A binomial broadcast sends exactly p - 1 messages of the full buffer.
    #[test]
    fn simulated_broadcast_counts() {
        let link = link();
        for p in [2usize, 3, 4, 7, 8] {
            let r = simulate(Collective::BinomialBroadcast { root: 0 }, p, 10, link);
            assert_eq!(r.total_messages(), (p - 1) as u64, "p={p}");
            assert_eq!(r.total_bytes(), (4 * 10 * (p - 1)) as u64, "p={p}");
        }
    }

    /// Every personalized collective moves the volume its pattern implies.
    /// `n = 128` keeps alltoall above the Bruck threshold, pinning the
    /// direct pairwise exchange: one block once per (source, destination).
    #[test]
    fn simulated_personalized_counts() {
        let link = link();
        let n = 128;
        for p in [2usize, 3, 4, 8] {
            let a2a = simulate(Collective::Alltoall, p, n, link);
            assert_eq!(a2a.total_messages(), (p * (p - 1)) as u64, "alltoall p={p}");
            assert_eq!(a2a.total_bytes(), (4 * n * p * (p - 1)) as u64);
            let sc = simulate(Collective::Scatter { root: 1 % p }, p, n, link);
            assert_eq!(sc.total_messages(), (p - 1) as u64, "scatter p={p}");
            let ga = simulate(Collective::Gather { root: 1 % p }, p, n, link);
            assert_eq!(ga.total_messages(), (p - 1) as u64, "gather p={p}");
            assert_eq!(ga.total_bytes(), (4 * n * (p - 1)) as u64);
        }
    }

    /// Small blocks route alltoall through Bruck: `⌈lg p⌉` messages per
    /// rank, and each block rides `popcount(distance)` combined messages —
    /// total bytes `4 n p Σ_{i<p} popcount(i)`.
    #[test]
    fn simulated_bruck_alltoall_counts() {
        let link = link();
        let n = 6;
        for p in [2usize, 3, 4, 5, 8] {
            let rounds = usize::BITS - (p - 1).leading_zeros();
            let popcounts: u32 = (0..p as u32).map(u32::count_ones).sum();
            let r = simulate(Collective::Alltoall, p, n, link);
            assert_eq!(r.total_messages(), (p as u32 * rounds) as u64, "p={p}");
            assert_eq!(
                r.total_bytes(),
                (4 * n * p) as u64 * u64::from(popcounts),
                "p={p}"
            );
        }
    }

    /// A single-rank world is free on every collective.
    #[test]
    fn single_rank_world_is_free() {
        let link = link();
        for c in [
            Collective::RingAllreduce { bucket_elems: 8 },
            Collective::ReduceScatter,
            Collective::RingAllgather,
            Collective::RecursiveDoubling,
            Collective::Rabenseifner,
            Collective::BinomialBroadcast { root: 0 },
            Collective::BinomialReduce { root: 0 },
            Collective::TreeAllreduce,
            Collective::HierarchicalAllreduce { group_size: 1 },
            Collective::Alltoall,
            Collective::Scatter { root: 0 },
            Collective::Gather { root: 0 },
        ] {
            let r = simulate(c, 1, 16, link);
            assert_eq!(r.total_messages(), 0, "{c:?}");
            assert_eq!(r.total_bytes(), 0, "{c:?}");
            assert_eq!(r.time_seconds, 0.0, "{c:?}");
        }
    }

    /// The hierarchical model's leaders exchange chunked windows; total
    /// bytes are the two linear phases plus the leader ring.
    #[test]
    fn simulated_hierarchical_counts() {
        let link = link();
        let (p, g, n) = (6usize, 3usize, 12usize);
        let r = simulate(
            Collective::HierarchicalAllreduce { group_size: g },
            p,
            n,
            link,
        );
        let groups = p / g;
        // Linear up + down: 2 (g - 1) full-buffer messages per group.
        let linear = (2 * (g - 1) * groups * n) as u64;
        // Leader ring: 2 (groups - 1) steps moving n / groups each, per leader.
        let ring = (2 * (groups - 1) * groups * (n / groups)) as u64;
        assert_eq!(r.total_bytes(), 4 * (linear + ring));
    }
}
