//! An IMPECCABLE-style surrogate screening funnel (paper Section V-C).
//!
//! Saadi et al.'s drug-lead pipeline interposes a cheap ML surrogate
//! (ResNet-50 on ligand images) between the compound library and the
//! expensive docking/MD evaluations, downselecting which compounds deserve
//! the precise treatment. We reproduce the funnel on a synthetic library:
//! compounds are feature vectors, true binding affinity is a hidden
//! nonlinear teacher, "docking" evaluates the teacher exactly at unit cost,
//! and the surrogate is an MLP regressor trained on a seed set. Tested
//! claims: the funnel recovers most of the true top-K while spending a
//! small fraction of the brute-force evaluation budget, and vastly
//! outperforms random downselection at equal budget.

use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use serde::Serialize;
use summit_dl::{model::MlpSpec, optim::Adam, schedule::LrSchedule, trainer::Trainer};
use summit_tensor::Matrix;

/// A synthetic compound library with a hidden affinity function.
#[derive(Debug, Clone)]
pub struct CompoundLibrary {
    features: Matrix,
    true_affinity: Vec<f32>,
}

impl CompoundLibrary {
    /// Generate `n` compounds with `dim`-dimensional descriptors. The true
    /// affinity is a smooth nonlinear function of the descriptors (tanh of
    /// a random linear form plus an interaction term).
    ///
    /// # Panics
    /// Panics if `n` or `dim` is zero.
    #[allow(clippy::needless_range_loop)] // indexing two parallel structures
    pub fn generate(n: usize, dim: usize, seed: u64) -> Self {
        assert!(n > 0 && dim > 0, "library must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let w: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut features = Matrix::zeros(n, dim);
        let mut true_affinity = Vec::with_capacity(n);
        for i in 0..n {
            let mut lin = 0.0f32;
            for d in 0..dim {
                let v: f32 = rng.gen_range(-1.0f32..1.0);
                features.set(i, d, v);
                lin += w[d] * v;
            }
            let interaction = features.get(i, 0) * features.get(i, dim - 1);
            true_affinity.push(lin.tanh() + 0.3 * interaction);
        }
        CompoundLibrary {
            features,
            true_affinity,
        }
    }

    /// Library size.
    pub fn len(&self) -> usize {
        self.true_affinity.len()
    }

    /// Whether the library is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.true_affinity.is_empty()
    }

    /// The expensive "docking/MD" evaluation of one compound.
    pub fn dock(&self, idx: usize) -> f32 {
        self.true_affinity[idx]
    }

    /// The compound descriptor matrix (`n × dim`).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Indices of the true top-`k` compounds (ground truth for recall).
    pub fn true_top_k(&self, k: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by(|&a, &b| self.true_affinity[b].total_cmp(&self.true_affinity[a]));
        order.truncate(k);
        order
    }
}

/// Downselection strategy for the expensive stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FunnelPolicy {
    /// Rank by a surrogate trained on a docked seed set.
    Surrogate,
    /// Random downselection at the same total budget.
    Random,
    /// Dock everything (the brute-force upper bound).
    BruteForce,
}

/// Outcome of a screening campaign.
#[derive(Debug, Clone, Serialize)]
pub struct ScreeningOutcome {
    /// Policy used.
    pub policy: FunnelPolicy,
    /// Expensive docking evaluations spent.
    pub expensive_evaluations: usize,
    /// Fraction of the true top-K recovered among docked compounds.
    pub recall_at_k: f64,
    /// The selected compound indices (docked set).
    pub selected: Vec<usize>,
}

/// Configuration of the funnel.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScreeningFunnel {
    /// Compounds docked to train the surrogate (seed set).
    pub seed_set: usize,
    /// Compounds forwarded by the surrogate to the expensive stage.
    pub shortlist: usize,
    /// Top-K recall target size.
    pub k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ScreeningFunnel {
    fn default() -> Self {
        ScreeningFunnel {
            seed_set: 200,
            shortlist: 200,
            k: 50,
            seed: 7,
        }
    }
}

impl ScreeningFunnel {
    /// Run the campaign over `library` with the given policy.
    ///
    /// # Panics
    /// Panics if budgets exceed the library size.
    pub fn run(&self, library: &CompoundLibrary, policy: FunnelPolicy) -> ScreeningOutcome {
        let n = library.len();
        assert!(
            self.seed_set + self.shortlist <= n,
            "budget exceeds library"
        );
        assert!(self.k <= n, "k exceeds library");
        let truth = library.true_top_k(self.k);

        let (selected, cost) = match policy {
            FunnelPolicy::BruteForce => ((0..n).collect::<Vec<_>>(), n),
            FunnelPolicy::Random => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                let budget = self.seed_set + self.shortlist;
                all.truncate(budget);
                (all, budget)
            }
            FunnelPolicy::Surrogate => {
                let mut rng = StdRng::seed_from_u64(self.seed);
                // Stage 1: dock a random seed set.
                let mut all: Vec<usize> = (0..n).collect();
                all.shuffle(&mut rng);
                let seed_idx: Vec<usize> = all[..self.seed_set].to_vec();
                let dim = library.features.cols();
                let mut x = Matrix::zeros(self.seed_set, dim);
                let mut y = Matrix::zeros(self.seed_set, 1);
                for (row, &i) in seed_idx.iter().enumerate() {
                    x.row_mut(row).copy_from_slice(library.features.row(i));
                    y.set(row, 0, library.dock(i));
                }
                // Stage 2: train the surrogate.
                let mut surrogate = Trainer::new(
                    MlpSpec::new(dim, &[32, 16], 1).build(self.seed),
                    Box::new(Adam::new(0.01, 1e-5)),
                    LrSchedule::Constant,
                );
                for _ in 0..300 {
                    surrogate.train_regression_batch(&x, &y);
                }
                // Stage 3: score the whole library cheaply, shortlist.
                let pred = surrogate.predict(&library.features);
                let mut scored: Vec<(usize, f32)> = (0..n).map(|i| (i, pred.get(i, 0))).collect();
                scored.sort_by(|a, b| b.1.total_cmp(&a.1));
                let mut selected = seed_idx;
                for &(i, _) in scored.iter() {
                    if selected.len() >= self.seed_set + self.shortlist {
                        break;
                    }
                    if !selected.contains(&i) {
                        selected.push(i);
                    }
                }
                let cost = selected.len();
                (selected, cost)
            }
        };

        let hits = truth.iter().filter(|t| selected.contains(t)).count();
        ScreeningOutcome {
            policy,
            expensive_evaluations: cost,
            recall_at_k: hits as f64 / self.k as f64,
            selected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> CompoundLibrary {
        CompoundLibrary::generate(2000, 8, 11)
    }

    #[test]
    fn brute_force_has_perfect_recall_at_full_cost() {
        let lib = library();
        let out = ScreeningFunnel::default().run(&lib, FunnelPolicy::BruteForce);
        assert_eq!(out.recall_at_k, 1.0);
        assert_eq!(out.expensive_evaluations, lib.len());
    }

    #[test]
    fn surrogate_funnel_cheap_and_effective() {
        let lib = library();
        let funnel = ScreeningFunnel::default();
        let out = funnel.run(&lib, FunnelPolicy::Surrogate);
        // ≤ 20% of brute-force cost…
        assert!(out.expensive_evaluations <= lib.len() / 5);
        // …while recovering most of the true top-50.
        assert!(out.recall_at_k >= 0.6, "recall {}", out.recall_at_k);
    }

    #[test]
    fn surrogate_beats_random_at_equal_budget() {
        let lib = library();
        let funnel = ScreeningFunnel::default();
        let surrogate = funnel.run(&lib, FunnelPolicy::Surrogate);
        let random = funnel.run(&lib, FunnelPolicy::Random);
        assert_eq!(
            surrogate.expensive_evaluations,
            random.expensive_evaluations
        );
        assert!(
            surrogate.recall_at_k > random.recall_at_k + 0.2,
            "surrogate {} vs random {}",
            surrogate.recall_at_k,
            random.recall_at_k
        );
    }

    #[test]
    fn random_recall_matches_expectation() {
        // Random downselection of b of n compounds recovers ≈ b/n of top-K.
        let lib = library();
        let funnel = ScreeningFunnel::default();
        let out = funnel.run(&lib, FunnelPolicy::Random);
        let expect = out.expensive_evaluations as f64 / lib.len() as f64;
        assert!(
            (out.recall_at_k - expect).abs() < 0.12,
            "{} vs {}",
            out.recall_at_k,
            expect
        );
    }

    #[test]
    fn deterministic() {
        let lib = library();
        let funnel = ScreeningFunnel::default();
        let a = funnel.run(&lib, FunnelPolicy::Surrogate);
        let b = funnel.run(&lib, FunnelPolicy::Surrogate);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    #[should_panic(expected = "budget exceeds library")]
    fn oversized_budget_rejected() {
        let lib = CompoundLibrary::generate(100, 4, 0);
        ScreeningFunnel {
            seed_set: 80,
            shortlist: 80,
            k: 10,
            seed: 0,
        }
        .run(&lib, FunnelPolicy::Surrogate);
    }
}
