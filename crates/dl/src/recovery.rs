//! Checkpointed fault-tolerant data-parallel training.
//!
//! The paper's fault motif (Table I, row 1) is *detect → signal → remediate*:
//! a hardware fault surfaces as an anomaly, an out-of-band signal triggers
//! remediation, and the job resumes from its last checkpoint. This module is
//! the executable version of that loop for [`DataParallelTrainer`]:
//!
//! 1. **Detect** — every gradient allreduce runs on the timeout-aware checked
//!    primitives ([`try_ring_allreduce_bucketed`], the checked nonblocking
//!    handle drivers), so drops, corruption, delays past the deadline, and
//!    scheduled rank kills surface as [`CommError`] instead of hangs.
//! 2. **Signal** — after every step attempt the ranks vote with
//!    [`all_agree`] on [`CONTROL_BIT`](summit_comm::CONTROL_BIT) tags, which
//!    the fault plane never touches: the reliable out-of-band control
//!    network.
//! 3. **Remediate** — on a failed vote every rank barriers, drains the data
//!    fabric of half-finished collective traffic ([`Rank::drain_all`]),
//!    restores the last in-memory checkpoint (flat parameters plus
//!    [`OptimizerState`]), and replays from the checkpointed step.
//!
//! Recovery is **bit-exact**: data sharding is a pure function of the global
//! step index, fault events are one-shot (a replayed step re-executes
//! clean), and the checked collectives are a different driver
//! (`engine::drive_checked`) over the *same* schedule objects as the
//! infallible path, sharing fold order and operand order by
//! construction — so a faulted run converges to
//! exactly the fault-free trajectory, bit for bit. The chaos suite in
//! `tests/` pins this for drop, delay, corrupt, and kill scenarios.

use std::sync::Arc;
use std::time::{Duration, Instant};

use summit_comm::{
    all_agree,
    collectives::{try_ring_allreduce_bucketed, ReduceOp},
    nonblocking::{ring_allreduce_start_windowed, RingAllreduceHandle},
    world::{Rank, World},
    CommError, FaultPlan,
};
use summit_tensor::{ops, Matrix};

use crate::model::Mlp;
use crate::optim::{Optimizer, OptimizerState};
use crate::schedule::LrSchedule;
use crate::trainer::{slice_rows, BucketSchedule, DataParallelTrainer};

/// Recovery policy for [`DataParallelTrainer::run_fault_tolerant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Take an in-memory checkpoint every this many committed steps (a
    /// checkpoint is always taken at step 0, so rollback is always
    /// possible).
    pub checkpoint_interval: u32,
    /// Deadline for one step's gradient communication; a step that cannot
    /// finish its allreduce within this budget is declared failed.
    pub step_timeout: Duration,
    /// Abort (panic loudly) after this many rollbacks — a guard against a
    /// fault plan that makes progress impossible.
    pub max_recoveries: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_interval: 4,
            step_timeout: Duration::from_secs(2),
            max_recoveries: 64,
        }
    }
}

/// One in-memory checkpoint: everything needed to replay bit-exactly.
#[derive(Debug, Clone)]
struct MemoryCheckpoint {
    step: u32,
    loss_sum: f32,
    params: Vec<f32>,
    opt: OptimizerState,
}

/// Result of a fault-tolerant run; extends
/// [`ParallelOutcome`](crate::trainer::ParallelOutcome) with recovery
/// telemetry.
#[derive(Debug, Clone)]
pub struct FtOutcome {
    /// Final flat parameters (rank 0's copy).
    pub params: Vec<f32>,
    /// Mean loss per committed step, from rank 0.
    pub loss: f32,
    /// Maximum final parameter divergence across ranks (must be ~0).
    pub max_divergence: f32,
    /// Committed optimizer steps.
    pub steps: u32,
    /// Rollback-and-replay episodes (identical on every rank: the vote is
    /// global).
    pub recoveries: u32,
    /// Stale messages drained from the fabric during recoveries, summed
    /// over all ranks.
    pub drained_messages: usize,
    /// Faults the plan actually injected, from
    /// [`TrafficStats`](summit_comm::world::TrafficStats).
    pub faults_injected: u64,
    /// Rank 0's wall-clock seconds for every step *attempt* (failed
    /// attempts included) — the raw telemetry the `summit-workflow` fault
    /// detector consumes: a faulted attempt shows up as a latency spike.
    pub step_seconds: Vec<f64>,
}

/// Outcome of one step attempt's communication phase.
#[allow(clippy::too_many_arguments)]
fn step_comm(
    rank: &Rank,
    model: &mut Mlp,
    dlogits: &Matrix,
    flat: &mut Vec<f32>,
    layer_sizes: &[usize],
    bucket_elems: usize,
    overlap: bool,
    deadline: Instant,
) -> Result<(), CommError> {
    let n = flat.len();
    if overlap && rank.size() > 1 {
        // Overlapped path: identical launch schedule and window partition
        // to the infallible trainer, but driven by the checked progress /
        // bounded wait. On the first error we stop driving and fall
        // through; surviving handles are dropped half-finished (their
        // traffic is drained during recovery).
        let mut sched = BucketSchedule::new(layer_sizes, bucket_elems);
        let mut windows: Vec<Option<&mut [f32]>> =
            flat.chunks_mut(bucket_elems).map(Some).collect();
        let mut handles: Vec<RingAllreduceHandle> = Vec::with_capacity(windows.len());
        let mut failed: Option<CommError> = None;
        model.backward_with(dlogits, |layer, gw, gb| {
            let off = sched.layer_start(layer);
            let w = gw.as_slice();
            scatter_into(&mut windows, bucket_elems, off, w);
            scatter_into(&mut windows, bucket_elems, off + w.len(), gb);
            for b in sched.on_layer_ready(layer).rev() {
                let window = windows[b].take().expect("bucket launched twice");
                handles.push(ring_allreduce_start_windowed(
                    rank,
                    window,
                    ReduceOp::Sum,
                    b as u64,
                    n,
                    b * bucket_elems,
                ));
            }
            if failed.is_none() {
                for h in handles.iter_mut() {
                    if let Err(e) = h.progress_checked() {
                        failed = Some(e);
                        break;
                    }
                }
            }
        });
        if let Some(e) = failed {
            return Err(e);
        }
        for h in handles.iter_mut() {
            h.wait_deadline(deadline)?;
        }
        Ok(())
    } else {
        model.backward(dlogits);
        model.flat_grads_into(flat);
        if rank.size() > 1 {
            let timeout = deadline.saturating_duration_since(Instant::now());
            try_ring_allreduce_bucketed(rank, flat, ReduceOp::Sum, bucket_elems, timeout)
        } else {
            Ok(())
        }
    }
}

/// Copy `src` into flat position `pos` across per-bucket windows — the
/// trainer's scatter, duplicated here because the windows borrow a
/// different buffer. Behaviour is identical.
fn scatter_into(windows: &mut [Option<&mut [f32]>], m: usize, mut pos: usize, src: &[f32]) {
    let mut s = 0;
    while s < src.len() {
        let b = pos / m;
        let within = pos - b * m;
        let w = windows[b]
            .as_mut()
            .expect("gradient written into an already-launched bucket");
        let take = (w.len() - within).min(src.len() - s);
        w[within..within + take].copy_from_slice(&src[s..s + take]);
        pos += take;
        s += take;
    }
}

impl DataParallelTrainer {
    /// [`run`](DataParallelTrainer::run) under a fault plan, with
    /// checkpointed rollback-and-replay recovery.
    ///
    /// Every rank trains exactly as in `run`, but each step's gradient
    /// allreduce is deadline-bounded and checked; after each attempt the
    /// ranks vote on the out-of-band control plane, and a failed vote rolls
    /// every rank back to the last in-memory checkpoint. Because sharding
    /// is step-indexed and fault events are one-shot, the final parameters
    /// are bit-identical to a fault-free run.
    ///
    /// # Panics
    /// Panics if the dataset is smaller than one global batch, or if more
    /// than [`RecoveryConfig::max_recoveries`] rollbacks occur.
    #[allow(clippy::too_many_arguments)]
    pub fn run_fault_tolerant(
        &self,
        build_model: impl Fn() -> Mlp + Sync,
        build_optimizer: impl Fn() -> Box<dyn Optimizer> + Sync,
        schedule: LrSchedule,
        x: &Matrix,
        labels: &[usize],
        epochs: u32,
        plan: Arc<FaultPlan>,
        cfg: RecoveryConfig,
    ) -> FtOutcome {
        assert!(
            cfg.checkpoint_interval > 0,
            "checkpoint interval must be positive"
        );
        let global_batch = self.ranks * self.per_rank_batch;
        assert!(
            x.rows() >= global_batch,
            "dataset smaller than one global batch"
        );
        let steps_per_epoch = (x.rows() / global_batch) as u32;
        let total_steps = epochs * steps_per_epoch;
        let ranks = self.ranks;
        let per_rank = self.per_rank_batch;
        let bucket_elems = self.fusion.bucket_elems();
        let overlap = self.overlap.enabled;

        let (results, stats) = World::run_with_faults(ranks, plan, |rank| {
            let mut model = build_model();
            let mut optimizer = build_optimizer();
            let n = model.param_count();
            let layer_sizes = model.layer_param_sizes();
            let mut flat: Vec<f32> = vec![0.0; n];

            let mut step = 0u32;
            let mut loss_sum = 0.0f32;
            let mut recoveries = 0u32;
            let mut drained = 0usize;
            let mut vote_round = 0u64;
            let mut step_seconds: Vec<f64> = Vec::new();
            let mut ckpt = MemoryCheckpoint {
                step: 0,
                loss_sum: 0.0,
                params: model.flat_params(),
                opt: optimizer.export_state(),
            };

            while step < total_steps {
                rank.set_fault_step(step as u64);
                let t0 = Instant::now();
                let deadline = t0 + cfg.step_timeout;

                // Shard for global step `step` — a pure function of the
                // step index, so replays read the same rows.
                let s = (step % steps_per_epoch) as usize;
                let base = s * ranks * per_rank;
                let start = base + rank.id() * per_rank;
                let bx = slice_rows(x, start, start + per_rank);
                let blabels = &labels[start..start + per_rank];

                let logits = model.forward(&bx);
                let (loss, dlogits) = ops::softmax_cross_entropy(logits, blabels);
                model.zero_grads();

                let comm = step_comm(
                    rank,
                    &mut model,
                    &dlogits,
                    &mut flat,
                    &layer_sizes,
                    bucket_elems,
                    overlap,
                    deadline,
                );

                // Out-of-band vote: the step commits only if *every* rank's
                // communication succeeded. The vote runs on CONTROL_BIT
                // tags, which the fault plane never touches.
                let committed = all_agree(rank, comm.is_ok(), vote_round);
                vote_round += 1;

                if committed {
                    let inv = 1.0 / ranks as f32;
                    for g in &mut flat {
                        *g *= inv;
                    }
                    model.set_flat_grads(&flat);
                    let lr = schedule.multiplier(step);
                    model.for_each_group(|id, params, grads| {
                        optimizer.step_group(id, lr, params, grads)
                    });
                    optimizer.advance();
                    step += 1;
                    loss_sum += loss;
                    if step < total_steps && step.is_multiple_of(cfg.checkpoint_interval) {
                        ckpt = MemoryCheckpoint {
                            step,
                            loss_sum,
                            params: model.flat_params(),
                            opt: optimizer.export_state(),
                        };
                    }
                } else {
                    // Remediation: all ranks are here (every checked path is
                    // deadline-bounded), so barrier, drain the fabric of
                    // half-finished collective traffic, and roll back.
                    recoveries += 1;
                    assert!(
                        recoveries <= cfg.max_recoveries,
                        "rank {}: recovery limit exceeded ({} rollbacks)",
                        rank.id(),
                        cfg.max_recoveries
                    );
                    rank.barrier();
                    drained += rank.drain_all();
                    rank.barrier();
                    model.set_flat_params(&ckpt.params);
                    optimizer.import_state(&ckpt.opt);
                    step = ckpt.step;
                    loss_sum = ckpt.loss_sum;
                }
                step_seconds.push(t0.elapsed().as_secs_f64());
            }
            (
                model.flat_params(),
                loss_sum / step.max(1) as f32,
                step,
                recoveries,
                drained,
                step_seconds,
            )
        });

        let params0 = results[0].0.clone();
        let (loss0, steps, recoveries) = (results[0].1, results[0].2, results[0].3);
        let step_seconds0 = results[0].5.clone();
        let mut max_div = 0.0f32;
        let mut drained_total = 0usize;
        for (params, _, _, _, drained, _) in &results {
            drained_total += drained;
            for (a, b) in params.iter().zip(&params0) {
                max_div = max_div.max((a - b).abs());
            }
        }
        FtOutcome {
            params: params0,
            loss: loss0,
            max_divergence: max_div,
            steps,
            recoveries,
            drained_messages: drained_total,
            faults_injected: stats.faults_injected,
            step_seconds: step_seconds0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::blobs;
    use crate::model::MlpSpec;
    use crate::optim::{Adam, Sgd};
    use crate::trainer::{FusionConfig, OverlapConfig};
    use summit_comm::TagClass;

    fn bitwise_eq(a: &[f32], b: &[f32]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "param {i}: {x} vs {y}");
        }
    }

    fn cfg() -> RecoveryConfig {
        RecoveryConfig {
            checkpoint_interval: 2,
            step_timeout: Duration::from_millis(400),
            max_recoveries: 16,
        }
    }

    /// With an empty plan, the fault-tolerant runner is the plain runner:
    /// same trajectory, bit for bit, on both comm paths.
    #[test]
    fn fault_free_ft_run_matches_plain_run_bitwise() {
        let task = blobs(128, 4, 2, 0.3, 19);
        let spec = MlpSpec::new(4, &[8, 8], 2);
        for overlap in [false, true] {
            let dp = DataParallelTrainer::new(2, 8)
                .with_fusion(FusionConfig { bucket_bytes: 64 })
                .with_overlap(OverlapConfig { enabled: overlap });
            let plain = dp.run(
                || spec.build(5),
                || Box::new(Sgd::new(0.05, 0.9, 0.0)),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                2,
            );
            let ft = dp.run_fault_tolerant(
                || spec.build(5),
                || Box::new(Sgd::new(0.05, 0.9, 0.0)),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                2,
                Arc::new(FaultPlan::empty()),
                cfg(),
            );
            assert_eq!(ft.steps, plain.steps);
            assert_eq!(ft.recoveries, 0);
            assert_eq!(ft.faults_injected, 0);
            assert_eq!(ft.max_divergence, 0.0);
            bitwise_eq(&ft.params, &plain.params);
        }
    }

    /// A dropped allreduce message forces one rollback, after which the run
    /// converges to the exact fault-free parameters.
    #[test]
    fn recovers_bitwise_from_dropped_message() {
        let task = blobs(128, 4, 2, 0.3, 23);
        let spec = MlpSpec::new(4, &[8], 2);
        let dp = DataParallelTrainer::new(2, 8).with_overlap(OverlapConfig { enabled: false });
        let plain = dp.run(
            || spec.build(3),
            || Box::new(Adam::new(0.01, 0.0)),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            1,
        );
        // Drop a reduce-scatter message (blocking collective id 0) at step 5.
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 1, TagClass::Blocking(0), 5));
        let ft = dp.run_fault_tolerant(
            || spec.build(3),
            || Box::new(Adam::new(0.01, 0.0)),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            1,
            plan,
            cfg(),
        );
        assert_eq!(ft.steps, plain.steps);
        assert_eq!(
            ft.recoveries, 1,
            "the drop must trigger exactly one rollback"
        );
        assert_eq!(ft.faults_injected, 1);
        assert_eq!(ft.max_divergence, 0.0);
        bitwise_eq(&ft.params, &plain.params);
        assert_eq!(
            ft.step_seconds.len() as u32,
            ft.steps + ft.recoveries * (5 % cfg().checkpoint_interval + 1),
            "each rollback replays the steps since the last checkpoint"
        );
    }

    /// A scheduled rank kill on the overlapped path: the killed rank
    /// errors, the vote fails, and replay (the kill is one-shot) lands on
    /// the fault-free trajectory.
    #[test]
    fn recovers_bitwise_from_rank_kill_with_overlap() {
        let task = blobs(128, 4, 2, 0.3, 29);
        let spec = MlpSpec::new(4, &[8, 8], 2);
        let dp = DataParallelTrainer::new(2, 8)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: true });
        let plain = dp.run(
            || spec.build(7),
            || Box::new(Sgd::new(0.05, 0.9, 0.0)),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            1,
        );
        let plan = Arc::new(FaultPlan::empty().kill_rank(1, 3));
        let ft = dp.run_fault_tolerant(
            || spec.build(7),
            || Box::new(Sgd::new(0.05, 0.9, 0.0)),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            1,
            plan,
            cfg(),
        );
        assert_eq!(ft.steps, plain.steps);
        assert!(ft.recoveries >= 1);
        assert_eq!(ft.max_divergence, 0.0);
        bitwise_eq(&ft.params, &plain.params);
    }
}
