//! Row-major dense matrix with the matmul variants backprop needs.
//!
//! The three matmuls (`matmul`, `matmul_at_b`, `matmul_a_bt`) share one
//! compute discipline:
//!
//! * **Persistent pool, no per-call spawn** — large products dispatch row
//!   chunks onto [`summit_pool::global`]'s parked workers under the calling
//!   thread's core budget ([`summit_pool::core_budget`]), replacing the old
//!   scoped `thread::spawn` per call. The exact partition
//!   ([`summit_pool::chunk_range`]) handles `rows % threads != 0` tails in
//!   one shared place instead of three copy-pasted chunking blocks.
//! * **Packed, cache-blocked microkernel** — the strided operand is packed
//!   once per call into a reused thread-local scratch (`B` in column panels
//!   for [`Matrix::matmul`], `Aᵀ` for [`Matrix::matmul_at_b`]), and the
//!   inner loop runs on one of two backends selected once per call:
//!   an explicit AVX2+FMA microkernel on the [`crate::simd`] `f32x8`
//!   wrapper (register-blocked 6×16 / 4×16 tiles, runtime-detected), or
//!   the branch-free 4×-unrolled scalar loop as the guaranteed fallback.
//! * **Mixed precision** — every variant has a bf16-storage twin
//!   ([`Matrix::matmul_mixed_into`] and friends, or the [`Precision`] knob
//!   on the `*_into_prec` entry points): the packed operand is stored as
//!   bf16 (`u16`, round-to-nearest-even at pack time), converted back to
//!   f32 on load (exact), and **accumulated in f32** — the paper's
//!   mixed-precision storage lever with full-precision arithmetic.
//! * **Bit-identity across pool sizes** — every output element accumulates
//!   its terms in the same order on every path at every worker count: the
//!   row partition never splits an element's accumulation chain, and the
//!   SIMD kernels give each `(row, lane-group)` its own accumulator chain
//!   whose shape depends only on global geometry (panel offsets, block
//!   boundaries), never on the chunk split. Pooled results are therefore
//!   **bitwise equal** to the serial (`parts = 1`) kernel for every budget
//!   and both precisions. The scalar backend is additionally the
//!   cross-platform reference: SIMD results differ from it only within a
//!   documented ULP bound (FMA contraction + lane-tree reductions); see
//!   `tests/simd_properties.rs`.
//!
//! The `*_into` variants write into a caller-owned output matrix; combined
//! with the thread-local packing scratches (one f32, one bf16), a
//! steady-state pooled matmul at either precision performs **zero heap
//! allocations** (counting-allocator tests in `tests/tests/gemm_alloc.rs`).

use std::cell::RefCell;
use std::ops::Range;

use crate::simd::{self, Element, F32x8};

/// A dense, row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Storage precision of a GEMM's packed operand. Accumulation is always
/// f32; `Mixed` halves the packed panel's bytes (bf16 storage), mirroring
/// the paper's mixed-precision rate assumptions for the memory-bound side
/// of the roofline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// Full f32 storage end to end.
    #[default]
    F32,
    /// bf16 storage for the packed operand, f32 accumulation.
    Mixed,
}

/// Kernel backend selector — test hook for pinning SIMD-vs-scalar
/// agreement; production callers always use `Auto`.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// SIMD when the host supports it ([`simd::active`]), scalar otherwise.
    #[default]
    Auto,
    /// Force the scalar reference path.
    Scalar,
}

impl Backend {
    /// Resolve once per GEMM call so a single product never mixes kernels.
    fn use_simd(self) -> bool {
        self == Backend::Auto && simd::active()
    }
}

/// Row count above which matmuls parallelize over the compute pool.
const PAR_THRESHOLD: usize = 128;

/// Packed-`B` panel width for [`Matrix::matmul`]: 256 f32 columns keeps a
/// `k × 256` panel streaming through L2 while the output row segment being
/// accumulated stays in L1.
const PANEL_COLS: usize = 256;

/// Cache-blocking tile for the shared dimension of the transposed matmuls:
/// 64 rows × up to ~256 f32 columns ≈ 64 KB, comfortably inside L2 while
/// leaving room for the output row being accumulated.
const BLOCK_ROWS: usize = 64;

/// Row-block height of the SIMD `matmul` microkernel: 6 rows × two f32x8
/// column vectors = 12 in-register accumulators (plus 2 loaded B vectors
/// and 1 broadcast), filling the 16 ymm registers without spilling.
const MM_MR: usize = 6;

/// Row-block height of the SIMD `matmul_at_b` microkernel: 4 output rows ×
/// two f32x8 vectors = 8 accumulators, with two B-row loads and four
/// broadcasts per shared-dimension step.
const ATB_MR: usize = 4;

thread_local! {
    /// Per-thread f32 packing scratch, reused across calls so steady-state
    /// matmuls never allocate. Packing always happens on the dispatching
    /// thread (workers only read the packed panel through the kernel
    /// closure), so one scratch per thread suffices.
    static PACK_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread bf16 packing scratch for the mixed-precision path.
    static BF16_SCRATCH: RefCell<Vec<u16>> = const { RefCell::new(Vec::new()) };
}

/// A packable GEMM storage element: ties the [`Element`] conversions to a
/// per-type thread-local scratch and the type's target-feature SIMD kernel
/// entry points (free functions, since `#[target_feature]` cannot sit on
/// trait methods).
trait PanelElem: Element {
    /// Borrow this thread's packing scratch for `Self` at `len` elements
    /// (growing it once if needed) for the duration of `f`.
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [Self]) -> R) -> R;

    /// # Safety
    /// CPU must support AVX2+FMA (callers check [`simd::active`]).
    unsafe fn mm_chunk_simd(
        a: &[f32],
        k: usize,
        bp: &[Self],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    );

    /// # Safety
    /// CPU must support AVX2+FMA (callers check [`simd::active`]).
    unsafe fn atb_chunk_simd(
        at: &[Self],
        m: usize,
        b: &[f32],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    );

    /// # Safety
    /// CPU must support AVX2+FMA (callers check [`simd::active`]).
    unsafe fn abt_chunk_simd(
        a: &[f32],
        k: usize,
        b: &[Self],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    );
}

impl PanelElem for f32 {
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
        PACK_SCRATCH.with(|s| {
            let mut buf = s.borrow_mut();
            if buf.len() < len {
                buf.resize(len, 0.0);
            }
            f(&mut buf[..len])
        })
    }

    unsafe fn mm_chunk_simd(
        a: &[f32],
        k: usize,
        bp: &[f32],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { mm_chunk_simd_f32(a, k, bp, n, chunk, range) }
    }

    unsafe fn atb_chunk_simd(
        at: &[f32],
        m: usize,
        b: &[f32],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { atb_chunk_simd_f32(at, m, b, n, chunk, range) }
    }

    unsafe fn abt_chunk_simd(
        a: &[f32],
        k: usize,
        b: &[f32],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { abt_chunk_simd_f32(a, k, b, n, chunk, range) }
    }
}

impl PanelElem for u16 {
    fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [u16]) -> R) -> R {
        BF16_SCRATCH.with(|s| {
            let mut buf = s.borrow_mut();
            if buf.len() < len {
                buf.resize(len, 0);
            }
            f(&mut buf[..len])
        })
    }

    unsafe fn mm_chunk_simd(
        a: &[f32],
        k: usize,
        bp: &[u16],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { mm_chunk_simd_bf16(a, k, bp, n, chunk, range) }
    }

    unsafe fn atb_chunk_simd(
        at: &[u16],
        m: usize,
        b: &[f32],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { atb_chunk_simd_bf16(at, m, b, n, chunk, range) }
    }

    unsafe fn abt_chunk_simd(
        a: &[f32],
        k: usize,
        b: &[u16],
        n: usize,
        chunk: &mut [f32],
        range: Range<usize>,
    ) {
        unsafe { abt_chunk_simd_bf16(a, k, b, n, chunk, range) }
    }
}

/// The chunk count for a product with `rows` output rows: serial below the
/// threshold, otherwise the calling thread's core budget.
fn auto_parts(rows: usize) -> usize {
    if rows < PAR_THRESHOLD {
        1
    } else {
        summit_pool::core_budget().min(rows)
    }
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an owned buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Matrix { rows, cols, data }
    }

    /// Build from row slices (test/helper constructor).
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "rows must be non-empty");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    /// Panics on out-of-range indices (debug and release).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row out of range");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing buffer (row-major).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The backing buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// `self · other` (`m×k · k×n → m×n`) on the packed pooled kernel.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a caller-owned output (overwritten), the
    /// allocation-free steady-state entry point.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch or if `out` is not `m×n`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_into_parts(other, out, auto_parts(self.rows));
    }

    /// [`Matrix::matmul`] with bf16 storage of the packed `B` operand and
    /// f32 accumulation.
    pub fn matmul_mixed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_mixed_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_mixed`] into a caller-owned output (overwritten) —
    /// allocation-free in steady state like the f32 path.
    pub fn matmul_mixed_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_impl::<u16>(other, out, auto_parts(self.rows), Backend::Auto);
    }

    /// [`Matrix::matmul_into`] with an explicit [`Precision`] knob.
    pub fn matmul_into_prec(&self, other: &Matrix, out: &mut Matrix, prec: Precision) {
        match prec {
            Precision::F32 => self.matmul_into(other, out),
            Precision::Mixed => self.matmul_mixed_into(other, out),
        }
    }

    /// [`Matrix::matmul_into`] with an explicit chunk count — `parts = 1`
    /// is the serial reference path the property tests compare against.
    #[doc(hidden)]
    pub fn matmul_into_parts(&self, other: &Matrix, out: &mut Matrix, parts: usize) {
        self.matmul_impl::<f32>(other, out, parts, Backend::Auto);
    }

    /// Full control (tests): precision via the element type, explicit
    /// parts, forced backend.
    #[doc(hidden)]
    pub fn matmul_into_parts_backend(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        prec: Precision,
        backend: Backend,
    ) {
        match prec {
            Precision::F32 => self.matmul_impl::<f32>(other, out, parts, backend),
            Precision::Mixed => self.matmul_impl::<u16>(other, out, parts, backend),
        }
    }

    fn matmul_impl<E: PanelElem>(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        backend: Backend,
    ) {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.cols),
            "matmul output shape mismatch"
        );
        let k = self.cols;
        let n = other.cols;
        let use_simd = backend.use_simd();
        out.data.fill(0.0);
        // Pack B once per call into column panels: panel `jb` holds columns
        // [jb, jb + jw) row-major at width jw, contiguous at offset jb·k
        // (every preceding full panel contributes PANEL_COLS·k elements).
        // The mixed path rounds to bf16 here, once per element.
        E::with_scratch(k * n, |bp| {
            for jb in (0..n).step_by(PANEL_COLS) {
                let jw = (n - jb).min(PANEL_COLS);
                let panel = &mut bp[jb * k..jb * k + k * jw];
                for kk in 0..k {
                    let src = &other.data[kk * n + jb..kk * n + jb + jw];
                    for (d, &s) in panel[kk * jw..(kk + 1) * jw].iter_mut().zip(src) {
                        *d = E::pack(s);
                    }
                }
            }
            let a = &self.data;
            let bp = &*bp;
            summit_pool::global().run_rows(&mut out.data, n, parts, |chunk, range| {
                if use_simd {
                    // SAFETY: `use_simd` implies `simd::active()` verified
                    // AVX2+FMA on this CPU.
                    unsafe { E::mm_chunk_simd(a, k, bp, n, chunk, range) }
                } else {
                    matmul_chunk(a, k, bp, n, chunk, range);
                }
            });
        });
    }

    /// `selfᵀ · other` (`(m×k)ᵀ · m×n → k×n`). This is the weight-gradient
    /// product `Xᵀ · dY`, the backward-pass hot kernel: `Aᵀ` is packed once
    /// per call so each output row streams a contiguous operand, output
    /// rows are chunked over the pool, and the shared `m` dimension is
    /// cache-blocked (4×-unrolled scalar fallback, 4×16 SIMD tile).
    ///
    /// Every output element accumulates its `m` terms in ascending-`i`
    /// order on every path, so pooled and serial results are bit-identical.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn matmul_at_b(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_at_b`] into a caller-owned output (overwritten).
    ///
    /// # Panics
    /// Panics on row-count mismatch or if `out` is not `k×n`.
    pub fn matmul_at_b_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_at_b_into_parts(other, out, auto_parts(self.cols));
    }

    /// [`Matrix::matmul_at_b`] with bf16 storage of the packed `Aᵀ` operand
    /// and f32 accumulation.
    pub fn matmul_at_b_mixed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, other.cols);
        self.matmul_at_b_mixed_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_at_b_mixed`] into a caller-owned output.
    pub fn matmul_at_b_mixed_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_at_b_impl::<u16>(other, out, auto_parts(self.cols), Backend::Auto);
    }

    /// [`Matrix::matmul_at_b_into`] with an explicit [`Precision`] knob.
    pub fn matmul_at_b_into_prec(&self, other: &Matrix, out: &mut Matrix, prec: Precision) {
        match prec {
            Precision::F32 => self.matmul_at_b_into(other, out),
            Precision::Mixed => self.matmul_at_b_mixed_into(other, out),
        }
    }

    /// [`Matrix::matmul_at_b_into`] with an explicit chunk count.
    #[doc(hidden)]
    pub fn matmul_at_b_into_parts(&self, other: &Matrix, out: &mut Matrix, parts: usize) {
        self.matmul_at_b_impl::<f32>(other, out, parts, Backend::Auto);
    }

    /// Full control (tests): precision, explicit parts, forced backend.
    #[doc(hidden)]
    pub fn matmul_at_b_into_parts_backend(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        prec: Precision,
        backend: Backend,
    ) {
        match prec {
            Precision::F32 => self.matmul_at_b_impl::<f32>(other, out, parts, backend),
            Precision::Mixed => self.matmul_at_b_impl::<u16>(other, out, parts, backend),
        }
    }

    fn matmul_at_b_impl<E: PanelElem>(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        backend: Backend,
    ) {
        assert_eq!(self.rows, other.rows, "matmul_at_b row mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, other.cols),
            "matmul_at_b output shape mismatch"
        );
        let m = self.rows;
        let k = self.cols;
        let n = other.cols;
        let use_simd = backend.use_simd();
        out.data.fill(0.0);
        // Pack Aᵀ once per call: at[kk·m + i] = A[i, kk], so output row kk
        // reads its m coefficients contiguously (bf16-rounded on the mixed
        // path).
        E::with_scratch(m * k, |at| {
            for i in 0..m {
                let a_row = &self.data[i * k..(i + 1) * k];
                for (kk, &v) in a_row.iter().enumerate() {
                    at[kk * m + i] = E::pack(v);
                }
            }
            let b = &other.data;
            let at = &*at;
            summit_pool::global().run_rows(&mut out.data, n, parts, |chunk, range| {
                if use_simd {
                    // SAFETY: `use_simd` implies `simd::active()` verified
                    // AVX2+FMA on this CPU.
                    unsafe { E::atb_chunk_simd(at, m, b, n, chunk, range) }
                } else {
                    matmul_at_b_chunk(at, m, b, n, chunk, range);
                }
            });
        });
    }

    /// `self · otherᵀ` (`m×k · (n×k)ᵀ → m×n`) without materializing the
    /// transpose. This is the input-gradient product `dY · Wᵀ`, the other
    /// backward-pass hot kernel: both operands are row-contiguous already,
    /// so no packing is needed — output rows are chunked over the pool and
    /// the `other`-row loop is cache-blocked.
    ///
    /// Each output element is one ascending-`k` dot chain exactly as in
    /// [`crate::dot`] (on both backends — the SIMD kernel calls the same
    /// lane-level dot helper `dot` dispatches to), so pooled and serial
    /// results are bit-identical, and the kernel agrees bitwise with
    /// per-element [`crate::dot`] calls.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_a_bt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_a_bt`] into a caller-owned output (overwritten).
    ///
    /// # Panics
    /// Panics on column-count mismatch or if `out` is not `m×n`.
    pub fn matmul_a_bt_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_a_bt_into_parts(other, out, auto_parts(self.rows));
    }

    /// [`Matrix::matmul_a_bt`] with bf16 storage of the `other` operand
    /// (converted once into the packing scratch) and f32 accumulation.
    pub fn matmul_a_bt_mixed(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.rows);
        self.matmul_a_bt_mixed_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul_a_bt_mixed`] into a caller-owned output.
    pub fn matmul_a_bt_mixed_into(&self, other: &Matrix, out: &mut Matrix) {
        self.matmul_a_bt_mixed_impl(other, out, auto_parts(self.rows), Backend::Auto);
    }

    /// [`Matrix::matmul_a_bt_into`] with an explicit [`Precision`] knob.
    pub fn matmul_a_bt_into_prec(&self, other: &Matrix, out: &mut Matrix, prec: Precision) {
        match prec {
            Precision::F32 => self.matmul_a_bt_into(other, out),
            Precision::Mixed => self.matmul_a_bt_mixed_into(other, out),
        }
    }

    /// [`Matrix::matmul_a_bt_into`] with an explicit chunk count.
    #[doc(hidden)]
    pub fn matmul_a_bt_into_parts(&self, other: &Matrix, out: &mut Matrix, parts: usize) {
        self.matmul_a_bt_f32_impl(other, out, parts, Backend::Auto);
    }

    /// Full control (tests): precision, explicit parts, forced backend.
    #[doc(hidden)]
    pub fn matmul_a_bt_into_parts_backend(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        prec: Precision,
        backend: Backend,
    ) {
        match prec {
            Precision::F32 => self.matmul_a_bt_f32_impl(other, out, parts, backend),
            Precision::Mixed => self.matmul_a_bt_mixed_impl(other, out, parts, backend),
        }
    }

    fn matmul_a_bt_assert(&self, other: &Matrix, out: &Matrix) {
        assert_eq!(self.cols, other.cols, "matmul_a_bt column mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, other.rows),
            "matmul_a_bt output shape mismatch"
        );
    }

    /// f32 path: both operands are row-contiguous, no packing or copies.
    fn matmul_a_bt_f32_impl(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        backend: Backend,
    ) {
        self.matmul_a_bt_assert(other, out);
        let k = self.cols;
        let n = other.rows;
        let use_simd = backend.use_simd();
        let a = &self.data;
        let b = &other.data;
        summit_pool::global().run_rows(&mut out.data, n, parts, |chunk, range| {
            if use_simd {
                // SAFETY: `use_simd` implies AVX2+FMA verified.
                unsafe { <f32 as PanelElem>::abt_chunk_simd(a, k, b, n, chunk, range) }
            } else {
                matmul_a_bt_chunk(a, k, b, n, chunk, range);
            }
        });
    }

    /// Mixed path: `other` is converted once (row-contiguous, bf16) into
    /// the reused bf16 scratch — the only copy this variant makes.
    fn matmul_a_bt_mixed_impl(
        &self,
        other: &Matrix,
        out: &mut Matrix,
        parts: usize,
        backend: Backend,
    ) {
        self.matmul_a_bt_assert(other, out);
        let k = self.cols;
        let n = other.rows;
        let use_simd = backend.use_simd();
        <u16 as PanelElem>::with_scratch(n * k, |bh| {
            for (d, &s) in bh.iter_mut().zip(&other.data) {
                *d = simd::f32_to_bf16(s);
            }
            let a = &self.data;
            let bh = &*bh;
            summit_pool::global().run_rows(&mut out.data, n, parts, |chunk, range| {
                if use_simd {
                    // SAFETY: `use_simd` implies AVX2+FMA verified.
                    unsafe { <u16 as PanelElem>::abt_chunk_simd(a, k, bh, n, chunk, range) }
                } else {
                    matmul_a_bt_chunk(a, k, bh, n, chunk, range);
                }
            });
        });
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise in-place map.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self += other`, element-wise.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        crate::axpy(1.0, &other.data, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        crate::l2_norm(&self.data)
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels (generic over panel storage; `E = f32` is the
// pre-SIMD kernel unchanged — `to_f32` is the identity there).
// ---------------------------------------------------------------------------

/// `matmul` kernel for one chunk of output rows: for each panel of packed
/// `B`, accumulate the chunk's rows with the shared dimension unrolled by
/// four. Per output element the adds run in ascending-`kk` order — one
/// scalar at a time into the same accumulator — so unrolling changes
/// instruction scheduling, never arithmetic order.
fn matmul_chunk<E: Element>(
    a: &[f32],
    k: usize,
    bp: &[E],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    for jb in (0..n).step_by(PANEL_COLS) {
        let jw = (n - jb).min(PANEL_COLS);
        let panel = &bp[jb * k..jb * k + k * jw];
        for (local, i) in range.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut chunk[local * n + jb..local * n + jb + jw];
            let mut kk = 0;
            while kk + 4 <= k {
                let a0 = a_row[kk];
                let a1 = a_row[kk + 1];
                let a2 = a_row[kk + 2];
                let a3 = a_row[kk + 3];
                let b0 = &panel[kk * jw..(kk + 1) * jw];
                let b1 = &panel[(kk + 1) * jw..(kk + 2) * jw];
                let b2 = &panel[(kk + 2) * jw..(kk + 3) * jw];
                let b3 = &panel[(kk + 3) * jw..(kk + 4) * jw];
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o += a0 * v0.to_f32();
                    *o += a1 * v1.to_f32();
                    *o += a2 * v2.to_f32();
                    *o += a3 * v3.to_f32();
                }
                kk += 4;
            }
            while kk < k {
                let a0 = a_row[kk];
                let b0 = &panel[kk * jw..(kk + 1) * jw];
                for (o, &v0) in out_row.iter_mut().zip(b0) {
                    *o += a0 * v0.to_f32();
                }
                kk += 1;
            }
        }
    }
}

/// `matmul_at_b` kernel for one chunk of output rows (a `kk` band): stream
/// the shared `m` dimension in cache blocks, four input rows per pass. The
/// packed `Aᵀ` makes each output row's coefficients contiguous; per output
/// element the accumulation order is ascending `i` on every path.
fn matmul_at_b_chunk<E: Element>(
    at: &[E],
    m: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    for ib in (0..m).step_by(BLOCK_ROWS) {
        let iend = (ib + BLOCK_ROWS).min(m);
        for (local, kk) in range.clone().enumerate() {
            let a_col = &at[kk * m..(kk + 1) * m];
            let out_row = &mut chunk[local * n..(local + 1) * n];
            let mut i = ib;
            while i + 4 <= iend {
                let a0 = a_col[i].to_f32();
                let a1 = a_col[i + 1].to_f32();
                let a2 = a_col[i + 2].to_f32();
                let a3 = a_col[i + 3].to_f32();
                let b0 = &b[i * n..(i + 1) * n];
                let b1 = &b[(i + 1) * n..(i + 2) * n];
                let b2 = &b[(i + 2) * n..(i + 3) * n];
                let b3 = &b[(i + 3) * n..(i + 4) * n];
                for ((((o, &v0), &v1), &v2), &v3) in
                    out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *o += a0 * v0;
                    *o += a1 * v1;
                    *o += a2 * v2;
                    *o += a3 * v3;
                }
                i += 4;
            }
            while i < iend {
                let a0 = a_col[i].to_f32();
                let b0 = &b[i * n..(i + 1) * n];
                for (o, &v0) in out_row.iter_mut().zip(b0) {
                    *o += a0 * v0;
                }
                i += 1;
            }
        }
    }
}

/// `matmul_a_bt` kernel for one chunk of output rows: `other`-rows are
/// cache-blocked, and within a block four output columns are produced per
/// pass with four independent accumulators (each an ascending-`k` chain
/// identical to [`crate::dot`]'s scalar path).
fn matmul_a_bt_chunk<E: Element>(
    a: &[f32],
    k: usize,
    b: &[E],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    for jb in (0..n).step_by(BLOCK_ROWS) {
        let jend = (jb + BLOCK_ROWS).min(n);
        for (local, i) in range.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut chunk[local * n..(local + 1) * n];
            let mut j = jb;
            while j + 4 <= jend {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut c0 = 0.0f32;
                let mut c1 = 0.0f32;
                let mut c2 = 0.0f32;
                let mut c3 = 0.0f32;
                for ((((&av, &v0), &v1), &v2), &v3) in a_row.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    c0 += av * v0.to_f32();
                    c1 += av * v1.to_f32();
                    c2 += av * v2.to_f32();
                    c3 += av * v3.to_f32();
                }
                out_row[j] = c0;
                out_row[j + 1] = c1;
                out_row[j + 2] = c2;
                out_row[j + 3] = c3;
                j += 4;
            }
            while j < jend {
                let b0 = &b[j * k..(j + 1) * k];
                let mut c0 = 0.0f32;
                for (&av, &v0) in a_row.iter().zip(b0) {
                    c0 += av * v0.to_f32();
                }
                out_row[j] = c0;
                j += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SIMD microkernels (AVX2+FMA via the f32x8 wrapper; called only when
// `simd::active()`). Each output element's accumulation chain depends only
// on global geometry (panel offsets, j-tile boundaries, shared-dimension
// blocks), never on how rows were chunked — that is the bit-identity-
// across-pool-sizes argument.
// ---------------------------------------------------------------------------

/// `matmul` row block: `RB` rows × 16/8/1 columns, accumulating the full
/// shared dimension in registers before one store. Per output element the
/// chain is `acc = fma(a[i,kk], b[kk,j], acc)` in ascending `kk` — the same
/// chain whether the row sits in a 6-row tile or the 1-row remainder, so
/// chunk splits can't change bits.
///
/// # Safety
/// Requires AVX2+FMA context; all indices in bounds (caller-maintained).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn mm_rows_simd<E: Element, const RB: usize>(
    ap: *const f32,
    k: usize,
    panel: *const E,
    jw: usize,
    cp: *mut f32,
    n: usize,
    jb: usize,
    a_row0: usize,
    c_row0: usize,
) {
    unsafe {
        let mut j = 0;
        while j + 16 <= jw {
            let mut acc = [[F32x8::zero(); 2]; RB];
            for kk in 0..k {
                let bk = panel.add(kk * jw + j);
                let b0 = E::load8(bk);
                let b1 = E::load8(bk.add(8));
                for (t, av) in acc.iter_mut().enumerate() {
                    let a = F32x8::splat(*ap.add((a_row0 + t) * k + kk));
                    av[0] = a.mul_add(b0, av[0]);
                    av[1] = a.mul_add(b1, av[1]);
                }
            }
            for (t, av) in acc.iter().enumerate() {
                let o = cp.add((c_row0 + t) * n + jb + j);
                av[0].store(o);
                av[1].store(o.add(8));
            }
            j += 16;
        }
        while j + 8 <= jw {
            let mut acc = [F32x8::zero(); RB];
            for kk in 0..k {
                let b0 = E::load8(panel.add(kk * jw + j));
                for (t, av) in acc.iter_mut().enumerate() {
                    let a = F32x8::splat(*ap.add((a_row0 + t) * k + kk));
                    *av = a.mul_add(b0, *av);
                }
            }
            for (t, av) in acc.iter().enumerate() {
                av.store(cp.add((c_row0 + t) * n + jb + j));
            }
            j += 8;
        }
        while j < jw {
            for t in 0..RB {
                let mut s = 0.0f32;
                for kk in 0..k {
                    s = (*ap.add((a_row0 + t) * k + kk))
                        .mul_add((*panel.add(kk * jw + j)).to_f32(), s);
                }
                *cp.add((c_row0 + t) * n + jb + j) = s;
            }
            j += 1;
        }
    }
}

/// `matmul` SIMD chunk kernel: same panel walk as the scalar kernel, rows
/// in [`MM_MR`]-high register tiles with a 1-row remainder path.
#[inline(always)]
unsafe fn mm_chunk_simd_impl<E: Element>(
    a: &[f32],
    k: usize,
    bp: &[E],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    let rows = range.len();
    let ap = a.as_ptr();
    let cp = chunk.as_mut_ptr();
    for jb in (0..n).step_by(PANEL_COLS) {
        let jw = (n - jb).min(PANEL_COLS);
        let panel = bp[jb * k..jb * k + k * jw].as_ptr();
        let mut r = 0;
        unsafe {
            while r + MM_MR <= rows {
                mm_rows_simd::<E, MM_MR>(ap, k, panel, jw, cp, n, jb, range.start + r, r);
                r += MM_MR;
            }
            while r < rows {
                mm_rows_simd::<E, 1>(ap, k, panel, jw, cp, n, jb, range.start + r, r);
                r += 1;
            }
        }
    }
}

/// `matmul_at_b` row block: `RB` output rows × 16/8/1 columns over one
/// shared-dimension cache block, register accumulation then one
/// `+=` into the output. Per element: per block, `o += (fma chain over
/// ascending i)` — block boundaries are global ([`BLOCK_ROWS`]), so the
/// chain shape is chunk-independent.
///
/// # Safety
/// Requires AVX2+FMA context; all indices in bounds (caller-maintained).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn atb_rows_simd<E: Element, const RB: usize>(
    at: *const E,
    m: usize,
    bp: *const f32,
    n: usize,
    cp: *mut f32,
    ib: usize,
    iend: usize,
    at_row0: usize,
    c_row0: usize,
) {
    unsafe {
        let mut j = 0;
        while j + 16 <= n {
            let mut acc = [[F32x8::zero(); 2]; RB];
            for i in ib..iend {
                let b = bp.add(i * n + j);
                let b0 = F32x8::load(b);
                let b1 = F32x8::load(b.add(8));
                for (t, av) in acc.iter_mut().enumerate() {
                    let a = F32x8::splat((*at.add((at_row0 + t) * m + i)).to_f32());
                    av[0] = a.mul_add(b0, av[0]);
                    av[1] = a.mul_add(b1, av[1]);
                }
            }
            for (t, av) in acc.iter().enumerate() {
                let o = cp.add((c_row0 + t) * n + j);
                F32x8::load(o).add(av[0]).store(o);
                F32x8::load(o.add(8)).add(av[1]).store(o.add(8));
            }
            j += 16;
        }
        while j + 8 <= n {
            let mut acc = [F32x8::zero(); RB];
            for i in ib..iend {
                let b0 = F32x8::load(bp.add(i * n + j));
                for (t, av) in acc.iter_mut().enumerate() {
                    let a = F32x8::splat((*at.add((at_row0 + t) * m + i)).to_f32());
                    *av = a.mul_add(b0, *av);
                }
            }
            for (t, av) in acc.iter().enumerate() {
                let o = cp.add((c_row0 + t) * n + j);
                F32x8::load(o).add(*av).store(o);
            }
            j += 8;
        }
        while j < n {
            for t in 0..RB {
                let mut s = 0.0f32;
                for i in ib..iend {
                    s = ((*at.add((at_row0 + t) * m + i)).to_f32()).mul_add(*bp.add(i * n + j), s);
                }
                *cp.add((c_row0 + t) * n + j) += s;
            }
            j += 1;
        }
    }
}

/// `matmul_at_b` SIMD chunk kernel: shared-dimension blocks outermost (as
/// in the scalar kernel), output rows in [`ATB_MR`]-high register tiles.
#[inline(always)]
unsafe fn atb_chunk_simd_impl<E: Element>(
    at: &[E],
    m: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    let rows = range.len();
    let atp = at.as_ptr();
    let bp = b.as_ptr();
    let cp = chunk.as_mut_ptr();
    for ib in (0..m).step_by(BLOCK_ROWS) {
        let iend = (ib + BLOCK_ROWS).min(m);
        let mut r = 0;
        unsafe {
            while r + ATB_MR <= rows {
                atb_rows_simd::<E, ATB_MR>(atp, m, bp, n, cp, ib, iend, range.start + r, r);
                r += ATB_MR;
            }
            while r < rows {
                atb_rows_simd::<E, 1>(atp, m, bp, n, cp, ib, iend, range.start + r, r);
                r += 1;
            }
        }
    }
}

/// `matmul_a_bt` SIMD chunk kernel: one [`simd::dot_lanes`] call per
/// output element (the exact helper [`crate::dot`] dispatches to), with
/// the scalar kernel's `other`-row cache blocking.
#[inline(always)]
unsafe fn abt_chunk_simd_impl<E: Element>(
    a: &[f32],
    k: usize,
    b: &[E],
    n: usize,
    chunk: &mut [f32],
    range: Range<usize>,
) {
    for jb in (0..n).step_by(BLOCK_ROWS) {
        let jend = (jb + BLOCK_ROWS).min(n);
        for (local, i) in range.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut chunk[local * n..(local + 1) * n];
            for (o, j) in out_row[jb..jend].iter_mut().zip(jb..jend) {
                // SAFETY: caller is in an AVX2+FMA context.
                *o = unsafe { simd::dot_lanes::<E>(a_row, &b[j * k..(j + 1) * k]) };
            }
        }
    }
}

// Target-feature entry points: `#[target_feature]` cannot sit on trait
// methods or (portably) on generic fns, so each (kernel, element) pair
// gets a monomorphic wrapper the `PanelElem` impls forward to. The
// `#[inline(always)]` impl bodies compile *inside* these wrappers and so
// inherit the enabled features.
macro_rules! simd_entry {
    ($name:ident, $impl_fn:ident, $e:ty, ($($arg:ident: $ty:ty),*)) => {
        /// # Safety
        /// The executing CPU must support AVX2+FMA.
        #[cfg_attr(target_arch = "x86_64", target_feature(enable = "avx2,fma"))]
        unsafe fn $name($($arg: $ty),*) {
            unsafe { $impl_fn::<$e>($($arg),*) }
        }
    };
}

simd_entry!(mm_chunk_simd_f32, mm_chunk_simd_impl, f32,
    (a: &[f32], k: usize, bp: &[f32], n: usize, chunk: &mut [f32], range: Range<usize>));
simd_entry!(mm_chunk_simd_bf16, mm_chunk_simd_impl, u16,
    (a: &[f32], k: usize, bp: &[u16], n: usize, chunk: &mut [f32], range: Range<usize>));
simd_entry!(atb_chunk_simd_f32, atb_chunk_simd_impl, f32,
    (at: &[f32], m: usize, b: &[f32], n: usize, chunk: &mut [f32], range: Range<usize>));
simd_entry!(atb_chunk_simd_bf16, atb_chunk_simd_impl, u16,
    (at: &[u16], m: usize, b: &[f32], n: usize, chunk: &mut [f32], range: Range<usize>));
simd_entry!(abt_chunk_simd_f32, abt_chunk_simd_impl, f32,
    (a: &[f32], k: usize, b: &[f32], n: usize, chunk: &mut [f32], range: Range<usize>));
simd_entry!(abt_chunk_simd_bf16, abt_chunk_simd_impl, u16,
    (a: &[f32], k: usize, b: &[u16], n: usize, chunk: &mut [f32], range: Range<usize>));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.row(0), &[58.0, 64.0]);
        assert_eq!(c.row(1), &[139.0, 154.0]);
    }

    #[test]
    fn transposed_matmuls_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.5, 2.0], &[3.0, 1.0, 0.0], &[2.0, 2.0, 1.0]]);
        let want_atb = a.transpose().matmul(&b);
        assert_eq!(a.matmul_at_b(&b), want_atb);

        let c = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]); // 2x2
        let d = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 0.5], &[0.0, 3.0]]); // 3x2
        let want_abt = c.matmul(&d.transpose());
        assert_eq!(c.matmul_a_bt(&d), want_abt);
    }

    #[test]
    fn parallel_matmul_matches_serial() {
        // Force the parallel path with > PAR_THRESHOLD rows.
        let m = 300;
        let k = 17;
        let n = 23;
        let a = Matrix::from_vec(m, k, (0..m * k).map(|i| (i % 13) as f32 - 6.0).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| (i % 7) as f32 * 0.25).collect());
        let par = a.matmul(&b);
        // Serial reference.
        let mut serial = Matrix::zeros(m, n);
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    let v = serial.get(i, j) + a.get(i, kk) * b.get(kk, j);
                    serial.set(i, j, v);
                }
            }
        }
        for i in 0..m {
            for j in 0..n {
                assert!((par.get(i, j) - serial.get(i, j)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn parallel_matmul_at_b_bit_identical_to_serial() {
        // Force the parallel path with > PAR_THRESHOLD output rows
        // (self.cols) and > BLOCK_ROWS shared rows so blocking engages.
        let m = 150;
        let k = 160;
        let n = 19;
        // Sprinkle exact zeros so dropping the old zero-skip branch is
        // exercised against the branch-free reference.
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k)
                .map(|i| {
                    if i % 5 == 0 {
                        0.0
                    } else {
                        (i % 13) as f32 - 6.0
                    }
                })
                .collect(),
        );
        let b = Matrix::from_vec(
            m,
            n,
            (0..m * n).map(|i| (i % 7) as f32 * 0.25 - 0.5).collect(),
        );
        let par = a.matmul_at_b(&b);
        // The pooled auto-backend result must match the serial (parts = 1)
        // auto-backend result bit-for-bit — the pool-invariance contract
        // holds on whichever backend the host selects.
        let mut serial = Matrix::zeros(k, n);
        a.matmul_at_b_into_parts(&b, &mut serial, 1);
        assert_eq!(par, serial);
        // And the scalar reference (branch-free ascending-i accumulation)
        // agrees within the documented tolerance — bitwise when the host
        // has no SIMD, within the FMA/reduction ULP bound otherwise.
        let mut reference = Matrix::zeros(k, n);
        for i in 0..m {
            for kk in 0..k {
                let av = a.get(i, kk);
                for j in 0..n {
                    let v = reference.get(kk, j) + av * b.get(i, j);
                    reference.set(kk, j, v);
                }
            }
        }
        for kk in 0..k {
            for j in 0..n {
                let (x, y) = (par.get(kk, j), reference.get(kk, j));
                assert!(
                    (x - y).abs() <= 1e-3 + y.abs() * 1e-5,
                    "({kk},{j}): {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn parallel_matmul_a_bt_bit_identical_to_serial() {
        // Force the parallel path with > PAR_THRESHOLD rows and
        // > BLOCK_ROWS columns in the output so the j-blocking engages.
        let m = 140;
        let k = 21;
        let n = 130;
        let a = Matrix::from_vec(
            m,
            k,
            (0..m * k).map(|i| (i % 11) as f32 * 0.5 - 2.0).collect(),
        );
        let b = Matrix::from_vec(n, k, (0..n * k).map(|i| (i % 9) as f32 - 4.0).collect());
        let par = a.matmul_a_bt(&b);
        // Serial reference: one `dot` per element — both backends route the
        // kernel and `dot` through the same per-element chain, so this is
        // bitwise on SIMD hosts and scalar hosts alike.
        let mut serial = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                serial.set(i, j, crate::dot(a.row(i), b.row(j)));
            }
        }
        assert_eq!(par, serial);
    }

    #[test]
    fn into_variants_overwrite_stale_output() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut out = Matrix::from_rows(&[&[9.0, 9.0], &[9.0, 9.0]]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a);
        a.matmul_at_b_into(&b, &mut out);
        assert_eq!(out, a.transpose().matmul(&b));
        a.matmul_a_bt_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b.transpose()));
    }

    #[test]
    fn mixed_matmuls_agree_with_f32_within_bf16_tolerance() {
        // bf16 keeps 8 mantissa bits → relative error ~2^-8 per stored
        // element of the packed operand; the identity-`B` product is exact.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let id = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut out = Matrix::from_rows(&[&[9.0, 9.0], &[9.0, 9.0]]);
        a.matmul_mixed_into(&id, &mut out);
        assert_eq!(out, a, "identity is exact in bf16");
        a.matmul_at_b_mixed_into(&id, &mut out);
        assert_eq!(out, a.transpose(), "Aᵀ·I with bf16 Aᵀ of exact values");
        a.matmul_a_bt_mixed_into(&id, &mut out);
        assert_eq!(out, a);

        // Random-ish values: relative tolerance 2^-7 (one bf16 ulp of the
        // operand plus accumulation slack).
        let m = 50;
        let k = 40;
        let n = 30;
        let x = Matrix::from_vec(
            m,
            k,
            (0..m * k).map(|i| (i % 23) as f32 * 0.21 - 2.0).collect(),
        );
        let w = Matrix::from_vec(
            k,
            n,
            (0..k * n).map(|i| (i % 17) as f32 * 0.13 - 1.0).collect(),
        );
        let full = x.matmul(&w);
        let mixed = x.matmul_mixed(&w);
        for (f, g) in full.as_slice().iter().zip(mixed.as_slice()) {
            assert!(
                (f - g).abs() <= f.abs() * (1.0 / 128.0) + 0.05,
                "{f} vs {g}"
            );
        }
    }

    #[test]
    fn precision_knob_dispatches() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let mut f32_out = Matrix::zeros(2, 2);
        let mut mixed_out = Matrix::zeros(2, 2);
        a.matmul_into_prec(&b, &mut f32_out, Precision::F32);
        a.matmul_into_prec(&b, &mut mixed_out, Precision::Mixed);
        assert_eq!(f32_out, a);
        assert_eq!(mixed_out, a);
        a.matmul_at_b_into_prec(&b, &mut f32_out, Precision::F32);
        a.matmul_at_b_into_prec(&b, &mut mixed_out, Precision::Mixed);
        assert_eq!(f32_out, mixed_out);
        a.matmul_a_bt_into_prec(&b, &mut f32_out, Precision::F32);
        a.matmul_a_bt_into_prec(&b, &mut mixed_out, Precision::Mixed);
        assert_eq!(f32_out, mixed_out);
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 4);
        let mut out = Matrix::zeros(2, 3);
        a.matmul_into(&b, &mut out);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_matmul_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_assign_and_norm() {
        let mut a = Matrix::from_rows(&[&[3.0, 0.0]]);
        let b = Matrix::from_rows(&[&[0.0, 4.0]]);
        a.add_assign(&b);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
