//! Model parallelism and GPU memory capacity (paper Section VI-B outlook).
//!
//! The paper closes its communication analysis with: "models larger than
//! BERT-large become communication-bound for the widely used data-parallel
//! training on Summit. High-performance interconnect and/or **generic model
//! parallelization is essential** for good scaling efficiency on future
//! platforms," and notes that commercial transformers had already "scaled
//! past the trillion parameter mark". This module makes that outlook
//! quantitative:
//!
//! * [`MemoryModel`] — per-GPU memory demand of training (parameters,
//!   gradients, optimizer state, activations) and whether a strategy fits
//!   the V100's HBM;
//! * [`ParallelStrategy`] — a (data, tensor, pipeline) decomposition with
//!   its communication costs: tensor-parallel activation allreduces per
//!   layer (NVLink inside the node, InfiniBand across), the pipeline bubble
//!   `(pp−1)/(mb+pp−1)`, and the data-parallel gradient ring over a
//!   `1/(tp·pp)`-sized message;
//! * [`HybridPlanner`] — exhaustive search over feasible strategies for a
//!   model/GPU budget, maximizing modelled throughput.
//!
//! Tested headlines: BERT-large still fits pure data parallelism; a
//! 10 B-parameter transformer does not fit one V100 and the planner
//! selects model parallelism; at the trillion-parameter mark even one full
//! Summit node cannot hold the weights, so pipeline depth is forced.

use serde::Serialize;
use summit_machine::spec::NodeSpec;
use summit_workloads::Workload;

/// Bytes of optimizer state per parameter (fp32 master copies included).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum OptimizerFootprint {
    /// Plain SGD: parameter + gradient only.
    Sgd,
    /// Momentum SGD (LARS/LARC): + 4 bytes velocity.
    Momentum,
    /// Adam/LAMB: + 8 bytes (m, v).
    Adam,
}

impl OptimizerFootprint {
    /// Bytes per parameter including the fp32 parameter and gradient.
    pub fn bytes_per_param(self) -> f64 {
        match self {
            OptimizerFootprint::Sgd => 8.0,
            OptimizerFootprint::Momentum => 12.0,
            OptimizerFootprint::Adam => 16.0,
        }
    }
}

/// Per-GPU training memory demand.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MemoryModel {
    /// Model parameter count.
    pub params: f64,
    /// Activation bytes per sample held for the backward pass. The default
    /// heuristic (see [`MemoryModel::for_workload`]) is
    /// `flops_per_sample / 2000` — activation *checkpointing* is assumed
    /// (standard practice at scale: only layer-boundary activations are
    /// stored and the rest recomputed), which keeps roughly one byte per
    /// two thousand training FLOPs resident.
    pub activation_bytes_per_sample: f64,
    /// Optimizer footprint.
    pub optimizer: OptimizerFootprint,
}

impl MemoryModel {
    /// Memory model of a zoo workload (Adam-class optimizer, heuristic
    /// activation size).
    pub fn for_workload(w: &Workload) -> Self {
        MemoryModel {
            params: w.params,
            activation_bytes_per_sample: w.flops_per_sample / 2000.0,
            optimizer: OptimizerFootprint::Adam,
        }
    }

    /// Bytes per GPU under a strategy with micro-batch `batch`.
    ///
    /// Weights/gradients/optimizer state shard over tensor × pipeline ways;
    /// activations shard over tensor ways only (each pipeline stage holds
    /// its own stage's activations, which the per-stage parameter share
    /// already accounts for).
    pub fn bytes_per_gpu(&self, strategy: &ParallelStrategy, batch: u32) -> f64 {
        let model_ways = f64::from(strategy.tensor * strategy.pipeline);
        let state = self.params * self.optimizer.bytes_per_param() / model_ways;
        let acts = self.activation_bytes_per_sample * f64::from(batch)
            / f64::from(strategy.tensor)
            / f64::from(strategy.pipeline);
        state + acts
    }

    /// Whether the strategy fits a GPU with `hbm_bytes` of device memory at
    /// micro-batch `batch`.
    pub fn fits(&self, strategy: &ParallelStrategy, batch: u32, hbm_bytes: f64) -> bool {
        self.bytes_per_gpu(strategy, batch) <= hbm_bytes
    }

    /// The largest micro-batch that fits, if any.
    pub fn max_micro_batch(&self, strategy: &ParallelStrategy, hbm_bytes: f64) -> Option<u32> {
        if !self.fits(strategy, 1, hbm_bytes) {
            return None;
        }
        let model_ways = f64::from(strategy.tensor * strategy.pipeline);
        let state = self.params * self.optimizer.bytes_per_param() / model_ways;
        let per_sample = self.activation_bytes_per_sample
            / f64::from(strategy.tensor)
            / f64::from(strategy.pipeline);
        Some(((hbm_bytes - state) / per_sample).floor().max(1.0) as u32)
    }
}

/// A (data, tensor, pipeline) parallel decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ParallelStrategy {
    /// Data-parallel replicas.
    pub data: u32,
    /// Tensor-parallel ways (≤ GPUs per node to stay on NVLink).
    pub tensor: u32,
    /// Pipeline stages.
    pub pipeline: u32,
    /// Micro-batches in flight per pipeline flush.
    pub micro_batches: u32,
}

impl ParallelStrategy {
    /// Pure data parallelism over `gpus` GPUs.
    pub fn pure_data(gpus: u32) -> Self {
        ParallelStrategy {
            data: gpus,
            tensor: 1,
            pipeline: 1,
            micro_batches: 1,
        }
    }

    /// Total GPUs used.
    pub fn gpus(&self) -> u32 {
        self.data * self.tensor * self.pipeline
    }

    /// The pipeline bubble fraction `(pp−1)/(mb+pp−1)` (GPipe schedule).
    pub fn bubble_fraction(&self) -> f64 {
        if self.pipeline <= 1 {
            return 0.0;
        }
        let pp = f64::from(self.pipeline);
        let mb = f64::from(self.micro_batches.max(1));
        (pp - 1.0) / (mb + pp - 1.0)
    }
}

/// Throughput estimate of a strategy for one workload on Summit-like nodes.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct StrategyEstimate {
    /// The strategy evaluated.
    pub strategy: ParallelStrategy,
    /// Micro-batch per GPU that fits memory.
    pub micro_batch: u32,
    /// Global samples/s.
    pub throughput: f64,
    /// Fraction of step time lost to exposed communication + bubble.
    pub overhead_fraction: f64,
}

/// Exhaustive planner over feasible (data, tensor, pipeline) splits.
#[derive(Debug, Clone, Copy)]
pub struct HybridPlanner {
    /// Node type (for HBM size, NVLink and injection bandwidths).
    pub node: NodeSpec,
    /// Total GPUs available.
    pub gpus: u32,
    /// Single-GPU sustained training rate, FLOP/s (shared by all shards).
    pub sustained_flops_per_gpu: f64,
}

impl HybridPlanner {
    /// A planner for `nodes` Summit nodes at a given sustained rate.
    pub fn summit(nodes: u32, sustained_flops_per_gpu: f64) -> Self {
        let node = NodeSpec::summit();
        HybridPlanner {
            node,
            gpus: nodes * node.gpus_per_node,
            sustained_flops_per_gpu,
        }
    }

    /// Estimate a strategy for a workload, or `None` if it does not fit
    /// memory or exceeds the GPU budget.
    pub fn estimate(&self, w: &Workload, strategy: ParallelStrategy) -> Option<StrategyEstimate> {
        if strategy.gpus() > self.gpus || strategy.gpus() == 0 {
            return None;
        }
        if strategy.tensor > self.node.gpus_per_node {
            return None; // tensor parallelism must stay on NVLink
        }
        let mem = MemoryModel::for_workload(w);
        let micro_batch = mem.max_micro_batch(&strategy, self.node.gpu.hbm_bytes)?;
        // Cap the micro-batch at the workload's reference batch: growing it
        // further does not speed up a fixed-epoch budget.
        let micro_batch = micro_batch.min(w.per_gpu_batch.max(1));

        // Compute time per micro-batch on one model shard.
        let shard_flops = w.flops_per_sample / f64::from(strategy.tensor * strategy.pipeline);
        let t_compute = f64::from(micro_batch) * shard_flops / self.sustained_flops_per_gpu;

        // Tensor-parallel activation allreduce per micro-batch: two
        // allreduces of the activations per (conceptual) layer group,
        // modelled as one aggregate exchange of the activation volume over
        // NVLink.
        let t_tp = if strategy.tensor > 1 {
            let act_bytes = mem.activation_bytes_per_sample * f64::from(micro_batch)
                / f64::from(strategy.tensor);
            let tp = f64::from(strategy.tensor);
            2.0 * (tp - 1.0) / tp * act_bytes / self.node.nvlink_bw
        } else {
            0.0
        };

        // Pipeline bubble stretches the step.
        let mb = f64::from(strategy.micro_batches.max(1));
        let t_stage = (t_compute + t_tp) * mb;
        let t_pipeline = t_stage / (1.0 - strategy.bubble_fraction());

        // Data-parallel gradient allreduce over the sharded message.
        let t_dp = if strategy.data > 1 {
            let msg = w.gradient_message_bytes() / f64::from(strategy.tensor * strategy.pipeline);
            let d = f64::from(strategy.data);
            2.0 * (d - 1.0) / d * msg / self.node.injection_bw
        } else {
            0.0
        };

        let t_step = t_pipeline + t_dp;
        let samples_per_step = f64::from(micro_batch) * mb * f64::from(strategy.data);
        let ideal = f64::from(micro_batch) * mb * f64::from(strategy.data) / (t_compute * mb);
        let throughput = samples_per_step / t_step;
        Some(StrategyEstimate {
            strategy,
            micro_batch,
            throughput,
            overhead_fraction: 1.0 - (throughput / ideal).min(1.0),
        })
    }

    /// Search all feasible strategies and return the best by throughput.
    /// Tensor ways are drawn from the divisors of a node (1, 2, 3, 6);
    /// pipeline depths are powers of two up to 64; micro-batch count is
    /// fixed at 8 per flush.
    pub fn best(&self, w: &Workload) -> Option<StrategyEstimate> {
        let mut best: Option<StrategyEstimate> = None;
        for &tensor in &[1u32, 2, 3, 6] {
            for pipeline in [1u32, 2, 4, 8, 16, 32, 64] {
                let ways = tensor * pipeline;
                if ways > self.gpus {
                    continue;
                }
                let data = self.gpus / ways;
                if data == 0 {
                    continue;
                }
                let strategy = ParallelStrategy {
                    data,
                    tensor,
                    pipeline,
                    micro_batches: 8,
                };
                if let Some(est) = self.estimate(w, strategy) {
                    if best.is_none_or(|b| est.throughput > b.throughput) {
                        best = Some(est);
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_workloads::zoo::Workload;

    fn planner(nodes: u32) -> HybridPlanner {
        HybridPlanner::summit(nodes, 30.0e12)
    }

    #[test]
    fn bert_large_fits_pure_data_parallel() {
        let w = Workload::bert_large();
        let p = planner(64);
        let est = p
            .estimate(&w, ParallelStrategy::pure_data(p.gpus))
            .expect("BERT-large fits one V100 with Adam state");
        assert!(est.micro_batch >= 1);
        // And the planner agrees pure DP (or near) is fine at this size.
        let best = p.best(&w).expect("feasible");
        assert!(best.throughput >= est.throughput);
    }

    #[test]
    fn ten_billion_params_need_model_parallelism() {
        let w = Workload::transformer_lm("GPT-10B", 10.0e9);
        let p = planner(256);
        // Pure data parallelism cannot hold 10B × 16 B = 160 GB on 16 GB.
        assert!(p
            .estimate(&w, ParallelStrategy::pure_data(p.gpus))
            .is_none());
        let best = p.best(&w).expect("hybrid strategy exists");
        // 10B × 16 B/param = 160 GB of state needs ≥10 model-parallel ways
        // on 16 GB V100s.
        assert!(
            best.strategy.tensor * best.strategy.pipeline >= 10,
            "model ways {}x{}",
            best.strategy.tensor,
            best.strategy.pipeline
        );
    }

    #[test]
    fn trillion_params_force_deep_pipelines() {
        // "transformer-based language models have scaled past the trillion
        // parameter mark and require tightly integrated HPC systems of
        // similar scale" — on V100s, 1T params (16 TB of state) needs ≥1000
        // model-parallel ways; with tensor ≤ 6 that forces pipeline > 64,
        // beyond our planner's range on Summit-class nodes.
        let w = Workload::transformer_lm("GPT-1T", 1.0e12);
        let p = planner(4608);
        // Even a full node (6-way tensor parallel) cannot hold a shard
        // without a deep pipeline:
        let node_only = ParallelStrategy {
            data: 1,
            tensor: 6,
            pipeline: 1,
            micro_batches: 1,
        };
        let mem = MemoryModel::for_workload(&w);
        assert!(!mem.fits(&node_only, 1, p.node.gpu.hbm_bytes));
        // A 6 × 256 decomposition (1536 model ways) does fit.
        let deep = ParallelStrategy {
            data: 1,
            tensor: 6,
            pipeline: 256,
            micro_batches: 8,
        };
        assert!(mem.fits(&deep, 1, p.node.gpu.hbm_bytes));
    }

    #[test]
    fn bubble_fraction_shrinks_with_micro_batches() {
        let mut s = ParallelStrategy {
            data: 1,
            tensor: 1,
            pipeline: 8,
            micro_batches: 1,
        };
        let b1 = s.bubble_fraction();
        s.micro_batches = 32;
        let b32 = s.bubble_fraction();
        assert!(b1 > 0.8 && b32 < 0.2, "{b1} vs {b32}");
        s.pipeline = 1;
        assert_eq!(s.bubble_fraction(), 0.0);
    }

    #[test]
    fn memory_shards_with_model_ways() {
        let w = Workload::bert_large();
        let mem = MemoryModel::for_workload(&w);
        let pure = ParallelStrategy::pure_data(8);
        let sharded = ParallelStrategy {
            data: 2,
            tensor: 2,
            pipeline: 2,
            micro_batches: 4,
        };
        assert!(mem.bytes_per_gpu(&sharded, 1) < mem.bytes_per_gpu(&pure, 1));
        // 4× model ways → ~4× less state.
        let ratio = mem.bytes_per_gpu(&pure, 1) / mem.bytes_per_gpu(&sharded, 1);
        assert!(ratio > 3.0 && ratio <= 4.001, "ratio {ratio}");
    }

    #[test]
    fn planner_respects_gpu_budget() {
        let w = Workload::resnet50();
        let p = planner(4);
        let best = p.best(&w).expect("feasible");
        assert!(best.strategy.gpus() <= p.gpus);
    }

    #[test]
    fn hybrid_beats_infeasible_but_also_helps_throughput() {
        // For a model right at the memory edge, sharding state frees room
        // for larger micro-batches and can win on throughput too.
        let w = Workload::transformer_lm("GPT-3B", 3.0e9);
        let p = planner(128);
        let best = p.best(&w).expect("feasible");
        let pure = p.estimate(&w, ParallelStrategy::pure_data(p.gpus));
        match pure {
            None => assert!(best.strategy.tensor * best.strategy.pipeline > 1),
            Some(pure) => assert!(best.throughput >= pure.throughput),
        }
    }

    #[test]
    fn optimizer_footprints_ordered() {
        assert!(
            OptimizerFootprint::Sgd.bytes_per_param()
                < OptimizerFootprint::Momentum.bytes_per_param()
        );
        assert!(
            OptimizerFootprint::Momentum.bytes_per_param()
                < OptimizerFootprint::Adam.bytes_per_param()
        );
    }
}
