//! Training-framework benchmarks (ablation 5 of DESIGN.md and experiment
//! X2: large-batch optimizer behavior).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use summit_dl::{
    data::blobs,
    model::MlpSpec,
    optim::{Adam, Lamb, Larc, Lars, Optimizer, Sgd},
    schedule::LrSchedule,
    trainer::{DataParallelTrainer, Trainer},
};

fn make_optimizer(name: &str) -> Box<dyn Optimizer> {
    match name {
        "sgd" => Box::new(Sgd::new(0.05, 0.9, 0.0)),
        "adam" => Box::new(Adam::new(0.005, 0.0)),
        "lars" => Box::new(Lars::new(1.0, 0.9, 1e-4, 0.02)),
        "larc" => Box::new(Larc::new(0.5, 0.9, 1e-4, 0.02)),
        "lamb" => Box::new(Lamb::new(0.02, 1e-4)),
        _ => unreachable!("unknown optimizer"),
    }
}

/// Ablation 5: optimizer × batch size on the real trainer.
fn ablation_optimizers(c: &mut Criterion) {
    let task = blobs(1024, 8, 3, 0.5, 5);
    println!("[ablation 5] loss after 10 epochs, optimizer x batch size:");
    print!("{:>8}", "batch");
    for name in ["sgd", "adam", "lars", "larc", "lamb"] {
        print!("{name:>9}");
    }
    println!();
    for batch in [16usize, 128, 1024] {
        print!("{batch:>8}");
        for name in ["sgd", "adam", "lars", "larc", "lamb"] {
            let mut t = Trainer::new(
                MlpSpec::new(8, &[32], 3).build(1),
                make_optimizer(name),
                LrSchedule::LinearWarmup { warmup_steps: 10 },
            );
            let mut loss = f32::NAN;
            for _ in 0..10 {
                loss = t.train_epoch(&task.x, &task.y, batch).loss;
            }
            print!("{loss:>9.3}");
        }
        println!();
    }

    let mut group = c.benchmark_group("optimizers");
    group.sample_size(10);
    for name in ["sgd", "adam", "lars", "larc", "lamb"] {
        group.bench_with_input(BenchmarkId::new("epoch", name), name, |b, name| {
            b.iter_batched(
                || {
                    Trainer::new(
                        MlpSpec::new(8, &[32], 3).build(1),
                        make_optimizer(name),
                        LrSchedule::Constant,
                    )
                },
                |mut t| t.train_epoch(&task.x, &task.y, 128),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

/// X2 support: data-parallel step cost vs rank count (threads).
fn data_parallel(c: &mut Criterion) {
    let task = blobs(512, 8, 2, 0.4, 9);
    let spec = MlpSpec::new(8, &[64], 2);
    let mut group = c.benchmark_group("data_parallel");
    group.sample_size(10);
    for ranks in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("epoch", ranks), &ranks, |b, &ranks| {
            let dp = DataParallelTrainer::new(ranks, 64 / ranks);
            b.iter(|| {
                dp.run(
                    || spec.build(7),
                    || Box::new(Sgd::new(0.05, 0.9, 0.0)) as Box<dyn Optimizer>,
                    LrSchedule::Constant,
                    &task.x,
                    &task.y,
                    1,
                )
            })
        });
    }
    group.finish();
}

/// Tentpole measurement: per-layer allreduce vs fused bucketed allreduce of
/// the same gradient volume, plus a full trainer epoch across fusion bucket
/// sizes. The sync microbench isolates what fusion changes — many small
/// collectives vs one bucketed pass over a flat buffer — on a ~1 MB gradient
/// (10 parameter groups, the shape of a deep MLP). The bucket sweep here is
/// what the `FusionConfig::default()` bucket size is calibrated against.
fn gradient_fusion(c: &mut Criterion) {
    use summit_comm::collectives::{ring_allreduce, ring_allreduce_bucketed, ReduceOp};
    use summit_comm::world::World;
    use summit_dl::trainer::FusionConfig;

    // Per-group gradient sizes of MlpSpec::new(64, &[256; 4], 64): one
    // weight+bias group per layer, ~247K params = ~0.97 MB of fp32 grads.
    let dims = [64usize, 256, 256, 256, 256, 64];
    let sizes: Vec<usize> = dims.windows(2).map(|w| w[0] * w[1] + w[1]).collect();
    let total: usize = sizes.iter().sum();
    let p = 4;
    let rounds = 8;

    let mut group = c.benchmark_group("gradient_fusion");
    group.sample_size(10);
    group.bench_function("sync_per_layer", |b| {
        let sizes = sizes.clone();
        b.iter(|| {
            World::run(p, |rank| {
                let mut grads: Vec<Vec<f32>> = sizes.iter().map(|&s| vec![1.0; s]).collect();
                for _ in 0..rounds {
                    for g in &mut grads {
                        ring_allreduce(rank, g, ReduceOp::Sum);
                    }
                }
                grads[0][0]
            })
        })
    });
    for &bucket_bytes in &[
        16 * 1024usize,
        64 * 1024,
        256 * 1024,
        1024 * 1024,
        usize::MAX,
    ] {
        let label = if bucket_bytes == usize::MAX {
            "flat".to_string()
        } else {
            format!("{}KB", bucket_bytes / 1024)
        };
        group.bench_with_input(
            BenchmarkId::new("sync_fused", &label),
            &bucket_bytes,
            |b, &bucket_bytes| {
                let bucket_elems = FusionConfig { bucket_bytes }.bucket_elems();
                b.iter(|| {
                    World::run(p, |rank| {
                        let mut flat = vec![1.0f32; total];
                        for _ in 0..rounds {
                            ring_allreduce_bucketed(rank, &mut flat, ReduceOp::Sum, bucket_elems);
                        }
                        flat[0]
                    })
                })
            },
        );
    }

    // Overlap sweep: backward/communication overlap on vs off at equal
    // bucket sizes on the same ~0.97 MB-gradient model. Printed once: per-
    // step wall clock, rank 0's comm time, the exposed (un-hidden) comm
    // tail, and the measured overlap fraction
    // `1 − exposed_overlap / comm_serial` — the number that calibrates
    // `summit_perf::case_studies` and the README performance table.
    let task = blobs(512, 64, 4, 0.4, 11);
    let spec = MlpSpec::new(64, &[256, 256, 256, 256], 4);
    {
        use std::time::Instant;
        use summit_dl::trainer::OverlapConfig;

        // Best-of-3 trials: comm here is a modest slice of the step, so a
        // single noisy run can invert the wall-clock comparison.
        let run_once = |bucket_bytes: usize, enabled: bool| {
            let dp = DataParallelTrainer::new(4, 16)
                .with_fusion(FusionConfig { bucket_bytes })
                .with_overlap(OverlapConfig { enabled });
            let mut best: Option<(f64, summit_dl::trainer::ParallelOutcome)> = None;
            for _ in 0..3 {
                let t0 = Instant::now();
                let out = dp.run(
                    || spec.build(7),
                    || Box::new(Sgd::new(0.05, 0.9, 0.0)) as Box<dyn Optimizer>,
                    LrSchedule::Constant,
                    &task.x,
                    &task.y,
                    4,
                );
                let per_step = t0.elapsed().as_secs_f64() / f64::from(out.steps);
                if best.as_ref().is_none_or(|(t, _)| per_step < *t) {
                    best = Some((per_step, out));
                }
            }
            best.expect("three trials ran")
        };
        println!("[overlap sweep] MlpSpec(64,[256;4],4) (~0.97 MB grads), p=4, per-rank batch 16:");
        println!(
            "{:>8} {:>13} {:>13} {:>13} {:>13} {:>9}",
            "bucket", "serial ms/st", "overlap ms/st", "comm ms/st", "expsd ms/st", "overlap%"
        );
        for (label, bucket_bytes) in [
            ("64KB", 64 * 1024usize),
            ("256KB", 256 * 1024),
            ("flat", usize::MAX),
        ] {
            let (serial_step, serial_out) = run_once(bucket_bytes, false);
            let (overlap_step, overlap_out) = run_once(bucket_bytes, true);
            assert_eq!(
                serial_out.params, overlap_out.params,
                "overlap changed training results at bucket {label}"
            );
            let steps = f64::from(serial_out.steps);
            let frac = 1.0 - overlap_out.exposed_comm_seconds / serial_out.comm_seconds;
            println!(
                "{:>8} {:>13.3} {:>13.3} {:>13.3} {:>13.3} {:>8.1}%",
                label,
                serial_step * 1e3,
                overlap_step * 1e3,
                overlap_out.comm_seconds / steps * 1e3,
                overlap_out.exposed_comm_seconds / steps * 1e3,
                frac * 100.0
            );
        }
        for (label, bucket_bytes) in [("64KB", 64 * 1024usize), ("256KB", 256 * 1024)] {
            for (mode, enabled) in [("serial", false), ("overlap", true)] {
                group.bench_with_input(
                    BenchmarkId::new("overlap_epoch", format!("{mode}_{label}")),
                    &(bucket_bytes, enabled),
                    |b, &(bucket_bytes, enabled)| {
                        let dp = DataParallelTrainer::new(4, 16)
                            .with_fusion(FusionConfig { bucket_bytes })
                            .with_overlap(OverlapConfig { enabled });
                        b.iter(|| {
                            dp.run(
                                || spec.build(7),
                                || Box::new(Sgd::new(0.05, 0.9, 0.0)) as Box<dyn Optimizer>,
                                LrSchedule::Constant,
                                &task.x,
                                &task.y,
                                1,
                            )
                        })
                    },
                );
            }
        }
    }

    // Full trainer epoch: the fused path end to end, at the default bucket,
    // a deliberately tiny bucket, and the flat (single-bucket) extreme.
    for (label, bucket_bytes) in [
        ("4KB", 4 * 1024usize),
        ("default", FusionConfig::default().bucket_bytes),
        ("flat", usize::MAX),
    ] {
        group.bench_with_input(
            BenchmarkId::new("trainer_epoch", label),
            &bucket_bytes,
            |b, &bucket_bytes| {
                let dp = DataParallelTrainer::new(4, 16).with_fusion(FusionConfig { bucket_bytes });
                b.iter(|| {
                    dp.run(
                        || spec.build(7),
                        || Box::new(Sgd::new(0.05, 0.9, 0.0)) as Box<dyn Optimizer>,
                        LrSchedule::Constant,
                        &task.x,
                        &task.y,
                        1,
                    )
                })
            },
        );
    }
    group.finish();
}

/// Ablation 6: gradient compression — volume vs convergence.
fn ablation_compression(c: &mut Criterion) {
    use summit_dl::compression::{Compressor, GradCompression};
    use summit_tensor::ops;

    let schemes = [
        ("none", GradCompression::None),
        ("fp16", GradCompression::Fp16),
        ("top10%", GradCompression::TopK { fraction: 0.1 }),
        ("top1%", GradCompression::TopK { fraction: 0.01 }),
    ];
    println!("[ablation 6] gradient compression on a 25.6M-param message:");
    for (name, scheme) in schemes {
        println!(
            "  {:<7} {:>9.1} MB/message ({:>5.1}x reduction)",
            name,
            scheme.message_bytes(25_600_000) / 1e6,
            scheme.reduction_factor(25_600_000)
        );
    }

    let task = blobs(256, 6, 3, 0.4, 73);
    let mut group = c.benchmark_group("compression");
    group.sample_size(10);
    for (name, scheme) in schemes {
        group.bench_with_input(
            BenchmarkId::new("train_step", name),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || {
                        let model = MlpSpec::new(6, &[16], 3).build(5);
                        let n = model.param_count();
                        (model, Compressor::new(scheme, n))
                    },
                    |(mut model, mut comp)| {
                        let logits = model.forward(&task.x);
                        let (_, d) = ops::softmax_cross_entropy(logits, &task.y);
                        model.zero_grads();
                        model.backward(&d);
                        let mut flat = model.flat_grads();
                        comp.compress(&mut flat);
                        flat
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_optimizers,
    data_parallel,
    gradient_fusion,
    ablation_compression
);
criterion_main!(benches);
