//! Threads-as-ranks execution environment.
//!
//! [`World::run`] spawns `p` scoped threads, each holding a [`Rank`] handle
//! with point-to-point channels to every other rank and a shared barrier.
//! Channels are unbounded, so the classic "everyone sends right then
//! receives left" ring step cannot deadlock.
//!
//! Messages carry a tag so that out-of-order sends between the same pair
//! (e.g. two collectives back to back) are matched correctly: `recv` pulls
//! messages from the in-order channel and parks any message whose tag does
//! not match in a per-source pending queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use std::cell::{Cell, RefCell};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// A tagged message between ranks.
#[derive(Debug)]
struct Envelope {
    tag: u64,
    payload: Vec<f32>,
}

/// Per-rank free list of recycled message payloads, bucketed by capacity
/// class (next power of two).
///
/// `send_from` draws its payload here instead of allocating, and
/// `recv_into`/`recv_with` return the received payload here instead of
/// dropping it. Under a ring collective every rank hands one buffer to its
/// right neighbour and recycles one from its left each step, so after a
/// one-round warm-up the pools circulate a fixed set of buffers and the
/// steady state allocates nothing.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// `classes[c]` holds buffers whose capacity is in `[1 << c, 2 << c)`,
    /// so any buffer drawn from class `ceil(log2(len))` can hold `len`
    /// elements without growing.
    classes: RefCell<Vec<Vec<Vec<f32>>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    outstanding: Cell<i64>,
}

/// Pool effectiveness counters for one rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffer requests served from the free list.
    pub hits: u64,
    /// Buffer requests that had to allocate.
    pub misses: u64,
    /// Buffers drawn from this pool minus buffers returned to it. Negative
    /// values are legitimate under ring circulation: a rank retires the
    /// payloads minted by its left neighbour, so buffers migrate between
    /// per-rank pools while the world-wide sum stays balanced.
    pub outstanding: i64,
}

impl BufferPool {
    fn class_of(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Take a buffer with `capacity >= len` and length 0, reusing a
    /// recycled one when available.
    fn acquire(&self, len: usize) -> Vec<f32> {
        let class = Self::class_of(len);
        self.outstanding.set(self.outstanding.get() + 1);
        let mut classes = self.classes.borrow_mut();
        if let Some(mut buf) = classes.get_mut(class).and_then(Vec::pop) {
            self.hits.set(self.hits.get() + 1);
            buf.clear();
            buf
        } else {
            self.misses.set(self.misses.get() + 1);
            drop(classes);
            Vec::with_capacity(len.next_power_of_two())
        }
    }

    /// Return a spent payload to the free list.
    fn release(&self, buf: Vec<f32>) {
        self.outstanding.set(self.outstanding.get() - 1);
        if buf.capacity() == 0 {
            return;
        }
        // Floor class: every buffer in class `c` has capacity >= 1 << c,
        // which is what `acquire`'s ceil-class lookup relies on.
        let class = (usize::BITS - 1 - buf.capacity().leading_zeros()) as usize;
        let mut classes = self.classes.borrow_mut();
        if classes.len() <= class {
            classes.resize_with(class + 1, Vec::new);
        }
        classes[class].push(buf);
    }

    fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            outstanding: self.outstanding.get(),
        }
    }
}

/// A handle held by one rank (thread) of a [`World`].
pub struct Rank {
    id: usize,
    size: usize,
    senders: Vec<Sender<Envelope>>,
    receivers: Vec<Receiver<Envelope>>,
    pending: Vec<RefCell<VecDeque<Envelope>>>,
    barrier: Arc<Barrier>,
    bytes_sent: Arc<AtomicU64>,
    messages_sent: Arc<AtomicU64>,
    pool: BufferPool,
}

impl Rank {
    /// This rank's index in `0..size()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to rank `to` with `tag`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equals this rank.
    pub fn send(&self, to: usize, tag: u64, payload: Vec<f32>) {
        assert!(to < self.size, "destination rank out of range");
        assert_ne!(to, self.id, "self-sends are not supported");
        self.bytes_sent
            .fetch_add((payload.len() * 4) as u64, Ordering::Relaxed);
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.senders[to]
            .send(Envelope { tag, payload })
            .expect("receiver hung up: a peer rank panicked");
    }

    /// Receive the next message from rank `from` carrying `tag`, blocking
    /// until it arrives. Messages with other tags are buffered.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equals this rank, or the sending
    /// rank disconnected (panicked) before sending.
    pub fn recv(&self, from: usize, tag: u64) -> Vec<f32> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            return pending.remove(pos).expect("position just found").payload;
        }
        loop {
            let env = self.receivers[from]
                .recv()
                .expect("sender hung up: a peer rank panicked");
            if env.tag == tag {
                return env.payload;
            }
            pending.push_back(env);
        }
    }

    /// Nonblocking receive: return the next message from rank `from`
    /// carrying `tag` if one has already arrived, or `None` without
    /// blocking. Messages with other tags encountered while polling are
    /// parked in the same per-source pending queue [`Rank::recv`] uses, so
    /// the two can be mixed freely on one tag namespace.
    ///
    /// # Panics
    /// Panics if `from` is out of range, equals this rank, or the sending
    /// rank disconnected (panicked) before sending.
    pub fn try_recv(&self, from: usize, tag: u64) -> Option<Vec<f32>> {
        assert!(from < self.size, "source rank out of range");
        assert_ne!(from, self.id, "self-receives are not supported");
        let mut pending = self.pending[from].borrow_mut();
        if let Some(pos) = pending.iter().position(|e| e.tag == tag) {
            return Some(pending.remove(pos).expect("position just found").payload);
        }
        loop {
            match self.receivers[from].try_recv() {
                Ok(env) => {
                    if env.tag == tag {
                        return Some(env.payload);
                    }
                    pending.push_back(env);
                }
                Err(crossbeam::channel::TryRecvError::Empty) => return None,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    panic!("sender hung up: a peer rank panicked")
                }
            }
        }
    }

    /// Return a finished transport payload to this rank's [`BufferPool`].
    /// Used by the nonblocking layer, whose handles hold payloads across
    /// calls and cannot release them inside a `recv_with` closure.
    pub(crate) fn release_payload(&self, payload: Vec<f32>) {
        self.pool.release(payload);
    }

    /// Simultaneously send to `to` and receive from `from` (the ring step).
    pub fn send_recv(&self, to: usize, from: usize, tag: u64, payload: Vec<f32>) -> Vec<f32> {
        self.send(to, tag, payload);
        self.recv(from, tag)
    }

    /// Send a copy of `src` to rank `to`, drawing the payload from this
    /// rank's [`BufferPool`] instead of allocating.
    ///
    /// # Panics
    /// Panics if `to` is out of range or equals this rank.
    pub fn send_from(&self, to: usize, tag: u64, src: &[f32]) {
        let mut payload = self.pool.acquire(src.len());
        payload.extend_from_slice(src);
        self.send(to, tag, payload);
    }

    /// Receive the next message from rank `from` carrying `tag` into `dst`,
    /// recycling the transport buffer into this rank's [`BufferPool`].
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::recv`], or if the payload
    /// length differs from `dst.len()`.
    pub fn recv_into(&self, from: usize, tag: u64, dst: &mut [f32]) {
        let payload = self.recv(from, tag);
        assert_eq!(
            payload.len(),
            dst.len(),
            "recv_into: payload length mismatch"
        );
        dst.copy_from_slice(&payload);
        self.pool.release(payload);
    }

    /// Receive from rank `from` with `tag` and hand the payload to `f` by
    /// reference, recycling the transport buffer afterwards. This is the
    /// zero-copy receive: reductions fold straight out of the payload
    /// without an intermediate copy.
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::recv`].
    pub fn recv_with<R>(&self, from: usize, tag: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        let payload = self.recv(from, tag);
        let out = f(&payload);
        self.pool.release(payload);
        out
    }

    /// The ring step without allocation: send a copy of `src` to `to`, then
    /// receive the matching message from `from` into `dst`. `src` and `dst`
    /// may be the same slice contents-wise; they are distinct borrows.
    ///
    /// # Panics
    /// Panics on the combined conditions of [`Rank::send_from`] and
    /// [`Rank::recv_into`].
    pub fn send_recv_into(&self, to: usize, from: usize, tag: u64, src: &[f32], dst: &mut [f32]) {
        self.send_from(to, tag, src);
        self.recv_into(from, tag, dst);
    }

    /// Like [`Rank::send_recv_into`] but the received payload is folded
    /// into `dst` by `f` (element-by-element) instead of overwriting it —
    /// the reduce-scatter inner step.
    ///
    /// # Panics
    /// Panics on the same conditions as [`Rank::send_recv_into`].
    pub fn send_recv_fold(
        &self,
        to: usize,
        from: usize,
        tag: u64,
        src: &[f32],
        dst: &mut [f32],
        f: impl Fn(f32, f32) -> f32,
    ) {
        self.send_from(to, tag, src);
        self.recv_with(from, tag, |payload| {
            assert_eq!(
                payload.len(),
                dst.len(),
                "send_recv_fold: payload length mismatch"
            );
            for (d, &s) in dst.iter_mut().zip(payload) {
                *d = f(*d, s);
            }
        });
    }

    /// This rank's buffer-pool hit/miss counters.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Block until every rank has reached this barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Aggregate traffic statistics for one [`World::run`] execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficStats {
    /// Total payload bytes sent by all ranks.
    pub bytes_sent: u64,
    /// Total messages sent by all ranks.
    pub messages_sent: u64,
}

/// A world of `p` ranks executed as scoped threads.
pub struct World;

impl World {
    /// Run `f` on `p` ranks and collect each rank's return value, ordered by
    /// rank id.
    ///
    /// # Panics
    /// Panics if `p == 0` or if any rank's closure panics.
    pub fn run<F, R>(p: usize, f: F) -> Vec<R>
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        Self::run_with_stats(p, f).0
    }

    /// Like [`World::run`] but also returns aggregate traffic statistics,
    /// which tests use to cross-validate the analytic cost models.
    pub fn run_with_stats<F, R>(p: usize, f: F) -> (Vec<R>, TrafficStats)
    where
        F: Fn(&Rank) -> R + Sync,
        R: Send,
    {
        assert!(p > 0, "world size must be positive");
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let messages_sent = Arc::new(AtomicU64::new(0));
        // channels[src][dst]
        let mut txs: Vec<Vec<Sender<Envelope>>> = Vec::with_capacity(p);
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> =
            (0..p).map(|_| (0..p).map(|_| None).collect()).collect();
        for src in 0..p {
            let mut row = Vec::with_capacity(p);
            for (dst, rx_row) in rxs.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                row.push(tx);
                rx_row[src] = Some(rx);
                let _ = dst;
            }
            txs.push(row);
        }
        let barrier = Arc::new(Barrier::new(p));
        let mut ranks: Vec<Rank> = Vec::with_capacity(p);
        for (id, (senders, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            let receivers = rx_row
                .into_iter()
                .map(|r| r.expect("every channel endpoint was created"))
                .collect();
            ranks.push(Rank {
                id,
                size: p,
                senders,
                receivers,
                pending: (0..p).map(|_| RefCell::new(VecDeque::new())).collect(),
                barrier: Arc::clone(&barrier),
                bytes_sent: Arc::clone(&bytes_sent),
                messages_sent: Arc::clone(&messages_sent),
                pool: BufferPool::default(),
            });
        }

        let results: Vec<R> = std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = ranks
                .into_iter()
                .map(|rank| scope.spawn(move || f(&rank)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("a rank panicked"))
                .collect()
        });
        let stats = TrafficStats {
            bytes_sent: bytes_sent.load(Ordering::Relaxed),
            messages_sent: messages_sent.load(Ordering::Relaxed),
        };
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |r| {
            assert_eq!(r.size(), 1);
            r.barrier();
            r.id()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn point_to_point_roundtrip() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                r.send(1, 7, vec![1.0, 2.0, 3.0]);
                r.recv(1, 8)
            } else {
                let got = r.recv(0, 7);
                r.send(0, 8, got.iter().map(|x| x * 2.0).collect());
                vec![]
            }
        });
        assert_eq!(out[0], vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tags_demultiplex_out_of_order() {
        let out = World::run(2, |r| {
            if r.id() == 0 {
                // Send tag 2 first, then tag 1.
                r.send(1, 2, vec![2.0]);
                r.send(1, 1, vec![1.0]);
                vec![]
            } else {
                // Receive tag 1 first: the tag-2 message must be parked.
                let a = r.recv(0, 1);
                let b = r.recv(0, 2);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out[1], vec![1.0, 2.0]);
    }

    #[test]
    fn ring_send_recv_rotates() {
        let p = 5;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let got = r.send_recv(right, left, 0, vec![r.id() as f32]);
            got[0]
        });
        for (id, v) in out.iter().enumerate() {
            assert_eq!(*v, ((id + p - 1) % p) as f32);
        }
    }

    #[test]
    fn traffic_stats_count_payload_bytes() {
        let (_, stats) = World::run_with_stats(2, |r| {
            if r.id() == 0 {
                r.send(1, 0, vec![0.0; 100]);
            } else {
                let _ = r.recv(0, 0);
            }
        });
        assert_eq!(stats.bytes_sent, 400);
        assert_eq!(stats.messages_sent, 1);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |r| {
            counter.fetch_add(1, Ordering::SeqCst);
            r.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    #[test]
    fn pooled_ring_step_reuses_buffers() {
        let p = 4;
        let rounds = 32;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let src = vec![r.id() as f32; 256];
            let mut dst = vec![0.0f32; 256];
            for round in 0..rounds {
                r.send_recv_into(right, left, round, &src, &mut dst);
                assert_eq!(dst[0], left as f32);
            }
            r.barrier();
            r.pool_stats()
        });
        for stats in out {
            // One miss to mint the first buffer; every later round reuses
            // the buffer recycled from the left neighbour.
            assert_eq!(stats.misses, 1, "pool stats: {stats:?}");
            assert_eq!(stats.hits, rounds - 1, "pool stats: {stats:?}");
        }
    }

    #[test]
    fn recv_into_checks_length() {
        let result = std::panic::catch_unwind(|| {
            World::run(2, |r| {
                if r.id() == 0 {
                    r.send_from(1, 0, &[1.0, 2.0]);
                } else {
                    let mut dst = [0.0f32; 3];
                    r.recv_into(0, 0, &mut dst);
                }
            });
        });
        assert!(result.is_err(), "length mismatch must panic");
    }

    #[test]
    fn send_recv_fold_reduces_in_place() {
        let p = 3;
        let out = World::run(p, |r| {
            let right = (r.id() + 1) % p;
            let left = (r.id() + p - 1) % p;
            let src = [r.id() as f32 + 1.0; 4];
            let mut acc = [10.0f32; 4];
            r.send_recv_fold(right, left, 0, &src, &mut acc, |a, b| a + b);
            acc[0]
        });
        for (id, v) in out.iter().enumerate() {
            let left = (id + p - 1) % p;
            assert_eq!(*v, 10.0 + left as f32 + 1.0);
        }
    }

    #[test]
    fn pool_classes_round_capacity_correctly() {
        let pool = BufferPool::default();
        // A released odd-capacity buffer must only satisfy requests it can
        // actually hold without growing.
        let mut odd = Vec::with_capacity(5);
        odd.push(1.0f32);
        pool.release(odd);
        let got = pool.acquire(8);
        assert!(got.capacity() >= 8, "capacity {}", got.capacity());
        assert_eq!(
            pool.stats(),
            PoolStats {
                hits: 0,
                misses: 1,
                outstanding: 0,
            }
        );
        let got2 = pool.acquire(4);
        assert!(got2.capacity() >= 4);
        assert_eq!(
            pool.stats().hits,
            1,
            "class-2 request reuses the cap-5 buffer"
        );
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn self_send_rejected() {
        World::run(2, |r| {
            if r.id() == 0 {
                r.send(0, 0, vec![]);
            }
        });
    }
}
