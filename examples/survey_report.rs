//! Print the full survey reproduction (Figures 1–6, Tables I–III).
//!
//! Run with `cargo run --example survey_report`.

use summit_core::report;

fn main() {
    print!("{}", report::full_report());
}
