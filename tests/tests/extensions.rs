//! Integration tests for the extension features: network-simulator
//! cross-validation, compressed data-parallel training, and
//! checkpoint/restore mid-training.

use summit_comm::{
    collectives::{ring_allreduce, ReduceOp},
    model::{Algorithm, CollectiveModel},
    world::World,
};
use summit_dl::{
    checkpoint,
    compression::{Compressor, GradCompression},
    data::blobs,
    model::MlpSpec,
    optim::{Optimizer, Sgd},
    schedule::LrSchedule,
    trainer::Trainer,
};
use summit_machine::{simnet::SimNetwork, spec::NodeSpec, topology::FatTree, LinkModel};
use summit_tensor::ops;

/// The packet-level simulator and the α–β model agree on the ring
/// allreduce within the per-hop-latency budget, across sizes and scales.
#[test]
fn simnet_cross_validates_analytic_ring() {
    let model = CollectiveModel::new(LinkModel::inter_node(&NodeSpec::summit()));
    for nodes in [8u32, 36, 144] {
        for bytes in [1.0e6, 144.0e6] {
            let net = SimNetwork::new(FatTree::summit_like(nodes));
            let sim = net
                .simulate(&SimNetwork::ring_allreduce_schedule(nodes, nodes, bytes))
                .seconds;
            let analytic = model.allreduce_time(Algorithm::Ring, u64::from(nodes), bytes);
            // The simulator adds switch-hop latency the model folds into α;
            // both must agree within 50% and the bandwidth-dominated cases
            // within 10%.
            let rel = (sim - analytic).abs() / analytic;
            assert!(
                rel < 0.5,
                "nodes={nodes} bytes={bytes}: sim {sim} vs model {analytic}"
            );
            if bytes > 1.0e8 {
                assert!(rel < 0.1, "bandwidth regime disagrees: {rel}");
            }
        }
    }
}

/// Compressed synchronous data parallelism: quantizing before a real ring
/// allreduce on every rank still converges, and replicas stay in sync
/// (everyone applies the same compressed averages).
#[test]
fn compressed_data_parallel_training_converges() {
    let task = blobs(256, 6, 2, 0.4, 55);
    let ranks = 4usize;
    let per_rank = 16usize;
    let spec = MlpSpec::new(6, &[12], 2);

    let results = World::run(ranks, |rank| {
        let mut model = spec.build(3);
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let mut comp = Compressor::new(GradCompression::Fp16, model.param_count());
        let sched = LrSchedule::Constant;
        let steps = 256 / (ranks * per_rank);
        let mut loss = 0.0f32;
        for epoch in 0..20 {
            for s in 0..steps {
                let base = s * ranks * per_rank;
                let start = base + rank.id() * per_rank;
                let bx = summit_dl::trainer::slice_rows(&task.x, start, start + per_rank);
                let logits = model.forward(&bx);
                let (l, d) = ops::softmax_cross_entropy(logits, &task.y[start..start + per_rank]);
                loss = l;
                model.zero_grads();
                model.backward(&d);
                let mut flat = model.flat_grads();
                comp.compress(&mut flat);
                ring_allreduce(rank, &mut flat, ReduceOp::Sum);
                let inv = 1.0 / ranks as f32;
                flat.iter_mut().for_each(|g| *g *= inv);
                model.set_flat_grads(&flat);
                let lr = sched.multiplier((epoch * steps + s) as u32);
                model.for_each_group(|id, p, g| opt.step_group(id, lr, p, g));
            }
        }
        (model.flat_params(), loss)
    });

    // Replicas identical (compression is deterministic and pre-allreduce).
    let reference = &results[0].0;
    for (params, _) in &results[1..] {
        for (a, b) in params.iter().zip(reference) {
            assert!((a - b).abs() < 1e-6, "replicas diverged under compression");
        }
    }
    // And training actually converged.
    assert!(results[0].1 < 0.35, "loss {}", results[0].1);
}

/// Checkpoint/restore mid-training: restoring a checkpoint and replaying
/// the same batches reproduces the original trajectory exactly (momentum
/// state excluded — we restart with fresh momentum, as production restart
/// scripts that only save weights do, then verify loss continuity).
#[test]
fn checkpoint_resume_reproduces_trajectory() {
    let task = blobs(128, 4, 2, 0.4, 66);
    let build = || {
        Trainer::new(
            MlpSpec::new(4, &[8], 2).build(9),
            Box::new(Sgd::new(0.05, 0.0, 0.0)) as Box<dyn Optimizer>,
            LrSchedule::Constant,
        )
    };

    // Train 5 epochs, checkpoint, train 5 more.
    let mut original = build();
    for _ in 0..5 {
        original.train_epoch(&task.x, &task.y, 32);
    }
    let ckpt = checkpoint::save(&original.model, original.step());
    let mut first_half_params = original.model.flat_params();
    for _ in 0..5 {
        original.train_epoch(&task.x, &task.y, 32);
    }

    // Restore into a fresh trainer and replay the last 5 epochs.
    let mut resumed = build();
    let step = checkpoint::load(&mut resumed.model, ckpt).expect("valid checkpoint");
    assert_eq!(step, original.step() - original.step() / 2);
    assert_eq!(resumed.model.flat_params(), {
        std::mem::take(&mut first_half_params)
    });
    for _ in 0..5 {
        resumed.train_epoch(&task.x, &task.y, 32);
    }
    // Plain SGD (no momentum) has no optimizer state, so the trajectories
    // must match exactly.
    for (a, b) in original
        .model
        .flat_params()
        .iter()
        .zip(resumed.model.flat_params())
    {
        assert!((a - b).abs() < 1e-6, "resume diverged: {a} vs {b}");
    }
}

/// Hierarchical allreduce (NVLink-style groups of 3 over 4 "nodes")
/// produces the same averages as the flat ring inside a training step.
#[test]
fn hierarchical_allreduce_in_training_step() {
    use summit_comm::extended::hierarchical_allreduce;
    let task = blobs(96, 4, 2, 0.3, 77);
    let spec = MlpSpec::new(4, &[6], 2);
    let grads_with = |hierarchical: bool| -> Vec<Vec<f32>> {
        World::run(12, |rank| {
            let mut model = spec.build(4);
            let start = rank.id() * 8;
            let bx = summit_dl::trainer::slice_rows(&task.x, start, start + 8);
            let logits = model.forward(&bx);
            let (_, d) = ops::softmax_cross_entropy(logits, &task.y[start..start + 8]);
            model.zero_grads();
            model.backward(&d);
            let mut flat = model.flat_grads();
            if hierarchical {
                hierarchical_allreduce(rank, &mut flat, ReduceOp::Sum, 3);
            } else {
                ring_allreduce(rank, &mut flat, ReduceOp::Sum);
            }
            flat
        })
    };
    let flat = grads_with(false);
    let hier = grads_with(true);
    for (a, b) in flat.iter().flatten().zip(hier.iter().flatten()) {
        assert!((a - b).abs() < 1e-3 * a.abs().max(1.0));
    }
}
