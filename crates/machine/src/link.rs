//! The α–β (latency–bandwidth) link cost model.
//!
//! Every network transfer in the analytic models is costed as
//! `t = α + m / β` where `α` is the startup latency in seconds, `β` the
//! bandwidth in bytes/s and `m` the message size in bytes. This is the
//! standard Hockney model and exactly the arithmetic the paper performs in
//! Section VI-B (e.g. a 1.4 GB BERT-large allreduce message over a 12.5 GB/s
//! ring-algorithm bandwidth costing ≈110 ms).

use serde::{Deserialize, Serialize};

use crate::spec::NodeSpec;

/// Summit EDR InfiniBand per-message injection latency (seconds).
///
/// These `SUMMIT_*` constants are the **single source of truth** for the
/// paper's link numbers: `NodeSpec::summit()` builds its injection fields
/// from them, [`NvLinkGraph`](crate::topology::NvLinkGraph) takes its NVLink
/// and X-bus rates from them, and `summit-comm` re-exports [`LinkModel`] so
/// the collective models never restate the figures.
pub const SUMMIT_INJECTION_LATENCY_S: f64 = 1.5e-6;
/// Summit dual-rail EDR injection bandwidth (bytes/s): 2 × 12.5 GB/s.
pub const SUMMIT_INJECTION_BW_BPS: f64 = 25.0e9;
/// NVLink 2.0 per-hop latency on an AC922 node (seconds).
pub const SUMMIT_NVLINK_LATENCY_S: f64 = 0.7e-6;
/// NVLink 2.0 bandwidth between GPUs in one AC922 triplet (bytes/s).
pub const SUMMIT_NVLINK_BW_BPS: f64 = 50.0e9;
/// X-bus bandwidth between the two POWER9 sockets of an AC922 (bytes/s).
pub const SUMMIT_XBUS_BW_BPS: f64 = 64.0e9;

/// A point-to-point link cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// Startup latency per message in seconds.
    pub alpha: f64,
    /// Bandwidth in bytes/s.
    pub beta: f64,
}

impl LinkModel {
    /// Create a link model from explicit latency and bandwidth.
    ///
    /// # Panics
    /// Panics if `beta` is not strictly positive or `alpha` is negative.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(beta > 0.0, "bandwidth must be positive");
        assert!(alpha >= 0.0, "latency must be non-negative");
        LinkModel { alpha, beta }
    }

    /// The inter-node InfiniBand link of a given node spec.
    pub fn inter_node(node: &NodeSpec) -> Self {
        LinkModel::new(node.injection_latency, node.injection_bw)
    }

    /// The intra-node NVLink connection of a given node spec.
    ///
    /// # Panics
    /// Panics if the node has no NVLink (CPU-only node).
    pub fn nvlink(node: &NodeSpec) -> Self {
        assert!(node.nvlink_bw > 0.0, "node has no NVLink");
        LinkModel::new(SUMMIT_NVLINK_LATENCY_S, node.nvlink_bw)
    }

    /// Time in seconds to move `bytes` over this link.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        debug_assert!(bytes >= 0.0);
        self.alpha + bytes / self.beta
    }

    /// Effective bandwidth (bytes/s) achieved for a message of `bytes`,
    /// accounting for the latency term. Approaches `beta` for large messages.
    pub fn effective_bandwidth(&self, bytes: f64) -> f64 {
        assert!(bytes > 0.0, "effective bandwidth needs a positive size");
        bytes / self.transfer_time(bytes)
    }

    /// The message size (bytes) at which half of peak bandwidth is achieved
    /// (the classic `n_1/2` metric).
    pub fn n_half(&self) -> f64 {
        self.alpha * self.beta
    }

    /// A copy of this link with the latency term dropped (`α = 0`).
    ///
    /// Production collectives pipeline chunks so the serialized latency of
    /// the textbook schedules is largely hidden; the paper's Section VI-B
    /// arithmetic neglects latency entirely. Feeding a `bandwidth_only`
    /// link to a schedule simulation reproduces that arithmetic while still
    /// charging every byte to the critical path.
    pub fn bandwidth_only(&self) -> Self {
        LinkModel {
            alpha: 0.0,
            beta: self.beta,
        }
    }

    /// A derated copy of this link: bandwidth scaled by `factor` in (0, 1].
    ///
    /// Used to model contention (e.g. ring allreduce achieving half the
    /// network bandwidth, paper Section VI-B).
    ///
    /// # Panics
    /// Panics unless `0 < factor <= 1`.
    pub fn derate(&self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate factor must be in (0,1]"
        );
        LinkModel::new(self.alpha, self.beta * factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_affine() {
        let l = LinkModel::new(1e-6, 1e9);
        let t1 = l.transfer_time(1e6);
        let t2 = l.transfer_time(2e6);
        assert!((t2 - t1 - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn effective_bandwidth_approaches_beta() {
        let l = LinkModel::new(1e-6, 25e9);
        assert!(l.effective_bandwidth(1e9) / l.beta > 0.99);
        assert!(l.effective_bandwidth(1e3) / l.beta < 0.1);
    }

    #[test]
    fn n_half_reaches_half_bandwidth() {
        let l = LinkModel::new(2e-6, 12.5e9);
        let half = l.effective_bandwidth(l.n_half());
        assert!((half - l.beta / 2.0).abs() / l.beta < 1e-9);
    }

    #[test]
    fn summit_link_matches_paper_bandwidth() {
        let l = LinkModel::inter_node(&NodeSpec::summit());
        assert!((l.beta - 25.0e9).abs() < 1.0);
        // Ring algorithm bandwidth is half of network bandwidth: 12.5 GB/s.
        assert!((l.derate(0.5).beta - 12.5e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = LinkModel::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "derate factor")]
    fn derate_out_of_range_rejected() {
        let _ = LinkModel::new(0.0, 1.0).derate(1.5);
    }
}
