//! The classification taxonomies of the study: AI motifs (Table I),
//! science domains and subdomains (Table II), usage status, and ML method.

use serde::Serialize;

/// How a project uses AI/ML — the paper's "AI motifs" (Table I). The paper
/// treats machine-learned molecular-dynamics potentials as a special case
/// of the submodel motif but plots them separately in Figures 5–6; we give
/// them their own variant and record the relationship in
/// [`Motif::is_submodel_family`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Motif {
    /// Detect algorithmic or other failure in execution, signal remediation.
    FaultDetection,
    /// ML enhances a mathematical (non-science-proper) computation.
    MathCsAlgorithm,
    /// A proper subset of a science computation replaced by an ML model.
    Submodel,
    /// Machine-learned molecular-dynamics potentials (submodel special case).
    MdPotentials,
    /// Automatic steering of a computation's direction.
    Steering,
    /// Full science model replaced by an ML approximation.
    SurrogateModel,
    /// Mod-sim results analyzed by a human using ML methods.
    Analysis,
    /// ML and traditional mod-sim coupled in a loop.
    MlModsimLoop,
    /// "Pure" ML with little or no mod-sim (includes RL).
    Classification,
    /// Umbrella project with multiple unrelated AI/ML subprojects.
    Various,
    /// Manner of AI/ML use undetermined.
    Undetermined,
}

impl Motif {
    /// All motifs, in Table I order (MD potentials immediately after
    /// submodel, its parent motif).
    pub const ALL: [Motif; 11] = [
        Motif::FaultDetection,
        Motif::MathCsAlgorithm,
        Motif::Submodel,
        Motif::MdPotentials,
        Motif::Steering,
        Motif::SurrogateModel,
        Motif::Analysis,
        Motif::MlModsimLoop,
        Motif::Classification,
        Motif::Various,
        Motif::Undetermined,
    ];

    /// Display name as used in the paper's table.
    pub fn name(self) -> &'static str {
        match self {
            Motif::FaultDetection => "fault detection",
            Motif::MathCsAlgorithm => "math/cs algorithm",
            Motif::Submodel => "submodel",
            Motif::MdPotentials => "MD potentials",
            Motif::Steering => "steering",
            Motif::SurrogateModel => "surrogate model",
            Motif::Analysis => "analysis",
            Motif::MlModsimLoop => "ML + modsim loop",
            Motif::Classification => "classification",
            Motif::Various => "various",
            Motif::Undetermined => "undetermined",
        }
    }

    /// Table I definition text.
    pub fn definition(self) -> &'static str {
        match self {
            Motif::FaultDetection => {
                "detect algorithmic or other failure in execution, send signal \
                 for automatic or manual remediation"
            }
            Motif::MathCsAlgorithm => {
                "ML is used to enhance some mathematical (non-science-proper) \
                 computation"
            }
            Motif::Submodel => {
                "a (proper) subset of a science computation is replaced by an \
                 ML model"
            }
            Motif::MdPotentials => {
                "molecular dynamics potentials trained with ML (special case \
                 of submodel)"
            }
            Motif::Steering => {
                "automatic steering of the direction of a computation for some \
                 internal process"
            }
            Motif::SurrogateModel => {
                "full science model replaced by ML approximation that captures \
                 important aspects, used for speed or science understanding"
            }
            Motif::Analysis => {
                "results from modeling and simulation runs are analyzed by a \
                 human using ML methods"
            }
            Motif::MlModsimLoop => "both ML and traditional modsim, coupled",
            Motif::Classification => {
                "\"pure\" ML with little or no modsim used to classify some \
                 phenomenon; includes some other methods like reinforcement \
                 learning"
            }
            Motif::Various => {
                "umbrella project with multiple unrelated subprojects using \
                 possibly different kinds of AI/ML"
            }
            Motif::Undetermined => "manner of AI/ML use is undetermined",
        }
    }

    /// Table I example text.
    pub fn example(self) -> &'static str {
        match self {
            Motif::FaultDetection => "detect simulation defect caused by execution error",
            Motif::MathCsAlgorithm => {
                "solver's linear system dimension is reduced based on \
                 machine-learned parameter"
            }
            Motif::Submodel => {
                "physics-based radiation model in a climate code replaced by ML model"
            }
            Motif::MdPotentials => "DeePMD/SNAP potentials driving MD simulation",
            Motif::Steering => {
                "ML method to guide Monte Carlo sampling to include \
                 undersampled regions"
            }
            Motif::SurrogateModel => {
                "data from tokamak simulation runs used to train surrogate model"
            }
            Motif::Analysis => "use graph neural networks to analyze results of MD simulation",
            Motif::MlModsimLoop => {
                "MD in loop used to refine deep learning model via active learning"
            }
            Motif::Classification => {
                "deep neural network inference to detect rare astrophysical event"
            }
            Motif::Various => "CAAR/ESP/NESAP application readiness",
            Motif::Undetermined => "project is exploring AI/ML use but gives no details",
        }
    }

    /// Whether this motif belongs to the submodel family (Table I notes MD
    /// potentials are a special case of submodel).
    pub fn is_submodel_family(self) -> bool {
        matches!(self, Motif::Submodel | Motif::MdPotentials)
    }

    /// The ten canonical Table I rows (MD potentials folded into submodel).
    pub fn table1_rows() -> Vec<Motif> {
        Motif::ALL
            .iter()
            .copied()
            .filter(|m| *m != Motif::MdPotentials)
            .collect()
    }
}

/// Science domains (Table II, left column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Domain {
    /// Biology and life sciences.
    Biology,
    /// Chemistry.
    Chemistry,
    /// Computer science (including ML-proper projects).
    ComputerScience,
    /// Earth science.
    EarthScience,
    /// Engineering.
    Engineering,
    /// Fusion energy and plasma physics.
    FusionPlasma,
    /// Materials science.
    Materials,
    /// Nuclear energy.
    NuclearEnergy,
    /// Physics.
    Physics,
}

impl Domain {
    /// All nine domains in Table II order.
    pub const ALL: [Domain; 9] = [
        Domain::Biology,
        Domain::Chemistry,
        Domain::ComputerScience,
        Domain::EarthScience,
        Domain::Engineering,
        Domain::FusionPlasma,
        Domain::Materials,
        Domain::NuclearEnergy,
        Domain::Physics,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Biology => "Biology",
            Domain::Chemistry => "Chemistry",
            Domain::ComputerScience => "Computer Science",
            Domain::EarthScience => "Earth Science",
            Domain::Engineering => "Engineering",
            Domain::FusionPlasma => "Fusion and Plasma",
            Domain::Materials => "Materials",
            Domain::NuclearEnergy => "Nuclear Energy",
            Domain::Physics => "Physics",
        }
    }

    /// Table II subdomain list.
    pub fn subdomains(self) -> &'static [&'static str] {
        match self {
            Domain::Biology => &[
                "Bioinformatics",
                "Biophysics",
                "Life Sciences",
                "Medical Science",
                "Neuroscience",
                "Proteomics",
                "Systems Biology",
            ],
            Domain::Chemistry => &["Chemistry", "Physical Chemistry"],
            Domain::ComputerScience => &["Computer Science", "Machine Learning"],
            Domain::EarthScience => &[
                "Atmospheric Science",
                "Climate",
                "Geosciences",
                "Geographic Information Systems",
            ],
            Domain::Engineering => &[
                "Aerodynamics",
                "Bioenergy",
                "Combustion",
                "Engineering",
                "Fluid Dynamics",
                "Turbulence",
            ],
            Domain::FusionPlasma => &["Fusion Energy", "Plasma Physics"],
            Domain::Materials => &[
                "Materials Science",
                "Nanoelectronics",
                "Nanomechanics",
                "Nanophotonics",
                "Nanoscience",
            ],
            Domain::NuclearEnergy => &["Nuclear Fission", "Nuclear Fuel Cycle"],
            Domain::Physics => &[
                "Accelerator Physics",
                "Astrophysics",
                "Cosmology",
                "Atomic/Molecular Physics",
                "Condensed Matter Physics",
                "High Energy Physics",
                "Lattice Gauge Theory",
                "Nuclear Physics",
                "Physics",
                "Solar/Space Physics",
            ],
        }
    }
}

/// AI/ML usage or adoption status (paper Section II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum UsageStatus {
    /// Actual usage of AI/ML in the project year.
    Active,
    /// Previous/planned/possible/companion-project usage.
    Inactive,
    /// No serious mention of or interest in AI/ML.
    None,
}

impl UsageStatus {
    /// All statuses.
    pub const ALL: [UsageStatus; 3] = [
        UsageStatus::Active,
        UsageStatus::Inactive,
        UsageStatus::None,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            UsageStatus::Active => "active",
            UsageStatus::Inactive => "inactive",
            UsageStatus::None => "none",
        }
    }

    /// Whether the project counts as an AI/ML user (active or inactive).
    pub fn uses_ml(self) -> bool {
        !matches!(self, UsageStatus::None)
    }
}

/// ML method category (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum MlMethod {
    /// Deep learning or other neural-network methods.
    DeepLearningOrNn,
    /// Other ML (SVM, isolation forests, PCA, regressions, boosted trees…).
    OtherMl,
    /// Could not be determined from the proposal.
    Undetermined,
}

impl MlMethod {
    /// All method categories.
    pub const ALL: [MlMethod; 3] = [
        MlMethod::DeepLearningOrNn,
        MlMethod::OtherMl,
        MlMethod::Undetermined,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            MlMethod::DeepLearningOrNn => "DL/NN",
            MlMethod::OtherMl => "other ML",
            MlMethod::Undetermined => "undetermined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_ten_rows() {
        // Table I lists exactly ten motifs (MD potentials is a note inside
        // the submodel row).
        assert_eq!(Motif::table1_rows().len(), 10);
        assert!(!Motif::table1_rows().contains(&Motif::MdPotentials));
    }

    #[test]
    fn every_motif_documented() {
        for m in Motif::ALL {
            assert!(!m.name().is_empty());
            assert!(!m.definition().is_empty());
            assert!(!m.example().is_empty());
        }
    }

    #[test]
    fn submodel_family() {
        assert!(Motif::Submodel.is_submodel_family());
        assert!(Motif::MdPotentials.is_submodel_family());
        assert!(!Motif::Classification.is_submodel_family());
    }

    #[test]
    fn table2_has_nine_domains() {
        assert_eq!(Domain::ALL.len(), 9);
    }

    #[test]
    fn subdomains_partition() {
        // No subdomain name may appear under two domains.
        let mut seen = std::collections::HashSet::new();
        for d in Domain::ALL {
            for s in d.subdomains() {
                assert!(seen.insert(*s), "duplicate subdomain {s}");
            }
        }
        // Table II lists 40 subdomains (the paper's raw 48 3-letter codes
        // collapse onto these rows).
        assert_eq!(seen.len(), 40);
    }

    #[test]
    fn usage_status_semantics() {
        assert!(UsageStatus::Active.uses_ml());
        assert!(UsageStatus::Inactive.uses_ml());
        assert!(!UsageStatus::None.uses_ml());
    }
}
