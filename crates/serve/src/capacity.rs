//! Full-Summit serving capacity, predicted over the routed fabric.
//!
//! The executed plane tops out at a laptop's worth of replicas; the
//! question the paper's operators actually ask is *"what does this model
//! serve at machine scale?"*. This module answers it with the same
//! modeled surface the training side trusts — `comm::sim::simulate_on`
//! routing real collective schedules over `machine::ClusterModel`'s
//! fat tree — rather than a new back-of-envelope:
//!
//! * **Weight distribution**: one [`Collective::BinomialBroadcast`] of
//!   the flat parameter vector across all replica ranks — the cost of
//!   rolling a new checkpoint out to the serving fleet.
//! * **Compute capacity**: `replicas × peak_rps` from the calibrated
//!   [`ServiceModel`] — every replica running saturated micro-batches.
//! * **Ingress bound**: requests enter at a front-end root and fan out;
//!   one [`Collective::Scatter`] of a feature row per replica models a
//!   full round of request distribution, so the root's injection link
//!   caps aggregate throughput at `replicas / scatter_time`.
//!
//! The quoted capacity is `min(compute, ingress)` — at 27,648 replicas
//! a small MLP is ingress-bound (the fan-out link saturates long before
//! the GPUs do), which is exactly the regime the paper's edge-service
//! deployments report.

use summit_comm::engine::Collective;
use summit_comm::sim::simulate_on;
use summit_machine::ClusterModel;

use crate::service::ServiceModel;

/// Modeled serving capacity of a replica fleet on a routed fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummitServing {
    /// Replica ranks in the fleet.
    pub replicas: usize,
    /// Seconds to broadcast the flat parameter vector to every replica
    /// (checkpoint rollout cost).
    pub weight_broadcast_s: f64,
    /// Calibrated peak throughput of one replica, requests/s.
    pub per_replica_peak_rps: f64,
    /// Fleet compute capacity: `replicas × per_replica_peak_rps`.
    pub compute_capacity_rps: f64,
    /// Front-end fan-out bound: `replicas / scatter_time(input_dim)`.
    pub ingress_bound_rps: f64,
    /// The quoted capacity: `min(compute, ingress)`.
    pub capacity_rps: f64,
}

impl SummitServing {
    /// Whether the fleet is limited by request fan-in rather than compute.
    pub fn ingress_bound(&self) -> bool {
        self.ingress_bound_rps < self.compute_capacity_rps
    }
}

/// Predict serving capacity for `replicas` ranks on `cluster`, given the
/// host-calibrated service model, the batching limit, and the model's
/// parameter and input sizes (f32 elements).
///
/// # Panics
/// Panics if `replicas < 2` (the collectives need a non-trivial world) or
/// any size is zero.
pub fn summit_serving_capacity(
    service: &ServiceModel,
    max_batch: usize,
    param_count: usize,
    input_dim: usize,
    replicas: usize,
    cluster: ClusterModel,
) -> SummitServing {
    assert!(replicas >= 2, "need at least two replicas to model");
    assert!(param_count > 0 && input_dim > 0, "sizes must be positive");
    let weight_broadcast_s = simulate_on(
        Collective::BinomialBroadcast { root: 0 },
        replicas,
        param_count,
        cluster,
    )
    .report
    .time_seconds;
    let scatter_s = simulate_on(
        Collective::Scatter { root: 0 },
        replicas,
        input_dim,
        cluster,
    )
    .report
    .time_seconds;
    let per_replica_peak_rps = service.peak_rps(max_batch);
    let compute_capacity_rps = replicas as f64 * per_replica_peak_rps;
    // One scatter delivers one request to every replica: `replicas`
    // requests per `scatter_s` is the root's sustainable fan-out rate.
    let ingress_bound_rps = replicas as f64 / scatter_s.max(1e-12);
    SummitServing {
        replicas,
        weight_broadcast_s,
        per_replica_peak_rps,
        compute_capacity_rps,
        ingress_bound_rps,
        capacity_rps: compute_capacity_rps.min(ingress_bound_rps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SERVICE: ServiceModel = ServiceModel {
        base_s: 5.0e-4,
        per_row_s: 2.0e-5,
    };

    #[test]
    fn capacity_is_the_binding_constraint() {
        let c = summit_serving_capacity(&SERVICE, 16, 10_000, 64, 24, ClusterModel::summit_like(4));
        assert_eq!(c.replicas, 24);
        assert!(c.weight_broadcast_s > 0.0);
        assert!(c.per_replica_peak_rps > 0.0);
        assert!((c.compute_capacity_rps - 24.0 * SERVICE.peak_rps(16)).abs() < 1e-9);
        assert_eq!(
            c.capacity_rps,
            c.compute_capacity_rps.min(c.ingress_bound_rps)
        );
    }

    #[test]
    fn more_replicas_never_reduce_capacity_under_compute_bound() {
        let small =
            summit_serving_capacity(&SERVICE, 16, 4_000, 64, 12, ClusterModel::summit_like(2));
        let big =
            summit_serving_capacity(&SERVICE, 16, 4_000, 64, 24, ClusterModel::summit_like(4));
        assert!(big.compute_capacity_rps > small.compute_capacity_rps);
    }

    #[test]
    fn broadcast_time_grows_with_parameters() {
        let cluster = ClusterModel::summit_like(2);
        let small = summit_serving_capacity(&SERVICE, 16, 1_000, 64, 12, cluster);
        let big = summit_serving_capacity(&SERVICE, 16, 1_000_000, 64, 12, cluster);
        assert!(big.weight_broadcast_s > small.weight_broadcast_s);
    }
}
