//! Gradient compression for communication-bound training.
//!
//! Section VI-B concludes that models beyond BERT-large are
//! communication-bound under data parallelism and remarks that "increasing
//! use of sparsity may make this situation more complicated". This module
//! implements the two standard volume-reduction techniques and quantifies
//! their effect:
//!
//! * [`Fp16`](GradCompression::Fp16) — half-precision gradient messages
//!   (what Kurth et al. and Laanait et al. shipped), emulated exactly with
//!   a software IEEE 754 binary16 round-trip;
//! * [`TopK`](GradCompression::TopK) — magnitude sparsification with
//!   **error feedback** (the residual of dropped coordinates is carried to
//!   the next step), the scheme behind deep-gradient-compression results.
//!
//! Convergence under compression is tested on a real training problem, and
//! the message-volume arithmetic feeds the communication crossover: fp16
//! doubles the communication-bound model size, top-k at 1% multiplies it
//! by ≈50 (index overhead included).

use serde::Serialize;

/// Convert an `f32` to IEEE 754 binary16 bits (round-to-nearest-even),
/// handling subnormals, infinities and NaN.
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Inf / NaN.
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    // Re-bias: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half. Round the 23-bit fraction to 10 bits.
        let mut f = frac >> 13;
        let rem = frac & 0x1FFF;
        if rem > 0x1000 || (rem == 0x1000 && (f & 1) == 1) {
            f += 1;
        }
        let mut e = (unbiased + 15) as u32;
        if f == 0x400 {
            // Fraction rounding overflowed into the exponent.
            f = 0;
            e += 1;
            if e >= 31 {
                return sign | 0x7C00;
            }
        }
        return sign | ((e as u16) << 10) | (f as u16);
    }
    if unbiased >= -25 {
        // Subnormal half: target fraction = round(mantissa24 · 2^(unbiased+1)),
        // i.e. shift the 24-bit mantissa right by −unbiased−1 ∈ [14, 24]
        // with round-to-nearest-even (unbiased −25 covers values that may
        // round up to the smallest subnormal).
        let shift = (-unbiased - 1) as u32;
        let mantissa = frac | 0x80_0000; // implicit leading 1
        let mut f = if shift >= 24 { 0 } else { mantissa >> shift };
        let rem = mantissa & ((1u32 << shift) - 1);
        let half = 1u32 << (shift - 1);
        if rem > half || (rem == half && (f & 1) == 1) {
            f += 1;
        }
        // f = 0x400 naturally becomes the smallest normal half.
        return sign | (f as u16);
    }
    sign // underflow → ±0
}

/// Convert IEEE 754 binary16 bits back to `f32`.
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1F;
    let frac = u32::from(h & 0x03FF);
    let bits = match exp {
        0 => {
            if frac == 0 {
                sign
            } else {
                // Subnormal: value = frac · 2^-24 = 1.m · 2^(k−24) where k
                // is the fraction's MSB position.
                let k = 31 - frac.leading_zeros();
                let exp32 = k + 103; // (k − 24) + 127
                let mant = ((frac << (10 - k)) & 0x3FF) << 13;
                sign | (exp32 << 23) | mant
            }
        }
        0x1F => sign | 0x7F80_0000 | (frac << 13),
        _ => sign | ((u32::from(exp) + 127 - 15) << 23) | (frac << 13),
    };
    f32::from_bits(bits)
}

/// Round-trip an `f32` through binary16 (the fp16-gradient emulation).
pub fn quantize_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// A gradient compression scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum GradCompression {
    /// Send full fp32 gradients.
    None,
    /// Quantize gradients to binary16 before the allreduce.
    Fp16,
    /// Keep only the top `fraction` of coordinates by magnitude; dropped
    /// mass is carried in an error-feedback residual.
    TopK {
        /// Fraction of coordinates kept, in (0, 1].
        fraction: f64,
    },
}

impl GradCompression {
    /// Message bytes for a gradient of `n` elements. Top-k messages carry a
    /// 4-byte index plus a 4-byte value per kept coordinate.
    pub fn message_bytes(self, n: usize) -> f64 {
        match self {
            GradCompression::None => 4.0 * n as f64,
            GradCompression::Fp16 => 2.0 * n as f64,
            GradCompression::TopK { fraction } => 8.0 * (n as f64 * fraction).ceil(),
        }
    }

    /// Volume reduction factor vs fp32.
    pub fn reduction_factor(self, n: usize) -> f64 {
        GradCompression::None.message_bytes(n) / self.message_bytes(n)
    }
}

/// Stateful gradient compressor (holds the error-feedback residual).
#[derive(Debug, Clone)]
pub struct Compressor {
    scheme: GradCompression,
    residual: Vec<f32>,
}

impl Compressor {
    /// A compressor for gradients of length `n`.
    ///
    /// # Panics
    /// Panics if a top-k fraction is outside (0, 1].
    pub fn new(scheme: GradCompression, n: usize) -> Self {
        if let GradCompression::TopK { fraction } = scheme {
            assert!(
                fraction > 0.0 && fraction <= 1.0,
                "top-k fraction must be in (0, 1]"
            );
        }
        Compressor {
            scheme,
            residual: vec![0.0; n],
        }
    }

    /// The scheme in use.
    pub fn scheme(&self) -> GradCompression {
        self.scheme
    }

    /// Compress `grads` in place: the returned buffer is what the wire
    /// would carry, reconstructed (zeros in dropped positions, quantized
    /// values otherwise). Error feedback updates the internal residual.
    ///
    /// # Panics
    /// Panics if the length differs from the construction length.
    pub fn compress(&mut self, grads: &mut [f32]) {
        assert_eq!(grads.len(), self.residual.len(), "gradient length changed");
        match self.scheme {
            GradCompression::None => {}
            GradCompression::Fp16 => {
                for g in grads.iter_mut() {
                    *g = quantize_f16(*g);
                }
            }
            GradCompression::TopK { fraction } => {
                // Accumulate the residual, then keep the top-k by magnitude.
                for (g, r) in grads.iter_mut().zip(&mut self.residual) {
                    *g += *r;
                    *r = 0.0;
                }
                let k = ((grads.len() as f64 * fraction).ceil() as usize).clamp(1, grads.len());
                let mut magnitudes: Vec<(usize, f32)> = grads
                    .iter()
                    .enumerate()
                    .map(|(i, g)| (i, g.abs()))
                    .collect();
                magnitudes.select_nth_unstable_by(k - 1, |a, b| b.1.total_cmp(&a.1));
                let keep: std::collections::HashSet<usize> =
                    magnitudes[..k].iter().map(|&(i, _)| i).collect();
                for (i, (g, r)) in grads.iter_mut().zip(&mut self.residual).enumerate() {
                    if !keep.contains(&i) {
                        *r = *g; // dropped mass feeds back next step
                        *g = 0.0;
                    }
                }
            }
        }
    }

    /// L2 norm of the currently-held residual (diagnostics).
    pub fn residual_norm(&self) -> f32 {
        self.residual.iter().map(|r| r * r).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::blobs;
    use crate::model::MlpSpec;
    use crate::optim::{Optimizer, Sgd};
    use crate::schedule::LrSchedule;
    use summit_tensor::ops;

    #[test]
    fn f16_roundtrip_specials() {
        for (x, expect) in [
            (0.0f32, 0.0f32),
            (-0.0, -0.0),
            (1.0, 1.0),
            (-2.5, -2.5),
            (65504.0, 65504.0), // max half
            (f32::INFINITY, f32::INFINITY),
            (f32::NEG_INFINITY, f32::NEG_INFINITY),
        ] {
            let got = quantize_f16(x);
            assert_eq!(got, expect, "{x}");
        }
        assert!(quantize_f16(f32::NAN).is_nan());
        // Overflow saturates to infinity.
        assert_eq!(quantize_f16(1e6), f32::INFINITY);
        // Tiny values become subnormal halves or zero, never garbage.
        let tiny = quantize_f16(1e-7);
        assert!((0.0..1e-6).contains(&tiny));
    }

    #[test]
    fn f16_relative_error_bounded() {
        // Half precision has a 10-bit mantissa: relative error ≤ 2^-11.
        let mut x = 1.0001f32;
        for _ in 0..2000 {
            x *= 1.009;
            if x > 60000.0 {
                break;
            }
            let q = quantize_f16(x);
            assert!(((q - x) / x).abs() <= 1.0 / 2048.0 + 1e-7, "{x} → {q}");
        }
    }

    #[test]
    fn message_sizes() {
        let n = 1000;
        assert_eq!(GradCompression::None.message_bytes(n), 4000.0);
        assert_eq!(GradCompression::Fp16.message_bytes(n), 2000.0);
        let topk = GradCompression::TopK { fraction: 0.01 };
        assert_eq!(topk.message_bytes(n), 80.0);
        assert!((topk.reduction_factor(n) - 50.0).abs() < 1e-9);
        assert!((GradCompression::Fp16.reduction_factor(n) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn topk_keeps_largest_and_feeds_back_rest() {
        let mut c = Compressor::new(GradCompression::TopK { fraction: 0.25 }, 8);
        let mut g = vec![0.1, -5.0, 0.2, 3.0, -0.3, 0.05, 0.0, 0.15];
        c.compress(&mut g);
        // Top 2 by magnitude: -5.0 and 3.0 survive.
        assert_eq!(g[1], -5.0);
        assert_eq!(g[3], 3.0);
        assert!(g
            .iter()
            .enumerate()
            .all(|(i, &v)| v == 0.0 || i == 1 || i == 3));
        // Residual holds the dropped mass.
        assert!(c.residual_norm() > 0.3);
        // Next step: a dropped coordinate keeps accumulating until it wins.
        let mut g2 = vec![0.0f32; 8];
        g2[4] = -0.3; // adds to residual −0.3 → −0.6
        c.compress(&mut g2);
        // −0.6 at index 4 is now among the top-2 (others ≈ 0.1–0.2).
        assert!(g2[4] < -0.5, "error feedback failed: {g2:?}");
    }

    #[test]
    fn fp16_compressor_quantizes_everything() {
        let mut c = Compressor::new(GradCompression::Fp16, 4);
        let mut g = vec![1.0 / 3.0, 1e-30, 1234.567, -0.1];
        let orig = g.clone();
        c.compress(&mut g);
        for (q, o) in g.iter().zip(&orig) {
            assert_eq!(*q, quantize_f16(*o));
        }
    }

    /// Training with compressed gradients still converges — fp16 nearly
    /// exactly, top-k 10% with error feedback within a modest gap.
    #[test]
    fn compressed_training_converges() {
        let task = blobs(256, 6, 3, 0.4, 73);
        let run = |scheme: GradCompression| -> f32 {
            let mut model = MlpSpec::new(6, &[16], 3).build(5);
            let mut opt = Sgd::new(0.1, 0.9, 0.0);
            let mut comp = Compressor::new(scheme, model.param_count());
            let sched = LrSchedule::Constant;
            let mut loss = f32::NAN;
            for step in 0..120 {
                let logits = model.forward(&task.x);
                let (l, d) = ops::softmax_cross_entropy(logits, &task.y);
                loss = l;
                model.zero_grads();
                model.backward(&d);
                let mut flat = model.flat_grads();
                comp.compress(&mut flat);
                model.set_flat_grads(&flat);
                let lr = sched.multiplier(step);
                model.for_each_group(|id, p, g| opt.step_group(id, lr, p, g));
            }
            loss
        };
        let baseline = run(GradCompression::None);
        let fp16 = run(GradCompression::Fp16);
        let topk = run(GradCompression::TopK { fraction: 0.1 });
        assert!(baseline < 0.1, "baseline failed: {baseline}");
        assert!(fp16 < baseline * 1.5 + 0.05, "fp16 {fp16} vs {baseline}");
        assert!(topk < 0.4, "top-k diverged: {topk}");
    }

    #[test]
    #[should_panic(expected = "fraction must be in")]
    fn zero_fraction_rejected() {
        let _ = Compressor::new(GradCompression::TopK { fraction: 0.0 }, 4);
    }
}
