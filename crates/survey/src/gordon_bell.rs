//! Gordon Bell finalist catalog: Table III and the Section IV-A project
//! review.

use serde::Serialize;

use crate::taxonomy::Motif;

/// Which Gordon Bell competition a finalist entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum GbCategory {
    /// The standard ACM Gordon Bell Prize.
    Standard,
    /// The special Gordon Bell Prize for COVID-19 research (2020–2021).
    Covid19,
}

impl GbCategory {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GbCategory::Standard => "std",
            GbCategory::Covid19 => "COVID-19",
        }
    }
}

/// One Summit-based Gordon Bell finalist project using AI/ML
/// (Section IV-A's numbered list).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GbFinalist {
    /// Lead author and year tag, e.g. "Ichimura et al., GB/2018".
    pub citation: &'static str,
    /// Competition year.
    pub year: u16,
    /// Standard or COVID-19 competition.
    pub category: GbCategory,
    /// AI motif the paper assigns.
    pub motif: Motif,
    /// One-line description.
    pub summary: &'static str,
    /// Maximum Summit node count demonstrated.
    pub max_nodes: u32,
    /// Reported mixed-precision rate in FLOP/s, if stated.
    pub reported_flops: Option<f64>,
}

/// The ten AI/ML-powered Summit Gordon Bell finalists (Section IV-A).
pub fn ai_finalists() -> Vec<GbFinalist> {
    vec![
        GbFinalist {
            citation: "Ichimura et al., GB/2018",
            year: 2018,
            category: GbCategory::Standard,
            motif: Motif::MathCsAlgorithm,
            summary: "earthquake modeling; neural network forms the \
                      preconditioner for a conjugate gradient solver",
            max_nodes: 4096,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Patton et al., GB/2018",
            year: 2018,
            category: GbCategory::Standard,
            motif: Motif::Classification,
            summary: "hyperparameter tuning for DNNs finding defect \
                      structures in microscopy images",
            max_nodes: 4200,
            reported_flops: Some(152.5e15),
        },
        GbFinalist {
            citation: "Kurth et al., GB/2018",
            year: 2018,
            category: GbCategory::Standard,
            motif: Motif::Classification,
            summary: "extreme weather pattern detection with adapted \
                      Tiramisu and DeepLabv3 DNNs",
            max_nodes: 4560,
            reported_flops: Some(1.13e18),
        },
        GbFinalist {
            citation: "Jia et al., GB/2020",
            year: 2020,
            category: GbCategory::Standard,
            motif: Motif::MdPotentials,
            summary: "MD of water and copper with DeePMD-kit machine-learned \
                      potentials",
            max_nodes: 4560,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Casalino et al., GB/2020/COVID-19",
            year: 2020,
            category: GbCategory::Covid19,
            motif: Motif::Steering,
            summary: "virus spike dynamics MD with sampling guided by a 3D \
                      PointNet-based adversarial autoencoder",
            max_nodes: 4096,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Glaser et al., GB/2020/COVID-19",
            year: 2020,
            category: GbCategory::Covid19,
            motif: Motif::SurrogateModel,
            summary: "structure-based chemical screening; binding affinity \
                      scoring via random forests",
            max_nodes: 4602,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Nguyen-Cong et al., GB/2021",
            year: 2021,
            category: GbCategory::Standard,
            motif: Motif::MdPotentials,
            summary: "carbon at extreme conditions with machine-learned SNAP \
                      MD potentials",
            max_nodes: 4650,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Blanchard et al., GB/2021/COVID-19",
            year: 2021,
            category: GbCategory::Covid19,
            motif: Motif::Classification,
            summary: "drug candidates via genetic-algorithm search over a \
                      cross-attention network on BERT compound embeddings",
            max_nodes: 4032,
            reported_flops: Some(603.0e15),
        },
        GbFinalist {
            citation: "Amaro et al., GB/2021/COVID-19",
            year: 2021,
            category: GbCategory::Covid19,
            motif: Motif::Steering,
            summary: "MD simulation guided by DeepDriveMD; OrbNet and \
                      ANCA-AE analysis components",
            max_nodes: 4096,
            reported_flops: None,
        },
        GbFinalist {
            citation: "Trifan et al., GB/2021/COVID-19",
            year: 2021,
            category: GbCategory::Covid19,
            motif: Motif::Steering,
            summary: "graph neural operator, ANCA-AE and CVAE orchestrating \
                      joint MD and finite-element simulations of the \
                      replication-transcription complex",
            max_nodes: 256,
            reported_flops: None,
        },
    ]
}

/// One column of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Table3Column {
    /// Competition year.
    pub year: u16,
    /// Standard or COVID-19.
    pub category: GbCategory,
    /// Summit finalists in that competition.
    pub summit_finalists: u32,
    /// Of those, projects using AI/ML.
    pub summit_ai_finalists: u32,
}

/// Table III exactly as printed.
pub fn table3() -> Vec<Table3Column> {
    vec![
        Table3Column {
            year: 2018,
            category: GbCategory::Standard,
            summit_finalists: 5,
            summit_ai_finalists: 3,
        },
        Table3Column {
            year: 2019,
            category: GbCategory::Standard,
            summit_finalists: 2,
            summit_ai_finalists: 0,
        },
        Table3Column {
            year: 2020,
            category: GbCategory::Standard,
            summit_finalists: 4,
            summit_ai_finalists: 1,
        },
        Table3Column {
            year: 2020,
            category: GbCategory::Covid19,
            summit_finalists: 2,
            summit_ai_finalists: 2,
        },
        Table3Column {
            year: 2021,
            category: GbCategory::Standard,
            summit_finalists: 1,
            summit_ai_finalists: 1,
        },
        Table3Column {
            year: 2021,
            category: GbCategory::Covid19,
            summit_finalists: 3,
            summit_ai_finalists: 3,
        },
    ]
}

/// Render Table III as ASCII.
pub fn render_table3() -> String {
    let cols = table3();
    let mut out = String::from("year/category      Summit  Summit AI/ML\n");
    for c in &cols {
        out.push_str(&format!(
            "{} {:<12} {:>6} {:>13}\n",
            c.year,
            c.category.name(),
            c.summit_finalists,
            c.summit_ai_finalists
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seventeen_summit_finalists_total() {
        // The study counts 17 Gordon Bell finalist project-years.
        let total: u32 = table3().iter().map(|c| c.summit_finalists).sum();
        assert_eq!(total, 17);
    }

    #[test]
    fn ai_counts_match_catalog() {
        // Table III's AI/ML row must equal the Section IV-A catalog counts.
        let finalists = ai_finalists();
        for col in table3() {
            let n = finalists
                .iter()
                .filter(|f| f.year == col.year && f.category == col.category)
                .count() as u32;
            assert_eq!(
                n,
                col.summit_ai_finalists,
                "{} {} mismatch",
                col.year,
                col.category.name()
            );
        }
        assert_eq!(finalists.len(), 10);
    }

    #[test]
    fn ai_never_exceeds_total() {
        for c in table3() {
            assert!(c.summit_ai_finalists <= c.summit_finalists);
        }
    }

    #[test]
    fn all_finalists_scale_out() {
        // Section IV-A: "These well-documented projects all scale to large
        // Summit node counts" — all but Trifan (256-node Summit component)
        // exceed 4,000 nodes.
        let big = ai_finalists()
            .iter()
            .filter(|f| f.max_nodes >= 4000)
            .count();
        assert_eq!(big, 9);
    }

    #[test]
    fn steering_is_the_covid_pattern() {
        // Three of the six COVID finalists use the steering motif.
        let steering = ai_finalists()
            .iter()
            .filter(|f| f.category == GbCategory::Covid19 && f.motif == Motif::Steering)
            .count();
        assert_eq!(steering, 3);
    }

    #[test]
    fn render_contains_all_years() {
        let t = render_table3();
        for y in ["2018", "2019", "2020", "2021"] {
            assert!(t.contains(y));
        }
    }
}
