//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors the
//! subset of the rand 0.8 API it actually uses: `StdRng` (here a
//! xoshiro256++ generator seeded via SplitMix64), the `Rng`/`SeedableRng`
//! traits with `gen`, `gen_range`, and `gen_bool`, and
//! `seq::SliceRandom::shuffle`. Streams are deterministic per seed but do
//! not match upstream `StdRng` (ChaCha12) bit-for-bit; all in-repo
//! consumers treat the stream as an arbitrary fixed function of the seed.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: 64 uniform bits per call.
pub trait RngCore {
    /// Next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the unit interval / full bit range.
pub trait Standard01: Sized {
    /// Draw one value using `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard01 for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard01 for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard01 for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard01 for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled element type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard01>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard01>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (floats in `[0, 1)`, ints over the full range).
    fn gen<T: Standard01>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard01>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&y));
            let z = rng.gen_range(0u32..=4);
            assert!(z <= 4);
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0f64;
        for _ in 0..4096 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 4096.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
