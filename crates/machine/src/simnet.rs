//! A bulk-synchronous network simulator over the fat tree.
//!
//! The α–β collective models assume contention-free links. This simulator
//! checks that assumption (and quantifies its violation) by executing
//! communication *schedules* — rounds of point-to-point transfers — against
//! per-resource serialization: each node's injection (send) and ejection
//! (receive) link carries one byte stream at a time, and each leaf switch's
//! uplink bundle carries at most `nodes_per_leaf / taper` concurrent
//! streams' worth of bandwidth. A round completes when its slowest resource
//! drains; the next round then starts (bulk-synchronous, which matches how
//! ring/tree collectives synchronize).
//!
//! Validation (tested): a simulated ring allreduce with one rank per node
//! matches the textbook `2(p−1)(α + m/(pβ))` formula to within rounding;
//! oversubscribing nodes (two ranks each) doubles the time; tapering the
//! tree slows only schedules that cross the spine.

use std::collections::HashMap;

use serde::Serialize;

use crate::topology::{FatTree, NvLinkGraph};

/// One point-to-point transfer within a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Transfer {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: f64,
}

/// Outcome of simulating a schedule.
#[derive(Debug, Clone, Serialize)]
pub struct SimOutcome {
    /// Total simulated seconds.
    pub seconds: f64,
    /// Per-round seconds.
    pub round_seconds: Vec<f64>,
    /// The bottleneck description of the slowest round.
    pub bottleneck: &'static str,
}

/// The simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimNetwork {
    /// Topology under simulation.
    pub tree: FatTree,
}

impl SimNetwork {
    /// Create a simulator over a tree.
    pub fn new(tree: FatTree) -> Self {
        SimNetwork { tree }
    }

    /// Simulate one round of concurrent transfers. Returns (seconds,
    /// bottleneck label).
    ///
    /// # Panics
    /// Panics on self-transfers or out-of-range nodes.
    pub fn simulate_round(&self, transfers: &[Transfer]) -> (f64, &'static str) {
        let beta = self.tree.injection.beta;
        let mut send_load: HashMap<u32, f64> = HashMap::new();
        let mut recv_load: HashMap<u32, f64> = HashMap::new();
        let mut uplink_load: HashMap<u32, f64> = HashMap::new();
        let mut max_single = 0.0f64;
        for t in transfers {
            assert_ne!(t.src, t.dst, "self-transfer");
            let path = self.tree.path(t.src, t.dst);
            // Serialization loads: seconds of wire time per resource.
            let wire = t.bytes / beta;
            *send_load.entry(t.src).or_insert(0.0) += wire;
            *recv_load.entry(t.dst).or_insert(0.0) += wire;
            if self.tree.leaf_of(t.src) != self.tree.leaf_of(t.dst) {
                // Uplink bundle of the source leaf: capacity is
                // nodes_per_leaf/taper concurrent streams.
                *uplink_load.entry(self.tree.leaf_of(t.src)).or_insert(0.0) += wire;
            }
            max_single = max_single.max(path.transfer_time(t.bytes));
        }
        let max_map = |m: &HashMap<u32, f64>| m.values().copied().fold(0.0f64, f64::max);
        let send = max_map(&send_load);
        let recv = max_map(&recv_load);
        // Uplink bundle bandwidth = per-node bandwidth × nodes_per_leaf /
        // taper, so `load` seconds of single-stream wire time drain in
        // load · taper / nodes_per_leaf seconds.
        let uplink = max_map(&uplink_load) * self.tree.taper
            / f64::from(self.tree.nodes_per_leaf)
            / self.tree.adaptive_routing_quality;
        let (worst, label) = [
            (send, "injection"),
            (recv, "ejection"),
            (uplink, "leaf uplink"),
            (max_single, "wire latency"),
        ]
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty candidates");
        (worst.max(max_single), label)
    }

    /// Simulate a multi-round schedule (bulk-synchronous rounds).
    pub fn simulate(&self, rounds: &[Vec<Transfer>]) -> SimOutcome {
        let mut round_seconds = Vec::with_capacity(rounds.len());
        let mut bottleneck = "empty";
        let mut worst_round = 0.0f64;
        for round in rounds {
            let (secs, label) = if round.is_empty() {
                (0.0, "empty")
            } else {
                self.simulate_round(round)
            };
            if secs > worst_round {
                worst_round = secs;
                bottleneck = label;
            }
            round_seconds.push(secs);
        }
        SimOutcome {
            seconds: round_seconds.iter().sum(),
            round_seconds,
            bottleneck,
        }
    }

    /// Build the ring-allreduce schedule for `ranks` ranks placed
    /// round-robin over `nodes` nodes, message `bytes` per rank:
    /// `2(ranks−1)` rounds each moving `bytes/ranks` along the ring.
    ///
    /// # Panics
    /// Panics if `ranks < 2` or `nodes` is zero.
    pub fn ring_allreduce_schedule(ranks: u32, nodes: u32, bytes: f64) -> Vec<Vec<Transfer>> {
        assert!(ranks >= 2, "ring needs at least two ranks");
        assert!(nodes >= 1, "need nodes");
        let chunk = bytes / f64::from(ranks);
        let node_of = |rank: u32| rank % nodes;
        let mut rounds = Vec::with_capacity(2 * (ranks as usize - 1));
        for _ in 0..2 * (ranks - 1) {
            let mut round = Vec::with_capacity(ranks as usize);
            for r in 0..ranks {
                let next = (r + 1) % ranks;
                if node_of(r) != node_of(next) {
                    round.push(Transfer {
                        src: node_of(r),
                        dst: node_of(next),
                        bytes: chunk,
                    });
                }
            }
            rounds.push(round);
        }
        rounds
    }

    /// Build a shifted all-to-all schedule over `nodes` nodes, `bytes` per
    /// pair: `nodes − 1` rounds; in round s node i sends to `(i+s) % nodes`.
    pub fn alltoall_schedule(nodes: u32, bytes: f64) -> Vec<Vec<Transfer>> {
        assert!(nodes >= 2, "alltoall needs at least two nodes");
        (1..nodes)
            .map(|s| {
                (0..nodes)
                    .map(|i| Transfer {
                        src: i,
                        dst: (i + s) % nodes,
                        bytes,
                    })
                    .collect()
            })
            .collect()
    }
}

/// A full machine for rank-level simulation: the inter-node fat tree plus
/// the intra-node NVLink graph and the rank → (node, GPU) placement.
///
/// Ranks are placed **block-wise**: rank `r` lives on node `r /
/// gpus_per_node` as GPU `r % gpus_per_node` — the same placement
/// `hierarchical_allreduce` groups assume, so a simulated hierarchical
/// collective's intra-group traffic really stays on NVLink.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClusterModel {
    /// The inter-node fabric.
    pub tree: FatTree,
    /// The intra-node NVLink connectivity.
    pub node: NvLinkGraph,
    /// Ranks (GPUs) per node. 1 models one rank per node (node-level
    /// collectives, Section VI-B style).
    pub gpus_per_node: u32,
    /// Per-message latency of an intra-node hop in seconds.
    pub nvlink_latency: f64,
}

impl ClusterModel {
    /// Full Summit: 4,608 nodes × 6 GPUs = 27,648 ranks.
    pub fn summit() -> Self {
        ClusterModel {
            tree: FatTree::summit(),
            node: NvLinkGraph::summit_node(),
            gpus_per_node: 6,
            nvlink_latency: crate::link::SUMMIT_NVLINK_LATENCY_S,
        }
    }

    /// A Summit-like cluster sized for `nodes` nodes, 6 ranks per node.
    pub fn summit_like(nodes: u32) -> Self {
        ClusterModel {
            tree: FatTree::summit_like(nodes),
            ..ClusterModel::summit()
        }
    }

    /// A Summit-like cluster with **one rank per node** — the paper's
    /// Section VI-B configuration (node-level ring over the fat tree).
    pub fn summit_nodes(nodes: u32) -> Self {
        ClusterModel {
            tree: FatTree::summit_like(nodes),
            gpus_per_node: 1,
            ..ClusterModel::summit()
        }
    }

    /// Total rank capacity of the modeled machine.
    pub fn capacity(&self) -> u64 {
        u64::from(self.tree.capacity()) * u64::from(self.gpus_per_node)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: u64) -> u32 {
        u32::try_from(rank / u64::from(self.gpus_per_node)).expect("node index fits u32")
    }

    /// Node-local GPU slot of `rank`.
    pub fn gpu_of(&self, rank: u64) -> u32 {
        (rank % u64::from(self.gpus_per_node)) as u32
    }
}

/// Continuous-time contention state over a [`ClusterModel`]: the per-link
/// free-time ledger the event-driven engine charges every transfer against.
///
/// Each shared resource (a rank's NVLink ingress/egress lane, a node's
/// injection/ejection NIC, a leaf switch's uplink/downlink bundle) carries
/// one byte stream at a time and serves transfers **FCFS in simulator
/// arrival order** (arrival order is deterministic and tracks virtual time):
/// a transfer starts when every resource on its route is free, occupies each
/// for its wire time at that resource's bandwidth, and completes after the
/// route's α/hop latency. Concurrent transfers sharing a link therefore
/// split its bandwidth exactly as [`SimNetwork::simulate_round`] accounts
/// per round — two streams on one spine uplink take 2× the solo wall time —
/// while disjoint routes proceed independently.
#[derive(Debug, Clone)]
pub struct FlowNet {
    cluster: ClusterModel,
    /// Per-rank NVLink egress / ingress lane free times.
    gpu_out: Vec<f64>,
    gpu_in: Vec<f64>,
    /// Per-node NIC free times.
    inject: Vec<f64>,
    eject: Vec<f64>,
    /// Per-leaf uplink/downlink bundle free times.
    up: Vec<f64>,
    down: Vec<f64>,
    /// Bandwidth of one leaf uplink bundle (bytes/s).
    bundle_beta: f64,
    /// Transfers that stayed on NVLink.
    pub nvlink_messages: u64,
    /// Inter-node transfers that stayed under one leaf switch.
    pub intra_leaf_messages: u64,
    /// Transfers that crossed the spine.
    pub spine_messages: u64,
}

impl FlowNet {
    /// Contention state for `ranks` ranks on `cluster`.
    ///
    /// # Panics
    /// Panics if `ranks` exceeds the cluster capacity.
    pub fn new(cluster: ClusterModel, ranks: usize) -> Self {
        assert!(
            ranks as u64 <= cluster.capacity(),
            "{ranks} ranks exceed cluster capacity {}",
            cluster.capacity()
        );
        let nodes = ranks.div_ceil(cluster.gpus_per_node as usize);
        let leaves = cluster.tree.leaf_count as usize;
        let bundle_beta = cluster.tree.injection.beta * f64::from(cluster.tree.nodes_per_leaf)
            / cluster.tree.taper
            * cluster.tree.adaptive_routing_quality;
        FlowNet {
            cluster,
            gpu_out: vec![0.0; ranks],
            gpu_in: vec![0.0; ranks],
            inject: vec![0.0; nodes],
            eject: vec![0.0; nodes],
            up: vec![0.0; leaves],
            down: vec![0.0; leaves],
            bundle_beta,
            nvlink_messages: 0,
            intra_leaf_messages: 0,
            spine_messages: 0,
        }
    }

    /// The cluster under simulation.
    pub fn cluster(&self) -> &ClusterModel {
        &self.cluster
    }

    /// Route one transfer of `bytes` from `src` to `dst` (ranks), earliest
    /// start `start`. Reserves every resource on the route and returns the
    /// virtual completion time (wire drain + route latency).
    ///
    /// # Panics
    /// Panics on self-transfers (debug) or out-of-range ranks.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: f64, start: f64) -> f64 {
        debug_assert_ne!(src, dst, "self-transfer");
        let g = self.cluster.gpus_per_node as usize;
        let (node_s, node_d) = (src / g, dst / g);
        if node_s == node_d {
            // Intra-node hop: NVLink (or X-bus) lane pair.
            let bw = self
                .cluster
                .node
                .p2p_bandwidth((src % g) as u32, (dst % g) as u32);
            let t0 = start.max(self.gpu_out[src]).max(self.gpu_in[dst]);
            let done = t0 + bytes / bw;
            self.gpu_out[src] = done;
            self.gpu_in[dst] = done;
            self.nvlink_messages += 1;
            return done + self.cluster.nvlink_latency;
        }
        let tree = &self.cluster.tree;
        let beta = tree.injection.beta;
        let wire = bytes / beta;
        let (leaf_s, leaf_d) = (tree.leaf_of(node_s as u32) as usize, {
            tree.leaf_of(node_d as u32) as usize
        });
        let cross = leaf_s != leaf_d;
        let mut t0 = start.max(self.inject[node_s]).max(self.eject[node_d]);
        let mut drain = wire;
        if cross {
            t0 = t0.max(self.up[leaf_s]).max(self.down[leaf_d]);
            let bundle_wire = bytes / self.bundle_beta;
            self.up[leaf_s] = t0 + bundle_wire;
            self.down[leaf_d] = t0 + bundle_wire;
            drain = drain.max(bundle_wire);
            self.spine_messages += 1;
        } else {
            self.intra_leaf_messages += 1;
        }
        self.inject[node_s] = t0 + wire;
        self.eject[node_d] = t0 + wire;
        t0 + drain + tree.latency(node_s as u32, node_d as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;
    use crate::LinkModel;

    fn net(nodes: u32) -> SimNetwork {
        SimNetwork::new(FatTree::summit_like(nodes))
    }

    /// One rank per node: the simulation reproduces the textbook ring time
    /// (latency per hop differs slightly because the simulator uses real
    /// path latencies, so compare the bandwidth term).
    #[test]
    fn ring_matches_analytic_model() {
        let nodes = 36u32;
        let bytes = 36.0 * 1.0e6; // divisible chunks
        let sim = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(nodes, nodes, bytes));
        let link = LinkModel::inter_node(&NodeSpec::summit());
        let expected_bw_term = 2.0 * f64::from(nodes - 1) / f64::from(nodes) * bytes / link.beta;
        // Simulated time = bandwidth term + per-round latencies.
        assert!(sim.seconds >= expected_bw_term);
        let latency_budget = 2.0 * f64::from(nodes - 1) * (link.alpha + 3.0 * 0.1e-6) * 1.5;
        assert!(
            sim.seconds <= expected_bw_term + latency_budget,
            "sim {} vs bw {}",
            sim.seconds,
            expected_bw_term
        );
    }

    /// Two ranks per node: the injection link serializes both ring streams,
    /// doubling the bandwidth term.
    #[test]
    fn oversubscription_doubles_time() {
        let nodes = 18u32;
        let bytes = 36.0 * 1.0e6;
        let one = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(nodes, nodes, bytes));
        let two = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(
            2 * nodes,
            nodes,
            bytes,
        ));
        let ratio = two.seconds / one.seconds;
        assert!(
            ratio > 1.7 && ratio < 2.3,
            "expected ~2x from sharing the NIC, got {ratio}"
        );
    }

    /// Tapering the tree slows spine-crossing schedules but not intra-leaf
    /// ones.
    #[test]
    fn taper_hits_only_cross_leaf_traffic() {
        let mut tapered = FatTree::summit_like(36);
        tapered.taper = 4.0;
        let sim_tapered = SimNetwork::new(tapered);
        let sim_full = net(36);
        // Intra-leaf round: nodes 0..18 pairwise within the leaf.
        let intra: Vec<Transfer> = (0..9)
            .map(|i| Transfer {
                src: i,
                dst: i + 9,
                bytes: 1.0e7,
            })
            .collect();
        let (t_full, _) = sim_full.simulate_round(&intra);
        let (t_tapered, _) = sim_tapered.simulate_round(&intra);
        assert!((t_full - t_tapered).abs() / t_full < 1e-9);
        // Cross-leaf all-to-all: the tapered uplink becomes the bottleneck.
        let rounds = SimNetwork::alltoall_schedule(36, 1.0e7);
        let full = sim_full.simulate(&rounds);
        let tapered_out = sim_tapered.simulate(&rounds);
        assert!(
            tapered_out.seconds > 1.5 * full.seconds,
            "{} vs {}",
            tapered_out.seconds,
            full.seconds
        );
    }

    #[test]
    fn alltoall_bottleneck_is_reported() {
        let rounds = SimNetwork::alltoall_schedule(36, 1.0e7);
        let out = net(36).simulate(&rounds);
        assert_eq!(out.round_seconds.len(), 35);
        assert!(["injection", "ejection", "leaf uplink"].contains(&out.bottleneck));
    }

    #[test]
    fn empty_round_is_free() {
        let out = net(4).simulate(&[vec![]]);
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        let _ = net(4).simulate_round(&[Transfer {
            src: 1,
            dst: 1,
            bytes: 1.0,
        }]);
    }

    /// Two transfers forced through one leaf's uplink bundle take exactly
    /// 2× the solo wall time — the contention pin. Configured so the
    /// uplink is the serializing resource (bundle capacity = one node's β)
    /// and every latency term is zero, the ratio is exact.
    #[test]
    fn shared_spine_link_serializes_to_exactly_twice_solo() {
        let mut cluster = ClusterModel::summit_nodes(36);
        cluster.tree.injection = LinkModel::new(0.0, 25.0e9);
        cluster.tree.hop_latency = 0.0;
        cluster.tree.taper = f64::from(cluster.tree.nodes_per_leaf);
        cluster.tree.adaptive_routing_quality = 1.0;
        let bytes = 1.0e8;
        let solo = FlowNet::new(cluster, 36).transfer(0, 20, bytes, 0.0);
        let mut net = FlowNet::new(cluster, 36);
        let a = net.transfer(0, 20, bytes, 0.0); // leaf 0 -> leaf 1
        let b = net.transfer(1, 21, bytes, 0.0); // same uplink, same downlink
        assert_eq!(net.spine_messages, 2);
        assert!((a - solo).abs() < 1e-15, "first transfer is unimpeded");
        assert!(
            (b / solo - 2.0).abs() < 1e-12,
            "shared spine link: {b} vs solo {solo}"
        );
    }

    /// Disjoint routes do not contend: transfers under different leaf
    /// switches finish in solo time even when issued concurrently.
    #[test]
    fn disjoint_routes_do_not_contend() {
        let cluster = ClusterModel::summit_nodes(72);
        let bytes = 1.0e8;
        let solo = FlowNet::new(cluster, 72).transfer(0, 1, bytes, 0.0);
        let mut net = FlowNet::new(cluster, 72);
        let a = net.transfer(0, 1, bytes, 0.0); // within leaf 0
        let b = net.transfer(20, 21, bytes, 0.0); // within leaf 1
        assert_eq!(net.intra_leaf_messages, 2);
        assert!((a - solo).abs() < 1e-15);
        assert!((b - solo).abs() < 1e-15);
    }

    /// Intra-node transfers ride NVLink at triplet bandwidth, cross-socket
    /// ones are clamped by the X-bus, and both are classified as NVLink
    /// traffic rather than fabric traffic.
    #[test]
    fn intra_node_transfers_use_nvlink_rates() {
        let cluster = ClusterModel::summit_like(2);
        let bytes = 1.0e8;
        let mut net = FlowNet::new(cluster, 12);
        let triplet = net.transfer(0, 1, bytes, 0.0);
        let expected = bytes / cluster.node.nvlink_bw + cluster.nvlink_latency;
        assert!((triplet - expected).abs() < 1e-15);
        let mut net = FlowNet::new(cluster, 12);
        let cross_socket = net.transfer(0, 3, bytes, 0.0);
        // Cross-socket rate is clamped by min(NVLink, X-bus).
        let clamped = cluster.node.nvlink_bw.min(cluster.node.xbus_bw);
        assert!((cross_socket - (bytes / clamped + cluster.nvlink_latency)).abs() < 1e-15);
        assert_eq!(net.nvlink_messages, 1);
        assert_eq!(net.spine_messages + net.intra_leaf_messages, 0);
        // Same GPUs on *different* nodes go over the fabric instead.
        let mut net = FlowNet::new(cluster, 12);
        let _ = net.transfer(0, 6, bytes, 0.0);
        assert_eq!(net.nvlink_messages, 0);
        assert_eq!(net.intra_leaf_messages, 1);
    }

    /// The same NIC serializes two injections — consistent with
    /// `simulate_round`'s per-round injection accounting.
    #[test]
    fn shared_nic_serializes_like_the_round_model() {
        let cluster = ClusterModel::summit_like(4); // 6 ranks per node
        let bytes = 1.0e8;
        let solo = FlowNet::new(cluster, 24).transfer(0, 6, bytes, 0.0);
        let mut net = FlowNet::new(cluster, 24);
        let _ = net.transfer(0, 6, bytes, 0.0);
        let b = net.transfer(1, 12, bytes, 0.0); // same source NIC, other dst
        let alpha = cluster.tree.injection.alpha;
        let wire = bytes / cluster.tree.injection.beta;
        assert!(
            b - solo > 0.9 * wire,
            "second injection waits: {b} vs {solo}"
        );
        assert!(b < solo + wire + alpha + 1e-9);
    }

    /// Latency dominates tiny messages: the round time equals the wire
    /// latency, not the (near-zero) serialization loads.
    #[test]
    fn latency_floor_respected() {
        let n = net(40);
        let (t, label) = n.simulate_round(&[Transfer {
            src: 0,
            dst: 39, // crosses the spine
            bytes: 1.0,
        }]);
        let expected = n.tree.path(0, 39).transfer_time(1.0);
        assert!((t - expected).abs() < 1e-12);
        assert_eq!(label, "wire latency");
    }
}
