//! The paper-reproduction report generator.
//!
//! One function per table/figure/analysis of the paper, each returning the
//! rendered artifact as text, plus [`full_report`] which assembles them all
//! in paper order. The `repro` binary in `summit-bench` is a thin CLI over
//! this module (`repro fig1`, `repro case-studies`, `repro all`, …).

use summit_comm::model::{Algorithm, CollectiveModel};
use summit_io::requirements::resnet50_full_summit_demand;
use summit_io::tier::StorageTier;
use summit_machine::spec::{MachineSpec, NodeSpec};
use summit_machine::LinkModel;
use summit_perf::case_studies::{render_table, CaseStudy, CaseStudyResult};
use summit_perf::crossover::CommCrossover;
use summit_perf::parallelism::{HybridPlanner, ParallelStrategy};
use summit_perf::roofline::{Kernel, Roofline};
use summit_survey::{analytics, gordon_bell, portfolio, taxonomy::Motif};
use summit_workloads::Workload;

/// Table I: the AI motif taxonomy.
pub fn table1() -> String {
    let mut out = String::from("TABLE I. SCIENCE APPLICATION AI MOTIFS\n");
    for m in Motif::table1_rows() {
        out.push_str(&format!(
            "* {:<18} {}\n  e.g. {}\n",
            m.name(),
            m.definition(),
            m.example()
        ));
    }
    out
}

/// Table II: science domains and subdomains.
pub fn table2() -> String {
    let mut out = String::from("TABLE II. SCIENCE DOMAINS AND SUBDOMAINS\n");
    for d in summit_survey::taxonomy::Domain::ALL {
        out.push_str(&format!("{:<18} {}\n", d.name(), d.subdomains().join(", ")));
    }
    out
}

/// Table III: Gordon Bell finalist counts.
pub fn table3() -> String {
    let mut out = String::from("TABLE III. GORDON BELL AWARD FINALIST PROJECT COUNTS\n");
    out.push_str(&gordon_bell::render_table3());
    out.push_str("\nAI/ML finalist catalog (Section IV-A):\n");
    for f in gordon_bell::ai_finalists() {
        out.push_str(&format!(
            "  {} [{}] — {} (to {} nodes)\n",
            f.citation,
            f.motif.name(),
            f.summary,
            f.max_nodes
        ));
    }
    out
}

/// Figure 1: overall AI/ML usage.
pub fn fig1() -> String {
    let records = portfolio::build();
    analytics::render_fig1(&analytics::overall_usage(&records))
}

/// Figure 2: usage by program and year.
pub fn fig2() -> String {
    let records = portfolio::build();
    analytics::render_fig2(&analytics::usage_by_program_year(&records))
}

/// Figure 3: usage by ML method.
pub fn fig3() -> String {
    let records = portfolio::build();
    analytics::render_fig3(&analytics::usage_by_method(&records))
}

/// Figure 4: usage by science domain.
pub fn fig4() -> String {
    let records = portfolio::build();
    analytics::render_fig4(&analytics::usage_by_domain(&records))
}

/// Figure 5: usage by AI motif.
pub fn fig5() -> String {
    let records = portfolio::build();
    analytics::render_fig5(&analytics::usage_by_motif(&records))
}

/// Figure 6: motif × domain cross-tabulation.
pub fn fig6() -> String {
    let records = portfolio::build();
    analytics::render_fig6(&analytics::motif_by_domain(&records))
}

/// Section IV-B: the extreme-scale case-study table (model vs paper).
pub fn case_studies() -> String {
    let results: Vec<CaseStudyResult> = CaseStudy::all().iter().map(CaseStudy::evaluate).collect();
    let mut out = String::from("SECTION IV-B. AI/ML METHODS AT EXTREME SCALE\n");
    out.push_str(&render_table(&results));
    out.push_str("\nEfficiency curves (nodes: efficiency):\n");
    for cs in CaseStudy::all() {
        out.push_str(&format!("  {}\n   ", cs.name));
        for (n, e) in cs.efficiency_curve() {
            out.push_str(&format!(" {n}:{:.1}%", e * 100.0));
        }
        out.push('\n');
    }
    out
}

/// Section VI-B: the I/O requirement analysis.
pub fn io_analysis() -> String {
    let summit = MachineSpec::summit();
    let demand = resnet50_full_summit_demand();
    let gpfs = demand.feasibility(&StorageTier::shared_fs(&summit));
    let nvme = demand.feasibility(&StorageTier::node_local_nvme(&summit, summit.nodes));
    let mut out =
        String::from("SECTION VI-B. I/O CONSIDERATIONS (ResNet50/ImageNet, full Summit)\n");
    out.push_str(&format!(
        "required aggregate read bandwidth : {:6.1} TB/s (paper: ~20 TB/s)\n",
        demand.aggregate_read_bw() / 1e12
    ));
    for f in [gpfs, nvme] {
        out.push_str(&format!(
            "{:<34}: {:6.1} TB/s -> {} ({:.0}% of ideal throughput)\n",
            f.tier_name,
            f.supply_bw / 1e12,
            if f.satisfied {
                "satisfies demand"
            } else {
                "CANNOT sustain demand"
            },
            f.achievable_fraction * 100.0
        ));
    }
    out
}

/// Section VI-B: the communication analysis and crossover.
pub fn comm_analysis() -> String {
    let link = LinkModel::inter_node(&NodeSpec::summit());
    let model = CollectiveModel::new(link);
    let p = 4608;
    let mut out = String::from("SECTION VI-B. COMMUNICATION CONSIDERATIONS (ring allreduce)\n");
    out.push_str(&format!(
        "network bandwidth {:.1} GB/s; ring algorithm bandwidth {:.1} GB/s\n",
        link.beta / 1e9,
        link.beta / 2e9
    ));
    for w in [Workload::resnet50(), Workload::bert_large()] {
        let msg = w.gradient_message_bytes();
        let t = model.bandwidth_term(Algorithm::Ring, p, msg);
        out.push_str(&format!(
            "{:<18} message {:7.2} MB -> allreduce {:6.1} ms (compute/batch {:6.1} ms)\n",
            w.name,
            msg / 1e6,
            t * 1e3,
            w.step_compute_seconds() * 1e3
        ));
    }
    let x = CommCrossover::summit_bert_anchor();
    out.push_str(&format!(
        "communication-bound crossover: {:.0} M parameters (BERT-large is 345 M)\n",
        x.crossover_params() / 1e6
    ));
    out
}

/// Section VI-B outlook: "generic model parallelization is essential" —
/// the hybrid planner's verdicts for the beyond-BERT model series.
pub fn parallelism_analysis() -> String {
    let mut out = String::from(
        "SECTION VI-B OUTLOOK. MODEL PARALLELISM BEYOND BERT-LARGE
",
    );
    out.push_str(&format!(
        "{:<12} {:>14} {:>10} {:>22} {:>14}
",
        "model", "params", "fits DP?", "best (dp x tp x pp)", "samples/s"
    ));
    let planner = HybridPlanner::summit(256, 30.0e12);
    for (name, params) in [
        ("BERT-large", 0.345e9),
        ("GPT-1.5B", 1.5e9),
        ("GPT-10B", 10.0e9),
        ("GPT-100B", 100.0e9),
    ] {
        let w = Workload::transformer_lm(name, params);
        let pure = planner.estimate(&w, ParallelStrategy::pure_data(planner.gpus));
        let best = planner.best(&w);
        let (plan, tput) = match &best {
            Some(b) => (
                format!(
                    "{}x{}x{}",
                    b.strategy.data, b.strategy.tensor, b.strategy.pipeline
                ),
                format!("{:.0}", b.throughput),
            ),
            None => ("infeasible".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<12} {:>12.1}M {:>10} {:>22} {:>14}
",
            name,
            params / 1e6,
            if pure.is_some() { "yes" } else { "NO" },
            plan,
            tput
        ));
    }
    out.push_str(
        "(256 Summit nodes, 16 GB V100s, Adam state, activation checkpointing)
",
    );
    out
}

/// Section VI-B ¶1: the device-level roofline — why "these applications
/// are typically computational bound at the device level" and when not.
pub fn roofline_analysis() -> String {
    let gpu = summit_machine::spec::GpuSpec::v100();
    let r = Roofline::of_gpu(&gpu);
    let mut out = String::from(
        "SECTION VI-B. DEVICE-LEVEL ROOFLINE (V100, mixed precision)
",
    );
    out.push_str(&format!(
        "peak {:.0} TF/s, HBM {:.0} GB/s -> machine balance {:.0} FLOP/byte
",
        r.peak_flops / 1e12,
        r.mem_bw / 1e9,
        r.machine_balance()
    ));
    for kernel in [
        Kernel::matmul_fp16(64),
        Kernel::matmul_fp16(512),
        Kernel::conv3x3_fp16(64),
        Kernel::recurrent_gemv_fp16(),
        Kernel::elementwise_fp32(),
    ] {
        let p = r.evaluate(kernel);
        out.push_str(&format!(
            "{:<24} I = {:>7.1} FLOP/B -> {:>6.1} TF/s ({:>4.0}% of peak, {})
",
            p.kernel.name,
            p.kernel.arithmetic_intensity,
            p.attainable_flops / 1e12,
            p.peak_fraction * 100.0,
            if p.compute_bound {
                "compute-bound"
            } else {
                "MEMORY-bound"
            }
        ));
    }
    out.push_str(
        "(\"High floating point rates for model training requires large matrix sizes\")\n",
    );
    out
}

/// The full paper reproduction, in paper order.
pub fn full_report() -> String {
    let sections: [(&str, String); 14] = [
        ("Table I", table1()),
        ("Table II", table2()),
        ("Figure 1", fig1()),
        ("Figure 2", fig2()),
        ("Figure 3", fig3()),
        ("Figure 4", fig4()),
        ("Figure 5", fig5()),
        ("Figure 6", fig6()),
        ("Table III", table3()),
        ("Case studies", case_studies()),
        ("I/O analysis", io_analysis()),
        ("Comm analysis", comm_analysis()),
        ("Roofline", roofline_analysis()),
        ("Parallelism outlook", parallelism_analysis()),
    ];
    let mut out = String::from(
        "================================================================\n\
         Learning to Scale the Summit — reproduction report (summit-ai)\n\
         ================================================================\n\n",
    );
    for (name, body) in sections {
        out.push_str(&format!("---- {name} ----\n{body}\n"));
    }
    out
}

/// A named artifact generator: `(artifact id, generator)`.
pub type Artifact = (&'static str, fn() -> String);

/// Artifact ids accepted by the `repro` CLI, with their generators.
pub fn artifacts() -> Vec<Artifact> {
    vec![
        ("table1", table1 as fn() -> String),
        ("table2", table2),
        ("table3", table3),
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("case-studies", case_studies),
        ("io-analysis", io_analysis),
        ("comm-analysis", comm_analysis),
        ("roofline", roofline_analysis),
        ("parallelism", parallelism_analysis),
        ("all", full_report),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_artifact_renders() {
        for (id, gen) in artifacts() {
            let text = gen();
            assert!(!text.is_empty(), "{id} rendered empty");
        }
    }

    #[test]
    fn full_report_contains_all_sections() {
        let r = full_report();
        for needle in [
            "TABLE I.",
            "TABLE II.",
            "TABLE III.",
            "Fig 1.",
            "Fig 2.",
            "Fig 3.",
            "Fig 4.",
            "Fig 5.",
            "Fig 6.",
            "EXTREME SCALE",
            "I/O CONSIDERATIONS",
            "COMMUNICATION CONSIDERATIONS",
            "MODEL PARALLELISM",
            "ROOFLINE",
        ] {
            assert!(r.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn io_analysis_states_the_verdicts() {
        let r = io_analysis();
        assert!(r.contains("CANNOT sustain demand"), "GPFS verdict missing");
        assert!(r.contains("satisfies demand"), "NVMe verdict missing");
    }

    #[test]
    fn comm_analysis_reports_crossover_at_bert() {
        // The crossover must land within a few percent of BERT-large's
        // 345 M parameters; parse the rendered number.
        let r = comm_analysis();
        let line = r
            .lines()
            .find(|l| l.contains("crossover"))
            .expect("crossover line present");
        let millions: f64 = line
            .split("crossover: ")
            .nth(1)
            .and_then(|s| s.split(" M").next())
            .and_then(|s| s.trim().parse().ok())
            .expect("parsable crossover value");
        assert!((millions - 345.0).abs() / 345.0 < 0.05, "{line}");
    }
}
