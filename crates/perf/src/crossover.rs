//! The Section VI-B communication-bound crossover.
//!
//! "Thus models larger than BERT-large become communication-bound for the
//! widely used data-parallel training on Summit."
//!
//! The argument formalized: per-GPU batch size is memory-bound, so as the
//! model grows the batch shrinks proportionally and the per-step compute
//! time stays roughly constant, while the allreduce message (and therefore
//! the ring's bandwidth time) grows linearly with the parameter count. The
//! crossover parameter count is where the two curves meet.
//!
//! [`AlgorithmCrossoverStudy`] answers the adjacent question — *which*
//! allreduce algorithm wins at each (message size, world size) cell — from
//! the simulated schedules rather than the closed forms, so fold overheads
//! and uneven splits are priced in. `summit-bench`'s `sim_gate` writes the
//! study through the bench harness.

use serde::Serialize;
use summit_comm::model::{Algorithm, CollectiveModel};
use summit_machine::{LinkModel, NodeSpec};
use summit_workloads::{GradPrecision, Workload};

/// The memory-bound compute / linear-communication crossover model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommCrossover {
    /// Per-step forward+backward time, held constant by the memory-bound
    /// batch assumption (seconds). Anchored to BERT-large's ≈110 ms.
    pub step_compute_seconds: f64,
    /// Gradient precision for the allreduce message.
    pub precision: GradPrecision,
    /// Inter-node link.
    pub link: LinkModel,
    /// Rank count for the collective (large-p ring ⇒ barely matters).
    pub ranks: u64,
}

impl CommCrossover {
    /// The paper's setting: BERT-large anchor on full Summit with fp32
    /// gradients.
    pub fn summit_bert_anchor() -> Self {
        CommCrossover {
            step_compute_seconds: Workload::bert_large().step_compute_seconds(),
            precision: GradPrecision::Fp32,
            link: LinkModel::inter_node(&NodeSpec::summit()),
            ranks: 4608,
        }
    }

    /// Allreduce time for a model of `params` parameters (bandwidth term of
    /// the ring, matching the paper's arithmetic).
    pub fn comm_seconds(&self, params: f64) -> f64 {
        let model = CollectiveModel::new(self.link);
        model.bandwidth_term(Algorithm::Ring, self.ranks, params * self.precision.bytes())
    }

    /// Whether a model of `params` parameters is communication-bound
    /// (allreduce time exceeds per-batch compute).
    pub fn comm_bound(&self, params: f64) -> bool {
        self.comm_seconds(params) > self.step_compute_seconds
    }

    /// The crossover parameter count: the model size at which allreduce
    /// time equals compute time. Closed form because both sides are linear:
    /// `params* = t_compute · β / (2 · bytes_per_param · (p−1)/p)`.
    pub fn crossover_params(&self) -> f64 {
        let pf = self.ranks as f64;
        let factor = 2.0 * (pf - 1.0) / pf * self.precision.bytes() / self.link.beta;
        self.step_compute_seconds / factor
    }
}

/// One (world size, message size) cell of the algorithm crossover study:
/// simulated allreduce seconds per algorithm and the winner.
#[derive(Debug, Clone, Serialize)]
pub struct CrossoverCell {
    /// Total GPU ranks participating in the allreduce.
    pub ranks: u64,
    /// Allreduce message per rank, bytes.
    pub message_bytes: f64,
    /// Flat ring over all ranks.
    pub ring_seconds: f64,
    /// Recursive doubling (non-power-of-two worlds fold).
    pub recursive_doubling_seconds: f64,
    /// Rabenseifner (falls back to its closed form when the message does
    /// not divide by the power-of-two core — no schedule exists there).
    pub rabenseifner_seconds: f64,
    /// NVLink ring inside each node + fabric ring across node leaders —
    /// the same GPU count as the flat variants, restructured.
    pub hierarchical_seconds: f64,
    /// Name of the fastest entry.
    pub winner: &'static str,
}

/// Ring vs recursive doubling vs Rabenseifner vs hierarchical, swept over
/// message size × world size, every time taken from the event-driven
/// schedule simulation (full α–β: the latency terms decide the
/// small-message end of the crossover, the bandwidth terms the large end).
///
/// The flat algorithms place all `p` GPU ranks on the fabric; hierarchical
/// restructures the *same* `p` ranks as a NVLink ring inside each node
/// plus a fabric ring across the `p / gpus_per_node` leaders, so every
/// cell compares equal-sized machines.
#[derive(Debug, Clone, Serialize)]
pub struct AlgorithmCrossoverStudy {
    /// Inter-node link.
    pub link: LinkModel,
    /// Intra-node link for the hierarchical variant.
    pub nvlink: LinkModel,
    /// GPUs per node for the hierarchical variant.
    pub gpus_per_node: u64,
    /// Total GPU rank counts to sweep (multiples of `gpus_per_node`).
    pub world_sizes: Vec<u64>,
    /// Message sizes to sweep, bytes per rank.
    pub message_sizes: Vec<f64>,
}

impl AlgorithmCrossoverStudy {
    /// Summit's links and a sweep spanning the latency-bound to
    /// bandwidth-bound regimes: 1 KB – 32 MB across 24 – 6144 GPUs
    /// (4 – 1024 nodes).
    pub fn summit() -> Self {
        let node = NodeSpec::summit();
        AlgorithmCrossoverStudy {
            link: LinkModel::inter_node(&node),
            nvlink: LinkModel::nvlink(&node),
            gpus_per_node: u64::from(node.gpus_per_node),
            world_sizes: vec![24, 96, 768, 6144],
            message_sizes: vec![1024.0, 32.0 * 1024.0, 1024.0 * 1024.0, 32.0e6],
        }
    }

    fn algo_seconds(&self, alg: Algorithm, p: u64, bytes: f64) -> f64 {
        let m = CollectiveModel::new(self.link);
        m.simulated_allreduce_time(alg, p, bytes)
            .unwrap_or_else(|| m.allreduce_time(alg, p, bytes))
    }

    /// Simulated seconds for one cell of the sweep.
    ///
    /// # Panics
    /// Panics unless `gpus_per_node` divides `ranks`.
    pub fn cell(&self, ranks: u64, message_bytes: f64) -> CrossoverCell {
        assert!(
            ranks.is_multiple_of(self.gpus_per_node),
            "world must fill whole nodes"
        );
        let ring = self.algo_seconds(Algorithm::Ring, ranks, message_bytes);
        let rd = self.algo_seconds(Algorithm::RecursiveDoubling, ranks, message_bytes);
        let rab = self.algo_seconds(Algorithm::Rabenseifner, ranks, message_bytes);
        // Hierarchical: NVLink ring across the node's GPUs, then the
        // fabric ring across node leaders — the HierarchicalModel
        // decomposition, each stage simulated.
        let intra = CollectiveModel::new(self.nvlink)
            .simulated_allreduce_time(Algorithm::Ring, self.gpus_per_node, message_bytes)
            .expect("ring simulates at any p");
        let inter = self.algo_seconds(Algorithm::Ring, ranks / self.gpus_per_node, message_bytes);
        let hier = intra + inter;
        let entries = [
            ("ring", ring),
            ("recursive-doubling", rd),
            ("rabenseifner", rab),
            ("hierarchical", hier),
        ];
        let winner = entries
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty")
            .0;
        CrossoverCell {
            ranks,
            message_bytes,
            ring_seconds: ring,
            recursive_doubling_seconds: rd,
            rabenseifner_seconds: rab,
            hierarchical_seconds: hier,
            winner,
        }
    }

    /// The full sweep, row-major over `world_sizes` × `message_sizes`.
    pub fn run(&self) -> Vec<CrossoverCell> {
        let mut cells = Vec::with_capacity(self.world_sizes.len() * self.message_sizes.len());
        for &p in &self.world_sizes {
            for &bytes in &self.message_sizes {
                cells.push(self.cell(p, bytes));
            }
        }
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_lands_at_bert_large() {
        // The paper's qualitative claim, quantitatively: the crossover is at
        // ≈345 M parameters — BERT-large.
        let x = CommCrossover::summit_bert_anchor();
        let params = x.crossover_params();
        assert!(
            (params - 345.0e6).abs() / 345.0e6 < 0.05,
            "crossover at {params} params"
        );
    }

    #[test]
    fn resnet_below_bert_above() {
        let x = CommCrossover::summit_bert_anchor();
        assert!(!x.comm_bound(Workload::resnet50().params));
        // A model 2× BERT-large is communication-bound.
        assert!(x.comm_bound(2.0 * Workload::bert_large().params));
    }

    #[test]
    fn fp16_doubles_the_crossover() {
        let fp32 = CommCrossover::summit_bert_anchor();
        let fp16 = CommCrossover {
            precision: GradPrecision::Fp16,
            ..fp32
        };
        let ratio = fp16.crossover_params() / fp32.crossover_params();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn faster_network_moves_crossover_up() {
        let summit = CommCrossover::summit_bert_anchor();
        let faster = CommCrossover {
            link: LinkModel::new(summit.link.alpha, 4.0 * summit.link.beta),
            ..summit
        };
        assert!((faster.crossover_params() / summit.crossover_params() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn comm_seconds_matches_paper_examples() {
        let x = CommCrossover::summit_bert_anchor();
        // ResNet50: ~8 ms; BERT-large: ~110 ms.
        assert!((x.comm_seconds(25.6e6) - 8.0e-3).abs() / 8.0e-3 < 0.05);
        assert!((x.comm_seconds(345.0e6) - 110.0e-3).abs() / 110.0e-3 < 0.05);
    }

    #[test]
    fn boundary_consistency() {
        let x = CommCrossover::summit_bert_anchor();
        let p = x.crossover_params();
        assert!(!x.comm_bound(p * 0.999));
        assert!(x.comm_bound(p * 1.001));
    }

    /// Down-scaled algorithm crossover: the textbook regimes emerge from
    /// the simulated schedules. Latency-dominated cells go to a
    /// logarithmic-step algorithm, bandwidth-dominated cells to a
    /// bandwidth-optimal one.
    #[test]
    fn algorithm_crossover_shows_both_regimes() {
        let study = AlgorithmCrossoverStudy {
            world_sizes: vec![24, 96],
            message_sizes: vec![64.0, 1024.0 * 1024.0],
            ..AlgorithmCrossoverStudy::summit()
        };
        let cells = study.run();
        assert_eq!(cells.len(), 4);
        for cell in &cells {
            let best = [
                cell.ring_seconds,
                cell.recursive_doubling_seconds,
                cell.rabenseifner_seconds,
                cell.hierarchical_seconds,
            ]
            .into_iter()
            .fold(f64::INFINITY, f64::min);
            assert!(best > 0.0);
            // The winner label matches the minimum.
            let named = match cell.winner {
                "ring" => cell.ring_seconds,
                "recursive-doubling" => cell.recursive_doubling_seconds,
                "rabenseifner" => cell.rabenseifner_seconds,
                "hierarchical" => cell.hierarchical_seconds,
                other => panic!("unknown winner {other}"),
            };
            assert_eq!(named, best, "winner mislabeled in {cell:?}");
        }
        // 64 B across 96 ranks: pure latency — a log-step algorithm wins.
        let tiny = &cells[2];
        assert!(
            matches!(tiny.winner, "recursive-doubling" | "rabenseifner"),
            "latency regime picked {}",
            tiny.winner
        );
        assert!(tiny.recursive_doubling_seconds < tiny.ring_seconds);
        // 1 MB across 96 ranks: bandwidth — the flat ring's 2(p−1) latency
        // terms are amortized and a bandwidth-optimal variant wins.
        let big = &cells[3];
        assert!(
            matches!(big.winner, "ring" | "rabenseifner" | "hierarchical"),
            "bandwidth regime picked {}",
            big.winner
        );
    }

    /// Hierarchical beats the flat ring once the world is large and the
    /// message sizable: 2(p−1) fabric latency terms shrink to
    /// 2(p/g−1) and most bandwidth moves to NVLink.
    #[test]
    fn hierarchical_wins_at_scale() {
        let study = AlgorithmCrossoverStudy::summit();
        let cell = study.cell(768, 1024.0 * 1024.0);
        assert!(
            cell.hierarchical_seconds < cell.ring_seconds,
            "hierarchical {} vs flat ring {}",
            cell.hierarchical_seconds,
            cell.ring_seconds
        );
    }
}
