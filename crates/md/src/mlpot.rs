//! The DeePMD-style machine-learned potential.
//!
//! Per-atom Gaussian radial descriptors with a smooth cosine cutoff feed a
//! shared MLP that predicts per-atom energies; the total energy is their
//! sum and forces come from the **analytic** chain rule — backpropagation
//! to the descriptor inputs (via [`summit_dl::Mlp::backward_input`])
//! composed with the descriptor Jacobian. Smoothness of the cutoff makes
//! the forces continuous, which is exactly the symmetry/consistency
//! property the paper's accuracy discussion highlights for Jia et al.'s
//! potentials ("symmetries in molecular dynamics potentials are enforced
//! exactly"): this descriptor is invariant under permutations, rotations
//! and translations by construction.

use std::cell::RefCell;

use summit_dl::model::{Mlp, MlpSpec};
use summit_tensor::Matrix;

use crate::system::{Potential, System};

/// A machine-learned pair-descriptor potential.
pub struct MlPotential {
    /// Descriptor cutoff radius.
    pub cutoff: f64,
    /// Gaussian centers μ_k.
    pub centers: Vec<f64>,
    /// Gaussian width σ.
    pub width: f64,
    /// Per-feature standardization (mean, std) fitted on the training set.
    pub scaler: Vec<(f32, f32)>,
    /// Reference energy per atom (the mean atomic energy of the training
    /// set — the standard "atomic energy baseline" of ML potentials). The
    /// network learns only the deviation from it.
    pub atom_ref_energy: f64,
    model: RefCell<Mlp>,
}

impl MlPotential {
    /// An untrained potential with `k` Gaussian basis functions spanning
    /// `(0.6, cutoff)` and a `k → hidden → 1` network.
    ///
    /// # Panics
    /// Panics if `k < 2` or the cutoff is not positive.
    pub fn new(k: usize, cutoff: f64, hidden: &[usize], seed: u64) -> Self {
        assert!(k >= 2, "need at least two basis functions");
        assert!(cutoff > 0.0, "cutoff must be positive");
        let lo = 0.6;
        let centers: Vec<f64> = (0..k)
            .map(|i| lo + (cutoff - lo) * i as f64 / (k - 1) as f64)
            .collect();
        let width = (cutoff - lo) / k as f64;
        MlPotential {
            cutoff,
            centers,
            width,
            scaler: vec![(0.0, 1.0); k],
            atom_ref_energy: 0.0,
            model: RefCell::new(MlpSpec::new(k, hidden, 1).build(seed)),
        }
    }

    /// Number of descriptor features.
    pub fn k(&self) -> usize {
        self.centers.len()
    }

    /// Smooth cosine cutoff `fc(r)` and its derivative.
    fn cutoff_fn(&self, r: f64) -> (f64, f64) {
        if r >= self.cutoff {
            return (0.0, 0.0);
        }
        let x = std::f64::consts::PI * r / self.cutoff;
        (
            0.5 * (x.cos() + 1.0),
            -0.5 * std::f64::consts::PI / self.cutoff * x.sin(),
        )
    }

    /// Basis values φ_k(r) and derivatives φ'_k(r).
    fn basis(&self, r: f64) -> (Vec<f64>, Vec<f64>) {
        let (fc, dfc) = self.cutoff_fn(r);
        let inv2s2 = 1.0 / (2.0 * self.width * self.width);
        let mut vals = Vec::with_capacity(self.k());
        let mut derivs = Vec::with_capacity(self.k());
        for &mu in &self.centers {
            let d = r - mu;
            let g = (-d * d * inv2s2).exp();
            let dg = -2.0 * d * inv2s2 * g;
            vals.push(g * fc);
            derivs.push(dg * fc + g * dfc);
        }
        (vals, derivs)
    }

    /// Raw (unstandardized) descriptor matrix `n × k` for a configuration,
    /// plus the pair list used.
    pub fn descriptors(&self, system: &System) -> (Matrix, Vec<(usize, usize, f64)>) {
        let n = system.len();
        let mut d = Matrix::zeros(n, self.k());
        let pairs = system.pairs_cell_list(self.cutoff);
        for &(i, j, r) in &pairs {
            let (vals, _) = self.basis(r);
            for (kk, v) in vals.iter().enumerate() {
                let vi = d.get(i, kk) + *v as f32;
                d.set(i, kk, vi);
                let vj = d.get(j, kk) + *v as f32;
                d.set(j, kk, vj);
            }
        }
        (d, pairs)
    }

    /// Fit the standardization scaler to a set of descriptor matrices.
    pub fn fit_scaler(&mut self, descriptor_sets: &[Matrix]) {
        let k = self.k();
        let mut mean = vec![0.0f64; k];
        let mut count = 0usize;
        for d in descriptor_sets {
            for r in 0..d.rows() {
                for (kk, m) in mean.iter_mut().enumerate() {
                    *m += f64::from(d.get(r, kk));
                }
            }
            count += d.rows();
        }
        for m in &mut mean {
            *m /= count.max(1) as f64;
        }
        let mut var = vec![0.0f64; k];
        for d in descriptor_sets {
            for r in 0..d.rows() {
                for (kk, v) in var.iter_mut().enumerate() {
                    let x = f64::from(d.get(r, kk)) - mean[kk];
                    *v += x * x;
                }
            }
        }
        self.scaler = (0..k)
            .map(|kk| {
                let std = (var[kk] / count.max(1) as f64).sqrt().max(1e-6);
                (mean[kk] as f32, std as f32)
            })
            .collect();
    }

    /// Standardize a raw descriptor matrix in place.
    pub fn standardize(&self, d: &mut Matrix) {
        for r in 0..d.rows() {
            for (kk, &(mean, std)) in self.scaler.iter().enumerate() {
                d.set(r, kk, (d.get(r, kk) - mean) / std);
            }
        }
    }

    /// Per-atom energies for a standardized descriptor matrix.
    pub fn per_atom_energies(&self, standardized: &Matrix) -> Matrix {
        self.model.borrow_mut().forward(standardized)
    }

    /// One training step: given a standardized descriptor matrix and the
    /// true total energy, apply the total-energy MSE gradient. Returns the
    /// squared error. The caller owns the optimizer.
    pub fn training_gradients(&self, standardized: &Matrix, e_true: f64) -> f64 {
        let mut model = self.model.borrow_mut();
        let per_atom = model.forward(standardized);
        let n = per_atom.rows();
        let e_pred: f64 = (0..n).map(|i| f64::from(per_atom.get(i, 0))).sum::<f64>()
            + self.atom_ref_energy * n as f64;
        let err = (e_pred - e_true) as f32;
        // L = (Σ_i y_i − E)² → dL/dy_i = 2(Σy − E), uniform over atoms.
        let mut dy = Matrix::zeros(per_atom.rows(), 1);
        dy.map_inplace(|_| 2.0 * err / per_atom.rows() as f32);
        model.zero_grads();
        model.backward(&dy);
        f64::from(err) * f64::from(err)
    }

    /// Visit the network's parameter groups (for the optimizer).
    pub fn for_each_group(&self, mut f: impl FnMut(usize, &mut [f32], &[f32])) {
        self.model
            .borrow_mut()
            .for_each_group(|id, p, g| f(id, p, g));
    }
}

impl Potential for MlPotential {
    fn energy_and_forces(&self, system: &System) -> (f64, Vec<(f64, f64)>) {
        let n = system.len();
        let (mut d, pairs) = self.descriptors(system);
        self.standardize(&mut d);

        let mut model = self.model.borrow_mut();
        let per_atom = model.forward(&d);
        let energy: f64 = (0..n).map(|i| f64::from(per_atom.get(i, 0))).sum::<f64>()
            + self.atom_ref_energy * n as f64;

        // ∂E/∂(standardized descriptors): backprop a unit gradient.
        let ones = Matrix::from_vec(n, 1, vec![1.0; n]);
        let g_scaled = model.backward_input(&ones);
        drop(model);

        // Chain rule through standardization and the descriptor Jacobian.
        let mut forces = vec![(0.0f64, 0.0f64); n];
        for &(i, j, r) in &pairs {
            let (_, derivs) = self.basis(r);
            let mut de_dr = 0.0f64;
            for (kk, &dphi) in derivs.iter().enumerate() {
                let inv_std = f64::from(1.0 / self.scaler[kk].1);
                let gi = f64::from(g_scaled.get(i, kk)) * inv_std;
                let gj = f64::from(g_scaled.get(j, kk)) * inv_std;
                de_dr += (gi + gj) * dphi;
            }
            let (dx, dy) = system.displacement(i, j);
            let (ux, uy) = (dx / r, dy / r);
            // F_i = (dE/dr)·û (pulls i toward j when energy rises with r).
            forces[i].0 += de_dr * ux;
            forces[i].1 += de_dr * uy;
            forces[j].0 -= de_dr * ux;
            forces[j].1 -= de_dr * uy;
        }
        (energy, forces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_permutation_invariant_per_atom() {
        let pot = MlPotential::new(8, 2.5, &[8], 1);
        let mut sys = System::lattice(9, 6.0, 0.1, 2);
        let (d1, _) = pot.descriptors(&sys);
        // Swap two *other* atoms; atom 0's descriptor must not change.
        sys.positions.swap(4, 7);
        let (d2, _) = pot.descriptors(&sys);
        for kk in 0..8 {
            assert!((d1.get(0, kk) - d2.get(0, kk)).abs() < 1e-6);
        }
    }

    #[test]
    fn descriptor_is_translation_invariant() {
        let pot = MlPotential::new(8, 2.0, &[8], 1);
        let sys = System::lattice(9, 6.0, 0.0, 3);
        let (d1, _) = pot.descriptors(&sys);
        let mut shifted = sys.clone();
        for p in &mut shifted.positions {
            p.0 = (p.0 + 1.3).rem_euclid(6.0);
            p.1 = (p.1 + 2.1).rem_euclid(6.0);
        }
        let (d2, _) = pot.descriptors(&shifted);
        for r in 0..9 {
            for kk in 0..8 {
                assert!((d1.get(r, kk) - d2.get(r, kk)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn basis_derivative_matches_finite_difference() {
        let pot = MlPotential::new(10, 2.5, &[8], 4);
        let eps = 1e-6;
        for r in [0.8f64, 1.1, 1.7, 2.3] {
            let (_, derivs) = pot.basis(r);
            let (plus, _) = pot.basis(r + eps);
            let (minus, _) = pot.basis(r - eps);
            for kk in 0..10 {
                let fd = (plus[kk] - minus[kk]) / (2.0 * eps);
                assert!(
                    (fd - derivs[kk]).abs() < 1e-5,
                    "r={r} k={kk}: {fd} vs {}",
                    derivs[kk]
                );
            }
        }
    }

    /// The decisive correctness test: ML forces are the exact negative
    /// gradient of the ML energy (finite differences through the whole
    /// descriptor → standardize → network pipeline).
    #[test]
    fn ml_forces_match_numeric_gradient_of_ml_energy() {
        let pot = MlPotential::new(8, 2.2, &[12], 7);
        let sys = System::lattice(16, 5.2, 0.0, 11);
        let (_, forces) = pot.energy_and_forces(&sys);
        // The energy pipeline is f32; use a step large enough to dominate
        // the ~1e-6 quantization of the summed energy.
        let eps = 1e-3;
        for atom in [0usize, 5, 15] {
            for dim in 0..2 {
                let mut plus = sys.clone();
                let mut minus = sys.clone();
                if dim == 0 {
                    plus.positions[atom].0 += eps;
                    minus.positions[atom].0 -= eps;
                } else {
                    plus.positions[atom].1 += eps;
                    minus.positions[atom].1 -= eps;
                }
                let fd = -(pot.energy_and_forces(&plus).0 - pot.energy_and_forces(&minus).0)
                    / (2.0 * eps);
                let analytic = if dim == 0 {
                    forces[atom].0
                } else {
                    forces[atom].1
                };
                assert!(
                    (fd - analytic).abs() < 2e-2 * analytic.abs().max(0.1),
                    "atom {atom} dim {dim}: fd {fd} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn ml_forces_obey_newtons_third_law() {
        let pot = MlPotential::new(8, 2.2, &[12], 7);
        let sys = System::lattice(25, 6.0, 0.2, 13);
        let (_, forces) = pot.energy_and_forces(&sys);
        let (fx, fy) = forces
            .iter()
            .fold((0.0, 0.0), |(ax, ay), &(x, y)| (ax + x, ay + y));
        assert!(fx.abs() < 1e-6 && fy.abs() < 1e-6);
    }
}
