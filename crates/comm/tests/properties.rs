//! Property-based tests cross-validating executed collectives against each
//! other and against the analytic cost models.

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use summit_comm::{
    collectives::{
        binomial_broadcast_into, chunk_bounds, rabenseifner_allreduce,
        recursive_doubling_allreduce, ring_allreduce, tree_allreduce, ReduceOp,
    },
    model::{Algorithm, CollectiveModel},
    world::World,
    Rank,
};
use summit_machine::LinkModel;

fn random_input(seed: u64, rank: usize, n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(rank as u64));
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn run_allreduce(
    f: impl Fn(&Rank, &mut [f32], ReduceOp) + Sync,
    p: usize,
    n: usize,
    seed: u64,
) -> Vec<Vec<f32>> {
    World::run(p, |rank| {
        let mut buf = random_input(seed, rank.id(), n);
        f(rank, &mut buf, ReduceOp::Sum);
        buf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All ranks agree after a ring allreduce, and the value matches the
    /// sequential reduction.
    #[test]
    fn ring_allreduce_correct(p in 1usize..9, n in 1usize..64, seed in 0u64..1000) {
        let out = run_allreduce(ring_allreduce, p, n, seed);
        let mut want = vec![0.0f32; n];
        for r in 0..p {
            for (w, x) in want.iter_mut().zip(random_input(seed, r, n)) {
                *w += x;
            }
        }
        for got in &out {
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0));
            }
        }
    }

    /// All four allreduce algorithms agree with each other (power-of-two
    /// worlds, length divisible by p for rabenseifner).
    #[test]
    fn algorithms_agree(logp in 0u32..4, chunks in 1usize..8, seed in 0u64..1000) {
        let p = 1usize << logp;
        let n = chunks * p;
        let ring = run_allreduce(ring_allreduce, p, n, seed);
        let rd = run_allreduce(recursive_doubling_allreduce, p, n, seed);
        let rab = run_allreduce(rabenseifner_allreduce, p, n, seed);
        let tree = run_allreduce(tree_allreduce, p, n, seed);
        for r in 0..p {
            for i in 0..n {
                let a = ring[r][i];
                for other in [&rd[r][i], &rab[r][i], &tree[r][i]] {
                    prop_assert!((a - other).abs() <= 1e-4 * a.abs().max(1.0));
                }
            }
        }
    }

    /// Max/Min allreduce returns a value that is attained by some rank and
    /// bounds all ranks.
    #[test]
    fn max_is_attained(p in 1usize..8, n in 1usize..16, seed in 0u64..1000) {
        let out = World::run(p, |rank| {
            let mut buf = random_input(seed, rank.id(), n);
            ring_allreduce(rank, &mut buf, ReduceOp::Max);
            buf
        });
        for i in 0..n {
            let want = (0..p)
                .map(|r| random_input(seed, r, n)[i])
                .fold(f32::NEG_INFINITY, f32::max);
            for got in &out {
                prop_assert_eq!(got[i], want);
            }
        }
    }

    /// Broadcast delivers the root's exact payload to everyone.
    #[test]
    fn broadcast_correct(p in 1usize..10, root_seed in 0usize..100,
                         n in 0usize..32, seed in 0u64..1000) {
        let root = root_seed % p;
        let payload = random_input(seed, root, n);
        let expect = payload.clone();
        let out = World::run(p, |rank| {
            let mut buf = if rank.id() == root { payload.clone() } else { vec![0.0; n] };
            binomial_broadcast_into(rank, &mut buf, root);
            buf
        });
        for got in out {
            prop_assert_eq!(&got, &expect);
        }
    }

    /// The canonical partition helper covers `0..n` with `p` disjoint,
    /// contiguous, ascending chunks whose sizes differ by at most one —
    /// and agrees with the legacy closed-form split every call site used
    /// before deduplication.
    #[test]
    fn chunk_bounds_partitions_exactly(n in 0usize..512, p in 1usize..32) {
        let mut cursor = 0usize;
        for chunk in 0..p {
            let (start, end) = chunk_bounds(n, p, chunk);
            prop_assert_eq!(start, cursor);
            prop_assert!(end >= start);
            let len = end - start;
            prop_assert!(len == n / p || len == n / p + 1);
            // Legacy formula, verbatim from the pre-refactor call sites.
            let base = n / p;
            let extra = n % p;
            let legacy_start = chunk * base + chunk.min(extra);
            let legacy_end = legacy_start + base + usize::from(chunk < extra);
            prop_assert_eq!((start, end), (legacy_start, legacy_end));
            let range = summit_pool::chunk_range(n, p, chunk);
            prop_assert_eq!((range.start, range.end), (start, end));
            cursor = end;
        }
        prop_assert_eq!(cursor, n);
    }

    /// Model sanity: allreduce time is monotone in message size and never
    /// negative; bandwidth term is bounded by the full model.
    #[test]
    fn model_monotone(p in 2u64..100_000, a in 0.0f64..1e-4,
                      b in 1e8f64..1e11, m1 in 1.0f64..1e10, m2 in 1.0f64..1e10) {
        let model = CollectiveModel::new(LinkModel::new(a, b));
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        for alg in Algorithm::ALL {
            let t_lo = model.allreduce_time(alg, p, lo);
            let t_hi = model.allreduce_time(alg, p, hi);
            prop_assert!(t_lo >= 0.0 && t_lo <= t_hi);
            prop_assert!(model.bandwidth_term(alg, p, lo) <= t_lo + 1e-15);
        }
    }

    /// Executed ring allreduce traffic equals the model's byte count
    /// assumption: 2(p-1)·n elements sent in total.
    #[test]
    fn ring_traffic_matches_model(p in 2usize..8, n in 1usize..64) {
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![1.0f32; n];
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        prop_assert_eq!(stats.bytes_sent, (4 * 2 * (p - 1) * n) as u64);
    }
}
