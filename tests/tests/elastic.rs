//! Elastic training matrix: shrink/grow worlds instead of rollback-and-replay,
//! proven bit-exact.
//!
//! The contract under test:
//!
//! * **Shrink**: a p=4 run that loses a rank at step `k` (killed before,
//!   during, or after the gradient allreduce) shrinks to p=3 and continues on
//!   **exactly** the trajectory a fresh p=3 run produces from the same step-`k`
//!   checkpoint — bit for bit, on both comm paths, for all five optimizers.
//! * **Grow**: an evicted rank hot-joins at a later step boundary and the run
//!   finishes bit-identical to a composed baseline (p=3 to the join step, then
//!   p=4 to the end).
//! * **Re-partition**: data and checkpoint shards re-derive from
//!   [`chunk_range`], covering every sample/word exactly once at every size.
//! * **Size-agnostic state**: a checkpoint exported at any world size restores
//!   bit-exactly at any other.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use summit_comm::{FaultPlan, WorldView};
use summit_dl::{
    data::blobs,
    model::{Mlp, MlpSpec},
    optim::{Adam, Lamb, Larc, Lars, Optimizer, Sgd},
    recovery::{elastic_clock, ElasticConfig, SUB_COMM, SUB_PRE, SUB_VOTE},
    trainer::{DataParallelTrainer, FusionConfig, OverlapConfig},
    ElasticCheckpoint, LrSchedule,
};
use summit_pool::chunk_range;

fn build_opt(name: &str) -> Box<dyn Optimizer> {
    match name {
        "sgd" => Box::new(Sgd::new(0.05, 0.9, 0.0)),
        "adam" => Box::new(Adam::new(0.01, 0.0)),
        "lars" => Box::new(Lars::new(0.05, 0.9, 1e-4, 0.001)),
        "larc" => Box::new(Larc::new(0.05, 0.9, 1e-4, 0.002)),
        "lamb" => Box::new(Lamb::new(0.01, 1e-4)),
        other => panic!("unknown optimizer {other}"),
    }
}

fn ecfg() -> ElasticConfig {
    ElasticConfig {
        step_timeout: Duration::from_millis(400),
        checkpoint_interval: 2,
        max_shrinks: 4,
        rejoin_at: None,
    }
}

fn bitwise_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: elem {i}: {x} vs {y}");
    }
}

/// The spans `(start, end, total)` must tile `[0, total)` exactly.
fn assert_spans_tile(spans: &[(usize, usize, usize)]) {
    assert!(!spans.is_empty());
    let total = spans[0].2;
    let mut pos = 0;
    for &(start, end, t) in spans {
        assert_eq!(t, total, "spans disagree on the stream length");
        assert_eq!(start, pos, "gap or overlap at word {pos}");
        assert!(end >= start);
        pos = end;
    }
    assert_eq!(pos, total, "spans do not cover the stream");
}

/// The headline pin, for one optimizer: elastic p=4 → 3 at step `k` is
/// bit-identical to fresh p=3 from the same step-`k` checkpoint, for
/// serial and overlapped comm and for a kill aimed before, during, and
/// after the gradient allreduce.
fn shrink_matrix_for(opt_name: &'static str) {
    let task = blobs(48, 4, 2, 0.3, 41);
    let spec = MlpSpec::new(4, &[8], 2);
    const K: u32 = 3;
    const T: u32 = 8;
    let build_model = move || -> Mlp { spec.build(17) };
    for overlap in [false, true] {
        let dp4 = DataParallelTrainer::new(4, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let dp3 = DataParallelTrainer::new(3, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });

        // Checkpoint at the kill step, from a clean full-world run.
        let ck = dp4
            .run_elastic(
                &build_model,
                || build_opt(opt_name),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                K,
                None,
                Arc::new(FaultPlan::empty()),
                ecfg(),
            )
            .checkpoint;
        assert_eq!(ck.step, K);

        // Ground truth: a fresh 3-rank world continuing from that state.
        let fresh = dp3.run_elastic(
            &build_model,
            || build_opt(opt_name),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            T,
            Some(&ck),
            Arc::new(FaultPlan::empty()),
            ecfg(),
        );
        assert_eq!(fresh.steps, T);
        assert_eq!(fresh.shrinks, 0);
        assert_eq!(fresh.max_divergence, 0.0);

        for sub in [SUB_PRE, SUB_COMM, SUB_VOTE] {
            let label = format!("{opt_name} overlap={overlap} substep={sub}");
            let plan = Arc::new(FaultPlan::empty().kill_rank(2, elastic_clock(0, K, sub)));
            let el = dp4.run_elastic(
                &build_model,
                || build_opt(opt_name),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                T,
                None,
                plan,
                ecfg(),
            );
            assert_eq!(el.steps, T, "{label}");
            assert_eq!(el.shrinks, 1, "{label}");
            assert_eq!(el.joins, 0, "{label}");
            assert_eq!(el.final_world, 3, "{label}");
            assert_eq!(el.final_members, vec![0, 1, 3], "{label}");
            assert_eq!(el.final_epoch, 1, "{label}");
            assert_eq!(el.max_divergence, 0.0, "{label}");
            assert!(el.faults_injected >= 1, "{label}: kill never fired");
            assert_eq!(
                el.membership_log.last().unwrap(),
                &(K, 1, vec![0, 1, 3]),
                "{label}"
            );
            bitwise_eq(&el.params, &fresh.params, &label);
            assert_spans_tile(&el.shard_spans);
        }
    }
}

#[test]
fn elastic_shrink_is_bit_identical_sgd() {
    shrink_matrix_for("sgd");
}

#[test]
fn elastic_shrink_is_bit_identical_adam() {
    shrink_matrix_for("adam");
}

#[test]
fn elastic_shrink_is_bit_identical_lars() {
    shrink_matrix_for("lars");
}

#[test]
fn elastic_shrink_is_bit_identical_larc() {
    shrink_matrix_for("larc");
}

#[test]
fn elastic_shrink_is_bit_identical_lamb() {
    shrink_matrix_for("lamb");
}

/// Hot join: a rank evicted at step 3 rejoins at step 6 and the run ends
/// bit-identical to the composed baseline (fresh p=3 over steps 3..6, then
/// fresh p=4 over steps 6..10) — the rejoined world resumes the original
/// full-world partition.
#[test]
fn elastic_hot_join_is_bit_identical_to_composed_baseline() {
    let task = blobs(48, 4, 2, 0.3, 43);
    let spec = MlpSpec::new(4, &[8], 2);
    const K: u32 = 3;
    const R: u32 = 6;
    const T: u32 = 10;
    let build_model = move || -> Mlp { spec.build(19) };
    for overlap in [false, true] {
        let label = format!("hot-join overlap={overlap}");
        let dp4 = DataParallelTrainer::new(4, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let dp3 = DataParallelTrainer::new(3, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let run4 = |total, from: Option<&ElasticCheckpoint>, plan, cfg| {
            dp4.run_elastic(
                &build_model,
                || build_opt("adam"),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                total,
                from,
                plan,
                cfg,
            )
        };

        // Elastic run: kill rank 2 at step K, re-admit it at step R.
        let plan = Arc::new(FaultPlan::empty().kill_rank(2, elastic_clock(0, K, SUB_COMM)));
        let el = run4(
            T,
            None,
            plan,
            ElasticConfig {
                rejoin_at: Some(R),
                ..ecfg()
            },
        );
        assert_eq!(el.steps, T, "{label}");
        assert_eq!(el.shrinks, 1, "{label}");
        assert_eq!(el.joins, 1, "{label}");
        assert_eq!(el.final_world, 4, "{label}");
        assert_eq!(el.final_members, vec![0, 1, 2, 3], "{label}");
        assert_eq!(el.final_epoch, 2, "{label}");
        assert_eq!(el.max_divergence, 0.0, "{label}: rejoined rank diverged");
        assert_eq!(
            el.membership_log,
            vec![
                (0, 0, vec![0, 1, 2, 3]),
                (K, 1, vec![0, 1, 3]),
                (R, 2, vec![0, 1, 2, 3]),
            ],
            "{label}"
        );
        assert_spans_tile(&el.shard_spans);
        assert_eq!(el.shard_spans.len(), 4, "{label}");

        // Composed baseline: p=4 to K, p=3 over K..R, p=4 over R..T.
        let ck_k = run4(K, None, Arc::new(FaultPlan::empty()), ecfg()).checkpoint;
        let ck_r = dp3
            .run_elastic(
                &build_model,
                || build_opt("adam"),
                LrSchedule::Constant,
                &task.x,
                &task.y,
                R,
                Some(&ck_k),
                Arc::new(FaultPlan::empty()),
                ecfg(),
            )
            .checkpoint;
        assert_eq!(ck_r.step, R);
        let composed = run4(T, Some(&ck_r), Arc::new(FaultPlan::empty()), ecfg());
        assert_eq!(composed.steps, T);
        bitwise_eq(&el.params, &composed.params, &label);
        bitwise_eq(
            &el.checkpoint.encode(),
            &composed.checkpoint.encode(),
            &format!("{label}: full state (params + optimizer)"),
        );
    }
}

/// Satellite: a checkpoint captured at one world size restores bit-exactly
/// through the sharded export/import at every other size, at the run
/// level: a p=4 checkpoint continues cleanly on worlds of 2, 3, 4, and 8
/// ranks.
#[test]
fn checkpoint_is_size_agnostic_across_world_sizes() {
    let task = blobs(48, 4, 2, 0.3, 47);
    let spec = MlpSpec::new(4, &[8], 2);
    let model_spec = spec.clone();
    let build_model = move || -> Mlp { model_spec.build(23) };
    let dp4 = DataParallelTrainer::new(4, 2).with_overlap(OverlapConfig { enabled: false });
    let ck = dp4
        .run_elastic(
            &build_model,
            || build_opt("lamb"),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            4,
            None,
            Arc::new(FaultPlan::empty()),
            ecfg(),
        )
        .checkpoint;

    // Format level: shard the encoded stream at every size; every
    // reassembly restores bit-identical params and optimizer state.
    let words = ck.encode();
    for parts in [1usize, 2, 3, 4, 8] {
        let shards = ck.export_shards(parts);
        assert_eq!(shards.len(), parts);
        let reassembled = ElasticCheckpoint::import_shards(&shards).unwrap();
        bitwise_eq(&reassembled.encode(), &words, "reassembled stream");
        let mut model = spec.build(99);
        let mut opt = build_opt("lamb");
        reassembled.restore(&mut model, opt.as_mut()).unwrap();
        bitwise_eq(&model.flat_params(), &ck.params, "restored params");
        let state = opt.export_state();
        assert_eq!(state.step, ck.opt.step);
        for ((na, ga, va), (nb, gb, vb)) in state.slots.iter().zip(&ck.opt.slots) {
            assert_eq!(na, nb);
            assert_eq!(ga, gb);
            bitwise_eq(va, vb, &format!("slot {na}/{ga}"));
        }
    }

    // Run level: the p=4 checkpoint drives worlds of every size.
    for ranks in [2usize, 3, 4, 8] {
        let dp = DataParallelTrainer::new(ranks, 2).with_overlap(OverlapConfig { enabled: false });
        let out = dp.run_elastic(
            &build_model,
            || build_opt("lamb"),
            LrSchedule::Constant,
            &task.x,
            &task.y,
            8,
            Some(&ck),
            Arc::new(FaultPlan::empty()),
            ecfg(),
        );
        assert_eq!(out.steps, 8, "world of {ranks}");
        assert_eq!(out.final_world, ranks);
        assert_eq!(out.max_divergence, 0.0, "world of {ranks}");
        assert_spans_tile(&out.shard_spans);
    }
}

/// Check that the per-member `chunk_range` partitions of `n` samples tile
/// `[0, n)` exactly, returning the spans.
fn cover(n: usize, view: &WorldView) -> Result<Vec<(usize, usize)>, TestCaseError> {
    let spans: Vec<_> = (0..view.size())
        .map(|d| {
            let r = chunk_range(n, view.size(), d);
            (r.start, r.end)
        })
        .collect();
    let mut pos = 0;
    for &(start, end) in &spans {
        prop_assert_eq!(start, pos, "gap or overlap at sample {}", pos);
        pos = end;
    }
    prop_assert_eq!(pos, n, "partition does not cover all samples");
    Ok(spans)
}

proptest! {
    /// Satellite: for arbitrary (n, p, kill set), the chunk_range
    /// re-partition covers every sample exactly once at the original size,
    /// again after the shrink, and the grow inverse restores the original
    /// partition.
    #[test]
    fn repartition_covers_every_sample_exactly_once(
        n in 1usize..4096,
        p in 1usize..9,
        kills in 0u64..256,
    ) {
        let full = WorldView::assemble((0..p).collect(), 0, 0);
        let original = cover(n, &full)?;

        // Kill set from the sampled bitmask; rank 0 always survives.
        let mask: Vec<bool> = (0..p).map(|i| i == 0 || kills & (1 << i) == 0).collect();
        let shrunk = full.shrink_to(&mask);
        prop_assert_eq!(shrunk.epoch(), 1);
        prop_assert!(shrunk.size() >= 1 && shrunk.size() <= p);
        cover(n, &shrunk)?;

        // Grow back: the full-size partition is restored exactly.
        let regrown = shrunk.grow_full(p);
        prop_assert_eq!(regrown.epoch(), 2);
        prop_assert_eq!(regrown.members(), full.members());
        let restored = cover(n, &regrown)?;
        prop_assert_eq!(restored, original);
    }
}
