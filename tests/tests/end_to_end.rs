//! End-to-end integration: the paper's headline numbers must be consistent
//! when computed across crate boundaries.

use summit_comm::model::{Algorithm, CollectiveModel};
use summit_core::report;
use summit_io::requirements::ReadDemand;
use summit_io::tier::StorageTier;
use summit_machine::spec::{MachineSpec, NodeSpec};
use summit_machine::LinkModel;
use summit_perf::case_studies::CaseStudy;
use summit_survey::portfolio;
use summit_workloads::Workload;

/// Section VI-B as one cross-crate computation: workload zoo → comm model.
#[test]
fn section_6b_comm_numbers_cross_crate() {
    let link = LinkModel::inter_node(&NodeSpec::summit());
    let model = CollectiveModel::new(link);
    let resnet = Workload::resnet50();
    let bert = Workload::bert_large();
    let t_resnet = model.bandwidth_term(Algorithm::Ring, 4608, resnet.gradient_message_bytes());
    let t_bert = model.bandwidth_term(Algorithm::Ring, 4608, bert.gradient_message_bytes());
    // "communication time is roughly 8 ms and 110 ms"
    assert!((t_resnet * 1e3 - 8.0).abs() < 0.5, "{t_resnet}");
    assert!((t_bert * 1e3 - 110.0).abs() < 5.0, "{t_bert}");
    // "The latter is close to the time of per-batch forward and backward
    // propagation and hence hard to hide."
    let ratio = t_bert / bert.step_compute_seconds();
    assert!(ratio > 0.9 && ratio < 1.1, "ratio {ratio}");
}

/// Section VI-B I/O as one cross-crate computation: workload → machine →
/// storage tiers.
#[test]
fn section_6b_io_numbers_cross_crate() {
    let summit = MachineSpec::summit();
    let w = Workload::resnet50();
    let demand = ReadDemand::new(
        w.samples_per_sec_per_gpu,
        w.sample_bytes,
        summit.total_gpus(),
    );
    let tbs = demand.aggregate_read_bw() / 1e12;
    assert!((tbs - 20.0).abs() < 1.0, "demand {tbs} TB/s");
    assert!(
        !demand
            .feasibility(&StorageTier::shared_fs(&summit))
            .satisfied
    );
    assert!(
        demand
            .feasibility(&StorageTier::node_local_nvme(&summit, summit.nodes))
            .satisfied
    );
}

/// Every case study must reproduce its reported efficiency within 3% and
/// FLOP rate within 25% — the "shape holds" criterion of the reproduction.
#[test]
fn all_case_studies_within_tolerance() {
    for cs in CaseStudy::all() {
        let r = cs.evaluate();
        if let Some(want) = r.reported_efficiency {
            let got = r.predicted_efficiency;
            assert!(
                (got - want).abs() / want < 0.03,
                "{}: efficiency {got} vs reported {want}",
                cs.name
            );
        }
        if let Some(want) = r.reported_flops {
            let got = r.predicted_flops;
            assert!(
                (got - want).abs() / want < 0.25,
                "{}: {got} FLOP/s vs reported {want}",
                cs.name
            );
        }
    }
}

/// The full report regenerates every artifact without panicking and
/// mentions the headline quantities.
#[test]
fn full_report_is_complete() {
    let r = report::full_report();
    assert!(r.contains("TABLE I."));
    assert!(r.contains("Kurth"));
    assert!(r.contains("crossover"));
    assert!(
        r.len() > 4000,
        "report suspiciously short: {} bytes",
        r.len()
    );
}

/// Portfolio totals and the Gordon Bell catalog reconcile (the paper's 662
/// project-years = 645 program years + 17 GB finalists).
#[test]
fn portfolio_reconciles_with_gordon_bell() {
    let records = portfolio::build();
    assert_eq!(records.len(), 662);
    let gb: Vec<_> = records
        .iter()
        .filter(|r| r.program == summit_sched::program::Program::GordonBell)
        .collect();
    assert_eq!(gb.len(), 17);
    let ai_gb = gb.iter().filter(|r| r.status.uses_ml()).count();
    assert_eq!(ai_gb, summit_survey::gordon_bell::ai_finalists().len());
}

/// The zoo's full-Summit sustained-flops predictions stay below machine
/// peak — a cross-crate sanity invariant (workloads × perf × machine).
#[test]
fn no_workload_exceeds_machine_peak() {
    let summit = MachineSpec::summit();
    let peak = summit.peak_mixed_precision_flops();
    for w in Workload::all() {
        let m = summit_perf::model::ScalingModel::summit_defaults(w);
        let sustained = m.sustained_flops(summit.nodes);
        assert!(
            sustained < peak,
            "{} predicts {sustained} > peak {peak}",
            w.name
        );
    }
}
