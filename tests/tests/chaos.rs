//! Chaos suite: deterministic fault injection against the real communicator
//! and the checkpointed fault-tolerant trainer.
//!
//! The contract under test (paper Table I, row 1 — detect → signal →
//! remediate):
//!
//! * Every checked collective either completes with the **bitwise** fault-free
//!   result or fails loudly with a [`CommError`] within its timeout — never a
//!   hang, never a silently wrong answer.
//! * End-to-end data-parallel training under injected drops, delays,
//!   corruption, and rank kills recovers — via vote, drain, and in-memory
//!   checkpoint rollback — to **exactly** the fault-free final parameters.
//!
//! Scenario seeds come from the fixed matrix in CI (`CHAOS_SEED`); a failing
//! randomized case archives its [`FaultPlan`] JSON under `target/chaos/` so
//! the exact schedule can be replayed.

use std::sync::Arc;
use std::time::Duration;

use summit_comm::{
    collectives::{try_ring_allreduce_bucketed, ReduceOp},
    elastic::{try_ring_allreduce_view, view_barrier},
    nonblocking::{ring_allreduce_start_windowed, RingAllreduceHandle},
    world::{World, WorldView},
    FaultPlan, FaultRates, TagClass,
};
use summit_dl::{
    data::blobs,
    model::MlpSpec,
    optim::{Adam, Optimizer, Sgd},
    recovery::{ElasticConfig, RecoveryConfig},
    trainer::{DataParallelTrainer, FusionConfig, OverlapConfig},
    LrSchedule,
};
use summit_workflow::fault::{telemetry_from_step_seconds, threshold_detector, FaultDetector};

/// Base seed for the randomized cases; CI runs a fixed matrix of values.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Archive a failing plan for replay and return the human-readable pointer.
fn archive_plan(plan: &FaultPlan, label: &str) -> String {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .parent()
        .map(|t| t.join("chaos"))
        .unwrap_or_else(|| std::path::PathBuf::from("target/chaos"));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{label}.json"));
    match std::fs::write(&path, plan.to_json()) {
        Ok(()) => format!("fault plan archived at {}", path.display()),
        Err(e) => format!(
            "failed to archive fault plan ({e}); JSON: {}",
            plan.to_json()
        ),
    }
}

/// Aggressive rates so short runs see real action from every fault class.
fn hot_rates() -> FaultRates {
    FaultRates {
        drop: 0.08,
        delay: 0.12,
        delay_ms: 2,
        corrupt: 0.08,
        kill: 0.02,
    }
}

// ---------------------------------------------------------------------------
// Collectives: complete correctly or fail loudly, never hang.
// ---------------------------------------------------------------------------

/// Randomized plans against the checked blocking allreduce: each rank either
/// finishes with the bit-exact fault-free reduction or surfaces a
/// `CommError` before the deadline. The test completing at all is the
/// no-hang proof — every receive is deadline-bounded.
#[test]
fn chaos_collectives_complete_or_fail_loudly() {
    let base = chaos_seed();
    for case in 0..12u64 {
        let seed = base.wrapping_mul(1_000_003).wrapping_add(case);
        let p = 2 + (seed % 3) as usize; // 2..=4 ranks
        let n = 16 + (seed % 23) as usize;
        let bucket = 1 + (seed % 7) as usize;
        let steps = 4u64;
        let plan = Arc::new(FaultPlan::seeded(seed, p, steps, &hot_rates()));
        let reference: Vec<Vec<f32>> = (0..p)
            .map(|r| (0..n).map(|i| ((r * n + i) as f32).sin()).collect())
            .collect();
        // The ring's per-element fold order depends on the chunk schedule,
        // so the bitwise reference is a fault-free execution, not an
        // analytic sum.
        let fault_free = World::run(p, |rank| {
            let mut buf = reference[rank.id()].clone();
            summit_comm::collectives::ring_allreduce_bucketed(
                rank,
                &mut buf,
                ReduceOp::Sum,
                bucket,
            );
            buf
        });
        let plan_run = Arc::clone(&plan);
        let (out, _) = World::run_with_faults(p, plan_run, move |rank| {
            let mut results = Vec::new();
            for step in 0..steps {
                rank.set_fault_step(step);
                let mut buf = reference[rank.id()].clone();
                let res = try_ring_allreduce_bucketed(
                    rank,
                    &mut buf,
                    ReduceOp::Sum,
                    bucket,
                    Duration::from_millis(250),
                );
                results.push((res, buf));
                // Quiesce between steps so one step's stale traffic cannot
                // satisfy the next step's receives.
                rank.barrier();
                rank.drain_all();
                rank.barrier();
            }
            results
        });
        for (r, rank_results) in out.iter().enumerate() {
            for (step, (res, buf)) in rank_results.iter().enumerate() {
                if res.is_ok() {
                    for (i, (got, want)) in buf.iter().zip(&fault_free[r]).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "seed {seed} rank {r} step {step} element {i}: completed \
                             collective must be bit-exact ({got} vs {want}); {}",
                            archive_plan(&plan, &format!("collective-seed-{seed}"))
                        );
                    }
                }
                // Err is the loud-failure outcome: acceptable by contract.
            }
        }
    }
}

/// Abandoning unfinished nonblocking collectives mid-flight must neither
/// deadlock the world nor leak pooled buffers once the fabric is drained
/// (satellite: `RingAllreduceHandle` teardown hygiene).
#[test]
fn abandoned_ring_handles_drain_without_leaks() {
    let p = 3;
    let n = 48;
    let bucket = 16;
    let out = World::run(p, |rank| {
        let mut buf = vec![rank.id() as f32 + 0.5; n];
        {
            let mut handles: Vec<RingAllreduceHandle> = buf
                .chunks_mut(bucket)
                .enumerate()
                .map(|(b, w)| {
                    ring_allreduce_start_windowed(rank, w, ReduceOp::Sum, b as u64, n, b * bucket)
                })
                .collect();
            // Make partial progress so some payloads are genuinely in
            // flight, then abandon every handle.
            for h in handles.iter_mut() {
                h.progress();
            }
        }
        // All ranks have abandoned; drain the half-finished traffic.
        rank.barrier();
        rank.drain_all();
        rank.barrier();
        rank.pool_stats().outstanding
    });
    // Buffers migrate between per-rank pools under ring circulation, so the
    // balance invariant is on the world-wide sum.
    assert_eq!(
        out.iter().sum::<i64>(),
        0,
        "abandoned handles leaked pooled buffers: {out:?}"
    );
}

/// Hierarchical allreduce under the targeted chaos matrix: a drop and a
/// corruption injected into every phase of the engine schedule (member→
/// leader reduce tag 13, leader ring reduce-scatter 14, leader ring
/// allgather 15, leader→member broadcast 16). Each world must surface at
/// least one loud `CommError`, and any rank that does complete must hold
/// the bitwise fault-free reduction.
#[test]
fn chaos_hierarchical_allreduce_drop_and_corrupt_matrix() {
    let p = 4usize;
    let group = 2usize;
    let n = 24usize;
    let reference: Vec<Vec<f32>> = (0..p)
        .map(|r| (0..n).map(|i| ((r * n + i) as f32).cos()).collect())
        .collect();
    let fault_free = World::run(p, |rank| {
        let mut buf = reference[rank.id()].clone();
        summit_comm::extended::hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, group);
        buf
    });
    // (phase tag, src, dst) covering every message class of the p=4, g=2
    // schedule: up-reduce within each group, both leader-ring directions,
    // down-broadcast within each group.
    let matrix: &[(u64, usize, usize)] = &[
        (13, 1, 0),
        (13, 3, 2),
        (14, 0, 2),
        (14, 2, 0),
        (15, 0, 2),
        (15, 2, 0),
        (16, 0, 1),
        (16, 2, 3),
    ];
    for &(phase, src, dst) in matrix {
        for corrupt in [false, true] {
            let plan = if corrupt {
                FaultPlan::empty().corrupt_message(src, dst, TagClass::Blocking(phase), 0)
            } else {
                FaultPlan::empty().drop_message(src, dst, TagClass::Blocking(phase), 0)
            };
            let plan = Arc::new(plan);
            let reference = reference.clone();
            let (out, _) = World::run_with_faults(p, Arc::clone(&plan), move |rank| {
                rank.set_fault_step(0);
                let mut buf = reference[rank.id()].clone();
                let res = summit_comm::extended::try_hierarchical_allreduce(
                    rank,
                    &mut buf,
                    ReduceOp::Sum,
                    group,
                    Duration::from_millis(250),
                );
                // Quiesce so a rank that erred out does not tear down its
                // receiver while peers are still draining the schedule.
                rank.barrier();
                rank.drain_all();
                rank.barrier();
                (res, buf)
            });
            let label = format!(
                "phase {phase} {src}->{dst} {}",
                if corrupt { "corrupt" } else { "drop" }
            );
            assert!(
                plan.fired_count() > 0,
                "{label}: injected fault never matched a message"
            );
            assert!(
                out.iter().any(|(res, _)| res.is_err()),
                "{label}: no rank surfaced the fault"
            );
            for (r, (res, buf)) in out.iter().enumerate() {
                if res.is_ok() {
                    for (i, (got, want)) in buf.iter().zip(&fault_free[r]).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{label} rank {r} element {i}: completed ranks must be bit-exact"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// End-to-end training: each fault class recovers to the bitwise
// fault-free final state.
// ---------------------------------------------------------------------------

struct Scenario {
    label: &'static str,
    plan: FaultPlan,
    overlap: bool,
    min_recoveries: u32,
}

fn run_scenario(s: Scenario) {
    let task = blobs(256, 4, 2, 0.3, 77);
    let spec = MlpSpec::new(4, &[16, 8], 2);
    let build_opt = || -> Box<dyn Optimizer> { Box::new(Sgd::new(0.05, 0.9, 0.0)) };
    let dp = DataParallelTrainer::new(2, 8)
        .with_fusion(FusionConfig { bucket_bytes: 128 })
        .with_overlap(OverlapConfig { enabled: s.overlap });
    let plain = dp.run(
        || spec.build(9),
        build_opt,
        LrSchedule::Constant,
        &task.x,
        &task.y,
        1,
    );
    let plan = Arc::new(s.plan);
    let ft = dp.run_fault_tolerant(
        || spec.build(9),
        build_opt,
        LrSchedule::Constant,
        &task.x,
        &task.y,
        1,
        Arc::clone(&plan),
        RecoveryConfig {
            checkpoint_interval: 3,
            step_timeout: Duration::from_millis(400),
            max_recoveries: 16,
        },
    );
    let on_fail = || archive_plan(&plan, &format!("scenario-{}", s.label));
    assert_eq!(ft.steps, plain.steps, "{}: {}", s.label, on_fail());
    assert!(
        ft.recoveries >= s.min_recoveries,
        "{}: expected >= {} recoveries, saw {}; {}",
        s.label,
        s.min_recoveries,
        ft.recoveries,
        on_fail()
    );
    assert!(
        ft.faults_injected >= u64::from(s.min_recoveries),
        "{}: plan never fired; {}",
        s.label,
        on_fail()
    );
    assert_eq!(ft.max_divergence, 0.0, "{}: {}", s.label, on_fail());
    for (i, (a, b)) in ft.params.iter().zip(&plain.params).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} param {i}: {a} vs {b} — recovery must be bit-exact; {}",
            s.label,
            on_fail()
        );
    }
}

/// Scenario 1 — message drop on the blocking reduce-scatter phase.
#[test]
fn chaos_training_recovers_from_drop() {
    run_scenario(Scenario {
        label: "drop",
        plan: FaultPlan::empty().drop_message(0, 1, TagClass::Blocking(0), 6),
        overlap: false,
        min_recoveries: 1,
    });
}

/// Scenario 2 — a delivery delay longer than the step deadline: the
/// receiver times out, and the late-arriving message becomes exactly the
/// stale fabric traffic the recovery drain exists to clear.
#[test]
fn chaos_training_recovers_from_long_delay() {
    run_scenario(Scenario {
        label: "delay",
        plan: FaultPlan::empty().delay_message(1, 0, TagClass::Any, 4, 600),
        overlap: false,
        min_recoveries: 1,
    });
}

/// Scenario 3 — payload corruption (post-checksum bit flip) on the
/// overlapped nonblocking path, detected by the transport checksum.
#[test]
fn chaos_training_recovers_from_corruption() {
    run_scenario(Scenario {
        label: "corrupt",
        plan: FaultPlan::empty().corrupt_message(0, 1, TagClass::Any, 9),
        overlap: true,
        min_recoveries: 1,
    });
}

/// Scenario 4 — a scheduled rank kill mid-epoch on the overlapped path.
#[test]
fn chaos_training_recovers_from_rank_kill() {
    run_scenario(Scenario {
        label: "kill",
        plan: FaultPlan::empty().kill_rank(1, 11),
        overlap: true,
        min_recoveries: 1,
    });
}

/// Randomized end-to-end chaos: seeded multi-fault plans (all four classes
/// possible, both comm paths) still land on the bitwise fault-free
/// trajectory.
#[test]
fn chaos_training_randomized_plans_recover_bitwise() {
    let base = chaos_seed();
    let task = blobs(128, 4, 2, 0.3, 55);
    let spec = MlpSpec::new(4, &[8, 8], 2);
    let build_opt = || -> Box<dyn Optimizer> { Box::new(Adam::new(0.01, 0.0)) };
    for case in 0..3u64 {
        let seed = base.wrapping_mul(7_777_777).wrapping_add(case);
        let overlap = case % 2 == 0;
        let dp = DataParallelTrainer::new(2, 8)
            .with_fusion(FusionConfig { bucket_bytes: 96 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let plain = dp.run(
            || spec.build(13),
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            2,
        );
        let plan = Arc::new(FaultPlan::seeded(seed, 2, 16, &hot_rates()));
        let budget = plan.events().len() as u32 + 4;
        let ft = dp.run_fault_tolerant(
            || spec.build(13),
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            2,
            Arc::clone(&plan),
            RecoveryConfig {
                checkpoint_interval: 4,
                step_timeout: Duration::from_millis(300),
                max_recoveries: budget,
            },
        );
        assert_eq!(ft.steps, plain.steps);
        for (i, (a, b)) in ft.params.iter().zip(&plain.params).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "seed {seed} (overlap={overlap}) param {i}: {a} vs {b}; {}",
                archive_plan(&plan, &format!("training-seed-{seed}"))
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Telemetry closure: injected faults feed the workflow fault detector.
// ---------------------------------------------------------------------------

/// The full Table I row 1 loop on *real* telemetry: step wall-times from a
/// faulted fault-tolerant run — not a synthetic residual model — are mapped
/// through the telemetry bridge, and both the ML detector (trained purely
/// on simulated fleets) and the threshold rule flag the run; a fault-free
/// run stays clean under the threshold rule.
#[test]
fn injected_fault_telemetry_drives_detector() {
    let task = blobs(256, 4, 2, 0.3, 91);
    let spec = MlpSpec::new(4, &[16], 2);
    let build_opt = || -> Box<dyn Optimizer> { Box::new(Sgd::new(0.05, 0.9, 0.0)) };
    let dp = DataParallelTrainer::new(2, 8).with_overlap(OverlapConfig { enabled: false });
    let cfg = RecoveryConfig {
        checkpoint_interval: 4,
        step_timeout: Duration::from_millis(500),
        max_recoveries: 8,
    };
    let run = |plan: FaultPlan| {
        dp.run_fault_tolerant(
            || spec.build(3),
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            2,
            Arc::new(plan),
            cfg,
        )
    };
    // A drop mid-run burns a full 500 ms timeout against ~millisecond
    // healthy steps: a huge latency spike in the attempt telemetry.
    let faulted = run(FaultPlan::empty().drop_message(0, 1, TagClass::Blocking(0), 20));
    assert!(faulted.recoveries >= 1);

    let faulted_run = telemetry_from_step_seconds(&faulted.step_seconds, true);

    // ML detector trained on the *simulated* fleet transfers to the real
    // injected-fault telemetry.
    let mut detector = FaultDetector::train(&summit_workflow::fault::fleet(200, 32, 10), 5);
    assert!(
        detector.is_faulty(&faulted_run),
        "ML detector must flag the injected-fault run"
    );
    // The threshold rule sees the timeout spike too (ln(500ms / ~ms) >> 2.5).
    assert!(threshold_detector(&faulted_run, 2.5));
    // A fault-free run stays clean under the threshold rule: its only noise
    // is scheduler jitter, normally far below e^2.5 ≈ 12× the ~millisecond
    // median step time. A preempted step on a busy host can exceed that, so
    // allow a bounded retry — transient OS jitter clears on re-run, whereas
    // a real fault (a 500 ms timeout burn, ~1000× the median) would trip
    // every attempt.
    let healthy_clean = (0..3).any(|_| {
        let healthy = run(FaultPlan::empty());
        assert_eq!(healthy.recoveries, 0);
        let healthy_run = telemetry_from_step_seconds(&healthy.step_seconds, false);
        !threshold_detector(&healthy_run, 2.5)
    });
    assert!(
        healthy_clean,
        "threshold rule flagged three consecutive fault-free runs"
    );
}

// ---------------------------------------------------------------------------
// Elastic shrink chaos: kills aimed at the shrink protocol itself.
// ---------------------------------------------------------------------------

/// Kills aimed at every phase of the elastic shrink protocol — the vote,
/// the quiesce drain, the re-partition, and the first post-shrink
/// collective at the new epoch. A first kill triggers the shrink at step
/// `K`; the second lands inside it. Every run must complete at the
/// doubly-shrunk size on the exact fresh-world trajectory, or fail loudly
/// — never hang.
#[test]
fn chaos_kills_in_every_shrink_phase_complete_or_fail_loudly() {
    use summit_dl::recovery::{elastic_clock, SUB_COMM, SUB_DRAIN, SUB_REPART, SUB_VOTE};

    let task = blobs(48, 4, 2, 0.3, 59);
    let spec = MlpSpec::new(4, &[8], 2);
    let model_spec = spec.clone();
    let build_model = move || model_spec.build(29);
    let build_opt = || -> Box<dyn Optimizer> { Box::new(Adam::new(0.01, 0.0)) };
    const K: u32 = 3;
    const T: u32 = 8;
    let ecfg = ElasticConfig {
        step_timeout: Duration::from_millis(400),
        checkpoint_interval: 2,
        max_shrinks: 4,
        rejoin_at: None,
    };
    let dp4 = DataParallelTrainer::new(4, 4).with_overlap(OverlapConfig { enabled: false });
    let dp2 = DataParallelTrainer::new(2, 4).with_overlap(OverlapConfig { enabled: false });

    let ck = dp4
        .run_elastic(
            &build_model,
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            K,
            None,
            Arc::new(FaultPlan::empty()),
            ecfg,
        )
        .checkpoint;
    // Ground truth: both kills land, so the run ends as a fresh 2-rank
    // world (members {0, 3}) continuing from the step-K state.
    let fresh = dp2.run_elastic(
        &build_model,
        build_opt,
        LrSchedule::Constant,
        &task.x,
        &task.y,
        T,
        Some(&ck),
        Arc::new(FaultPlan::empty()),
        ecfg,
    );

    for (label, second_kill) in [
        ("vote", elastic_clock(0, K, SUB_VOTE)),
        ("quiesce drain", elastic_clock(0, K, SUB_DRAIN)),
        ("re-partition", elastic_clock(1, K, SUB_REPART)),
        (
            "first post-shrink collective",
            elastic_clock(1, K, SUB_COMM),
        ),
    ] {
        let plan = Arc::new(
            FaultPlan::empty()
                .kill_rank(2, elastic_clock(0, K, SUB_COMM))
                .kill_rank(1, second_kill),
        );
        let el = dp4.run_elastic(
            &build_model,
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            T,
            None,
            Arc::clone(&plan),
            ecfg,
        );
        assert_eq!(el.steps, T, "kill at {label}");
        assert_eq!(el.final_world, 2, "kill at {label}");
        assert_eq!(el.final_members, vec![0, 3], "kill at {label}");
        assert_eq!(el.max_divergence, 0.0, "kill at {label}");
        assert!(
            el.shrinks == 1 || el.shrinks == 2,
            "kill at {label}: {} shrinks",
            el.shrinks
        );
        assert_eq!(el.faults_injected, 2, "kill at {label}: a kill never fired");
        for (i, (a, b)) in el.params.iter().zip(&fresh.params).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "kill at {label} param {i}: {a} vs {b}; {}",
                archive_plan(&plan, &format!("shrink-phase-{}", label.replace(' ', "-")))
            );
        }
    }
}

/// Randomized shrink leg for the CI seed matrix: the victim, kill step,
/// and kill substep all derive from `CHAOS_SEED`; the shrunk run must be
/// bit-identical to a fresh 3-rank world from the same checkpoint. A
/// failing case archives its fault plan under `target/chaos/`.
#[test]
fn chaos_training_randomized_kill_shrinks_bitwise() {
    use summit_dl::recovery::{elastic_clock, SUB_COMM, SUB_PRE, SUB_VOTE};

    let base = chaos_seed();
    let task = blobs(48, 4, 2, 0.3, 61);
    let spec = MlpSpec::new(4, &[8], 2);
    let model_spec = spec.clone();
    let build_model = move || model_spec.build(31);
    let build_opt = || -> Box<dyn Optimizer> { Box::new(Sgd::new(0.05, 0.9, 0.0)) };
    let ecfg = ElasticConfig {
        step_timeout: Duration::from_millis(400),
        checkpoint_interval: 2,
        max_shrinks: 4,
        rejoin_at: None,
    };
    for case in 0..3u64 {
        let seed = base.wrapping_mul(424_243).wrapping_add(case);
        let victim = 1 + (seed % 3) as usize;
        let k = 2 + (seed / 3 % 4) as u32;
        let sub = [SUB_PRE, SUB_COMM, SUB_VOTE][(seed / 12 % 3) as usize];
        let overlap = seed % 2 == 0;
        let dp4 = DataParallelTrainer::new(4, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let dp3 = DataParallelTrainer::new(3, 4)
            .with_fusion(FusionConfig { bucket_bytes: 64 })
            .with_overlap(OverlapConfig { enabled: overlap });
        let ck = dp4
            .run_elastic(
                &build_model,
                build_opt,
                LrSchedule::Constant,
                &task.x,
                &task.y,
                k,
                None,
                Arc::new(FaultPlan::empty()),
                ecfg,
            )
            .checkpoint;
        let fresh = dp3.run_elastic(
            &build_model,
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            8,
            Some(&ck),
            Arc::new(FaultPlan::empty()),
            ecfg,
        );
        let plan = Arc::new(FaultPlan::empty().kill_rank(victim, elastic_clock(0, k, sub)));
        let el = dp4.run_elastic(
            &build_model,
            build_opt,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            8,
            None,
            Arc::clone(&plan),
            ecfg,
        );
        let label = format!("seed {seed} victim {victim} step {k} substep {sub}");
        assert_eq!(el.steps, 8, "{label}");
        assert_eq!(el.shrinks, 1, "{label}");
        assert_eq!(el.final_world, 3, "{label}");
        assert!(!el.final_members.contains(&victim), "{label}");
        assert_eq!(el.max_divergence, 0.0, "{label}");
        for (i, (a, b)) in el.params.iter().zip(&fresh.params).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{label} param {i}: {a} vs {b}; {}",
                archive_plan(&plan, &format!("shrink-seed-{seed}"))
            );
        }
    }
}

/// Regression (satellite): an abandoned, *still-alive*
/// `RingAllreduceHandle` across an elastic shrink quiesce. The view-based
/// quiesce (barrier → fixpoint drain → barrier) must sweep the handle's
/// parked nonblocking-tag traffic without eating control-plane tokens,
/// the post-shrink epoch-1 collective must produce the fresh-world
/// result, and the world-wide pool balance must return to zero.
#[test]
fn abandoned_handle_alive_across_shrink_quiesce() {
    let p = 4;
    let n = 32;
    let out = World::run(p, |rank| {
        let mut buf = vec![rank.id() as f32 + 1.0; n];
        let mut handle = ring_allreduce_start_windowed(rank, &mut buf, ReduceOp::Sum, 7, n, 0);
        // Land real traffic in peers' queues, then abandon the collective
        // mid-flight — the handle stays alive across the whole quiesce.
        handle.progress();
        let view = WorldView::full(rank);
        view_barrier(rank, &view, 1);
        let drained = rank.drain_all();
        view_barrier(rank, &view, 2);
        handle.cancel();
        drop(handle);

        // The survivors' first epoch-1 collective must be unaffected.
        let shrunk = view.shrink_to(&[true, false, true, true]);
        if shrunk.my_index().is_some() {
            let mut data = vec![rank.id() as f32; 8];
            try_ring_allreduce_view(
                rank,
                &shrunk,
                &mut data,
                ReduceOp::Sum,
                4,
                Duration::from_secs(5),
            )
            .unwrap();
            for v in &data {
                assert_eq!(*v, 5.0, "post-shrink collective corrupted");
            }
        }
        (drained, rank.pool_stats().outstanding)
    });
    let drained: usize = out.iter().map(|(d, _)| d).sum();
    assert!(drained > 0, "the abandoned collective left no traffic?");
    assert_eq!(
        out.iter().map(|(_, o)| o).sum::<i64>(),
        0,
        "live abandoned handle leaked pooled buffers across the quiesce: {out:?}"
    );
}
