//! Checkpoint I/O and the Young–Daly interval (paper Section VI-B's
//! "runtime components such as I/O … can be performance-critical").
//!
//! Long training jobs on a leadership machine must checkpoint: the machine
//! MTBF shrinks linearly with node count, and the Blanchard case study's
//! I/O overhead is dominated by exactly this traffic. The classic
//! first-order analysis (Young 1974, Daly 2006) gives the optimal interval
//! `τ* = √(2·δ·M)` for checkpoint cost `δ` and MTBF `M`, with expected
//! overhead `δ/τ + τ/(2M)` (checkpoint writes plus expected recomputation).

use serde::Serialize;

use crate::tier::StorageTier;

/// Checkpoint cost model for one job.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CheckpointModel {
    /// Bytes written per checkpoint (model + optimizer state).
    pub state_bytes: f64,
    /// Write bandwidth available to the job, bytes/s.
    pub write_bw: f64,
    /// Mean time between failures for the job's node set, seconds.
    pub mtbf_seconds: f64,
}

impl CheckpointModel {
    /// Build from a storage tier and a per-node MTBF (machine MTBF =
    /// per-node MTBF / nodes).
    ///
    /// # Panics
    /// Panics on non-positive inputs.
    pub fn new(state_bytes: f64, tier: &StorageTier, node_mtbf_seconds: f64, nodes: u32) -> Self {
        assert!(state_bytes > 0.0, "state must be non-empty");
        assert!(
            node_mtbf_seconds > 0.0 && nodes > 0,
            "MTBF inputs must be positive"
        );
        CheckpointModel {
            state_bytes,
            write_bw: tier.write_bw,
            mtbf_seconds: node_mtbf_seconds / f64::from(nodes),
        }
    }

    /// Seconds to write one checkpoint.
    pub fn checkpoint_seconds(&self) -> f64 {
        self.state_bytes / self.write_bw
    }

    /// The Young–Daly optimal checkpoint interval in seconds.
    pub fn optimal_interval(&self) -> f64 {
        (2.0 * self.checkpoint_seconds() * self.mtbf_seconds).sqrt()
    }

    /// Expected overhead fraction at interval `tau`: checkpoint writes
    /// (`δ/τ`) plus expected lost work on failure (`τ/(2M)`).
    ///
    /// # Panics
    /// Panics if `tau` is not positive.
    pub fn overhead_fraction(&self, tau: f64) -> f64 {
        assert!(tau > 0.0, "interval must be positive");
        self.checkpoint_seconds() / tau + tau / (2.0 * self.mtbf_seconds)
    }

    /// Overhead at the optimal interval: `√(2δ/M)`.
    pub fn optimal_overhead_fraction(&self) -> f64 {
        self.overhead_fraction(self.optimal_interval())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_machine::MachineSpec;

    /// A 5-year per-node MTBF, typical for leadership hardware.
    const NODE_MTBF: f64 = 5.0 * 365.25 * 24.0 * 3600.0;

    fn model(nodes: u32, state_tb: f64) -> CheckpointModel {
        let summit = MachineSpec::summit();
        CheckpointModel::new(
            state_tb * 1e12,
            &StorageTier::shared_fs(&summit),
            NODE_MTBF,
            nodes,
        )
    }

    #[test]
    fn optimum_is_a_minimum() {
        let m = model(4608, 10.0);
        let tau = m.optimal_interval();
        let at_opt = m.overhead_fraction(tau);
        for factor in [0.25, 0.5, 2.0, 4.0] {
            assert!(
                m.overhead_fraction(tau * factor) > at_opt,
                "overhead at {factor}×τ* not worse"
            );
        }
        // Closed form: overhead(τ*) = √(2δ/M).
        let closed = (2.0 * m.checkpoint_seconds() / m.mtbf_seconds).sqrt();
        assert!((at_opt - closed).abs() / closed < 1e-9);
    }

    #[test]
    fn full_summit_numbers_plausible() {
        // 10 TB checkpoint at 2.5 TB/s = 4 s; machine MTBF ≈ 9.5 h at 4,608
        // nodes → τ* ≈ 8.8 minutes, overhead ≈ 1.5%.
        let m = model(4608, 10.0);
        assert!((m.checkpoint_seconds() - 4.0).abs() < 1e-9);
        let mtbf_hours = m.mtbf_seconds / 3600.0;
        assert!(mtbf_hours > 8.0 && mtbf_hours < 11.0, "{mtbf_hours}");
        let tau_min = m.optimal_interval() / 60.0;
        assert!(tau_min > 5.0 && tau_min < 15.0, "{tau_min}");
        assert!(m.optimal_overhead_fraction() < 0.03);
    }

    #[test]
    fn bigger_jobs_checkpoint_more_often() {
        let small = model(64, 10.0);
        let big = model(4608, 10.0);
        assert!(big.optimal_interval() < small.optimal_interval());
        assert!(big.optimal_overhead_fraction() > small.optimal_overhead_fraction());
    }

    #[test]
    fn bigger_state_costs_more() {
        let lean = model(1024, 1.0);
        let fat = model(1024, 100.0);
        assert!(fat.optimal_overhead_fraction() > lean.optimal_overhead_fraction());
        // Overhead scales as √state: 100× state → 10× overhead.
        let ratio = fat.optimal_overhead_fraction() / lean.optimal_overhead_fraction();
        assert!((ratio - 10.0).abs() < 1e-6, "{ratio}");
    }
}
