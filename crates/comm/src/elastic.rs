//! Elastic membership control plane: votes, barriers, and collectives over
//! a [`WorldView`] — the machinery that lets a world shrink past a dead
//! rank (or grow one back in) instead of rolling back and replaying.
//!
//! The protocol is deliberately small. All of it rides on control-plane
//! tags ([`CONTROL_BIT`]), which the fault plane never drops, delays, or
//! corrupts — the same assumption the rollback path's [`all_agree`] vote
//! already makes (a production transport would carry these over a reliable
//! out-of-band channel). Three primitives:
//!
//! * [`vote_members`] — every member learns every member's health bit, so
//!   all survivors compute the *same* survivor mask from the same inputs.
//! * [`view_barrier`] — a gather-then-release rendezvous among the view's
//!   members only. The elastic path never touches the world's physical
//!   [`Rank::barrier`], which is sized for the full world and would
//!   deadlock (or worse, mis-release) once spectators stop participating.
//! * [`try_ring_allreduce_view`] — the data-plane collective: the exact
//!   ring schedule of the classic path, re-derived at the view's size over
//!   dense ids and remapped to physical ranks on the wire, in the view's
//!   epoch tag namespace.
//!
//! [`all_agree`]: crate::faults::all_agree

use std::time::{Duration, Instant};

use crate::collectives::ReduceOp;
use crate::engine::{self, RemapSchedule, RingSchedule};
use crate::faults::{CommError, CONTROL_BIT};
use crate::world::{Rank, WorldView};

/// Control-message kinds, carried in bits 32..40 of the tag so they can
/// never collide with [`all_agree`]'s historical `CONTROL_BIT | round`
/// encoding (kind 0).
///
/// [`all_agree`]: crate::faults::all_agree
const K_VOTE: u64 = 1;
const K_GATHER: u64 = 2;
const K_RELEASE: u64 = 3;
const K_JOIN: u64 = 4;
const K_STATE: u64 = 5;

/// Compose a control tag: kind, membership epoch, and a per-use round.
fn ctl_tag(kind: u64, epoch: u64, round: u64) -> u64 {
    CONTROL_BIT | (kind << 32) | ((epoch & 0xfff) << 16) | (round & 0xffff)
}

/// Tag of the hot-join signal a member sends a waiting spectator at step
/// boundary `step`. Epoch-free: the spectator left the membership before
/// the current epoch existed, so the tag is keyed on the agreed rejoin
/// step instead (the signal payload carries the epoch to adopt).
pub fn join_tag(step: u64) -> u64 {
    ctl_tag(K_JOIN, 0, step)
}

/// Tag of the state transfer (encoded size-agnostic checkpoint) that
/// follows a [`join_tag`] signal.
pub fn state_tag(step: u64) -> u64 {
    ctl_tag(K_STATE, 0, step)
}

/// All-to-all health vote among the view's members: returns the mask of
/// members (dense-indexed) that reported `healthy`. Control traffic is
/// reliable, so every member computes the identical mask — this is the
/// agreement step that lets survivors adopt the same shrunk view without
/// a leader.
///
/// `round` must be unique per (epoch, call site); the elastic runner keys
/// it on the training step.
///
/// # Panics
/// Panics if this rank is not a member of `view`.
pub fn vote_members(rank: &Rank, view: &WorldView, healthy: bool, round: u64) -> Vec<bool> {
    let me = view.my_index().expect("only members vote");
    let tag = ctl_tag(K_VOTE, view.epoch(), round);
    let vote = [if healthy { 1.0f32 } else { 0.0 }];
    for (dense, &peer) in view.members().iter().enumerate() {
        if dense != me {
            rank.send_from(peer, tag, &vote);
        }
    }
    let mut mask = vec![false; view.size()];
    mask[me] = healthy;
    for (dense, &peer) in view.members().iter().enumerate() {
        if dense != me {
            rank.recv_with(peer, tag, |payload| mask[dense] = payload[0] != 0.0);
        }
    }
    mask
}

/// Rendezvous among the view's members: dense rank 0 collects a token from
/// every other member, then releases them all. No member passes the
/// barrier until every member has reached it — the property the quiesce
/// protocol (barrier → drain → barrier) needs so that all pre-barrier data
/// traffic is already in the receive queues when the drain sweeps them.
///
/// # Panics
/// Panics if this rank is not a member of `view`.
pub fn view_barrier(rank: &Rank, view: &WorldView, round: u64) {
    let me = view.my_index().expect("only members synchronize");
    if view.size() == 1 {
        return;
    }
    let gather = ctl_tag(K_GATHER, view.epoch(), round);
    let release = ctl_tag(K_RELEASE, view.epoch(), round);
    let leader = view.physical(0);
    if me == 0 {
        for &peer in &view.members()[1..] {
            rank.recv_with(peer, gather, |_| ());
        }
        for &peer in &view.members()[1..] {
            rank.send_from(peer, release, &[1.0]);
        }
    } else {
        rank.send_from(leader, gather, &[1.0]);
        rank.recv_with(leader, release, |_| ());
    }
}

/// Fallible bucketed ring allreduce over a [`WorldView`]: the schedule is
/// derived at `(view.size(), dense id)` — exactly the classic schedule at
/// that size — and remapped to physical ranks on the wire, tagged in the
/// view's epoch namespace. At full membership and epoch 0 this is wire-
/// and bit-identical to `try_ring_allreduce_bucketed`.
///
/// # Errors
/// Any [`CommError`] from the checked receives or the kill poll.
///
/// # Panics
/// Panics if this rank is not a member of `view`.
pub fn try_ring_allreduce_view(
    rank: &Rank,
    view: &WorldView,
    buf: &mut [f32],
    op: ReduceOp,
    bucket_elems: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    let me = view.my_index().expect("only members join collectives");
    rank.poll_fault_kill()?;
    if view.size() == 1 {
        return Ok(());
    }
    let mut sched =
        RingSchedule::allreduce_ns(view.size(), me, buf.len(), bucket_elems, view.blocking_ns());
    let mut remap = RemapSchedule::new(&mut sched, view.members());
    engine::drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut remap,
        Some(Instant::now() + timeout),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;
    use std::time::Duration;

    #[test]
    fn full_view_allreduce_matches_classic() {
        let results = World::run(4, |rank| {
            let view = WorldView::full(rank);
            let mut elastic = vec![rank.id() as f32 + 0.25; 32];
            let mut classic = elastic.clone();
            try_ring_allreduce_view(
                rank,
                &view,
                &mut elastic,
                ReduceOp::Sum,
                8,
                Duration::from_secs(5),
            )
            .unwrap();
            crate::collectives::try_ring_allreduce_bucketed(
                rank,
                &mut classic,
                ReduceOp::Sum,
                8,
                Duration::from_secs(5),
            )
            .unwrap();
            (elastic, classic)
        });
        for (elastic, classic) in results {
            assert_eq!(elastic, classic);
        }
    }

    #[test]
    fn shrunk_view_matches_fresh_small_world() {
        // 4-rank world, member set {0, 2, 3} at epoch 1: the survivors'
        // allreduce must be bit-identical to a fresh 3-rank world's.
        let big = World::run(4, |rank| {
            let view = WorldView::full(rank).shrink_to(&[true, false, true, true]);
            let Some(dense) = view.my_index() else {
                return None; // rank 1 is a spectator
            };
            let mut buf: Vec<f32> = (0..10).map(|i| (dense * 10 + i) as f32 * 0.5).collect();
            try_ring_allreduce_view(
                rank,
                &view,
                &mut buf,
                ReduceOp::Sum,
                4,
                Duration::from_secs(5),
            )
            .unwrap();
            Some(buf)
        });
        let small = World::run(3, |rank| {
            let mut buf: Vec<f32> = (0..10).map(|i| (rank.id() * 10 + i) as f32 * 0.5).collect();
            crate::collectives::ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, 4);
            buf
        });
        let survivors: Vec<_> = big.into_iter().flatten().collect();
        assert_eq!(survivors.len(), 3);
        for (s, f) in survivors.iter().zip(&small) {
            assert_eq!(s, f, "shrunk-view collective diverged from fresh world");
        }
    }

    #[test]
    fn view_barrier_and_vote_exclude_spectators() {
        let results = World::run(4, |rank| {
            let view = WorldView::full(rank).shrink_to(&[true, true, false, true]);
            if view.my_index().is_none() {
                return vec![];
            }
            view_barrier(rank, &view, 7);
            let healthy = rank.id() != 3;
            let mask = vote_members(rank, &view, healthy, 9);
            view_barrier(rank, &view, 8);
            mask
        });
        for (id, mask) in results.iter().enumerate() {
            if id == 2 {
                assert!(mask.is_empty());
            } else {
                // Members are {0, 1, 3}; dense index 2 (physical 3) voted no.
                assert_eq!(mask, &vec![true, true, false]);
            }
        }
    }
}
