//! Extended collectives: personalized all-to-all, scatter/gather, and the
//! hierarchical (two-level) allreduce that mirrors Summit's NVLink-inside,
//! InfiniBand-between structure.

use crate::collectives::{binomial_broadcast, ring_allreduce, ReduceOp};
use crate::world::Rank;

fn tag(collective: u64, step: usize) -> u64 {
    (collective << 32) | step as u64
}

/// Personalized all-to-all: rank i sends `send[j]` to rank j and receives
/// rank j's `send[i]`. Returns the received buffers indexed by source.
///
/// # Panics
/// Panics if `send.len() != world size`.
pub fn alltoall(rank: &Rank, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let p = rank.size();
    assert_eq!(send.len(), p, "alltoall needs one buffer per rank");
    let me = rank.id();
    let mut recv: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
    let mut send = send;
    // Pairwise-exchange schedule: in step s, exchange with me ^ s when the
    // world is a power of two; otherwise fall back to the shifted ring
    // schedule (peer = (me + s) % p both ways).
    if p.is_power_of_two() {
        recv[me] = std::mem::take(&mut send[me]);
        for s in 1..p {
            let peer = me ^ s;
            let payload = std::mem::take(&mut send[peer]);
            recv[peer] = rank.send_recv(peer, peer, tag(10, s), payload);
        }
    } else {
        recv[me] = std::mem::take(&mut send[me]);
        for s in 1..p {
            let to = (me + s) % p;
            let from = (me + p - s) % p;
            rank.send(to, tag(10, s), std::mem::take(&mut send[to]));
            recv[from] = rank.recv(from, tag(10, s));
        }
    }
    recv
}

/// Scatter: the root distributes `chunks[i]` to rank i. Returns this
/// rank's chunk.
///
/// # Panics
/// Panics if the root's `chunks` has the wrong length, or a non-root
/// passes `Some`.
pub fn scatter(rank: &Rank, chunks: Option<Vec<Vec<f32>>>, root: usize) -> Vec<f32> {
    let p = rank.size();
    if rank.id() == root {
        let mut chunks = chunks.expect("root must provide chunks");
        assert_eq!(chunks.len(), p, "scatter needs one chunk per rank");
        for (dst, chunk) in chunks.iter_mut().enumerate() {
            if dst != root {
                rank.send(dst, tag(11, dst), std::mem::take(chunk));
            }
        }
        std::mem::take(&mut chunks[root])
    } else {
        assert!(chunks.is_none(), "non-root ranks pass None");
        rank.recv(root, tag(11, rank.id()))
    }
}

/// Gather: every rank contributes `data`; the root returns all
/// contributions indexed by rank, others return an empty vector.
#[allow(clippy::needless_range_loop)] // skip-root loop over rank ids
pub fn gather(rank: &Rank, data: Vec<f32>, root: usize) -> Vec<Vec<f32>> {
    let p = rank.size();
    if rank.id() == root {
        let mut out: Vec<Vec<f32>> = (0..p).map(|_| Vec::new()).collect();
        out[root] = data;
        for src in 0..p {
            if src != root {
                out[src] = rank.recv(src, tag(12, src));
            }
        }
        out
    } else {
        rank.send(root, tag(12, rank.id()), data);
        Vec::new()
    }
}

/// Two-level allreduce mirroring Summit's hierarchy: ranks are grouped
/// into "nodes" of `group_size`; each group tree-reduces to its leader,
/// leaders ring-allreduce among themselves, then each leader broadcasts
/// back into its group. The result equals a flat allreduce.
///
/// # Panics
/// Panics unless the world size is a multiple of `group_size`.
pub fn hierarchical_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, group_size: usize) {
    let p = rank.size();
    assert!(
        group_size > 0 && p.is_multiple_of(group_size),
        "world must tile into groups"
    );
    let me = rank.id();
    let leader = me - me % group_size;
    let lane = me - leader;

    // Phase 1: linear reduce to the group leader (groups are small — the
    // NVLink triplet/node — so a linear gather-reduce is what NCCL does).
    if lane != 0 {
        rank.send_from(leader, tag(13, lane), buf);
    } else {
        for l in 1..group_size {
            rank.recv_with(leader + l, tag(13, l), |got| op.fold(buf, got));
        }
    }

    // Phase 2: leaders allreduce over a ring of leaders. We reuse the flat
    // ring by mapping leaders onto a virtual contiguous communicator: each
    // leader exchanges with the next/previous leader directly.
    if lane == 0 && p > group_size {
        let groups = p / group_size;
        let gid = me / group_size;
        let right = ((gid + 1) % groups) * group_size;
        let left = ((gid + groups - 1) % groups) * group_size;
        // Reduce-scatter + allgather over leader ring, chunked by group id.
        let n = buf.len();
        let chunk_bounds = |chunk: usize| -> (usize, usize) {
            let base = n / groups;
            let extra = n % groups;
            let start = chunk * base + chunk.min(extra);
            (start, start + base + usize::from(chunk < extra))
        };
        for s in 0..groups - 1 {
            let send_chunk = (gid + groups - s) % groups;
            let recv_chunk = (gid + groups - s - 1) % groups;
            let (src, dst) = crate::collectives::send_recv_windows(
                buf,
                chunk_bounds(send_chunk),
                chunk_bounds(recv_chunk),
            );
            rank.send_from(right, tag(14, s), src);
            rank.recv_with(left, tag(14, s), |got| op.fold(dst, got));
        }
        for s in 0..groups - 1 {
            let send_chunk = (gid + 1 + groups - s) % groups;
            let recv_chunk = (gid + groups - s) % groups;
            let (src, dst) = crate::collectives::send_recv_windows(
                buf,
                chunk_bounds(send_chunk),
                chunk_bounds(recv_chunk),
            );
            rank.send_from(right, tag(15, s), src);
            rank.recv_into(left, tag(15, s), dst);
        }
    }

    // Phase 3: leaders broadcast into their groups.
    if lane == 0 {
        for l in 1..group_size {
            rank.send_from(leader + l, tag(16, l), buf);
        }
    } else {
        rank.recv_into(leader, tag(16, lane), buf);
    }
}

/// Flat allreduce convenience wrapper choosing the hierarchical path when
/// the world tiles into `group_size`, plain ring otherwise.
pub fn auto_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, group_size: usize) {
    if group_size > 1 && rank.size().is_multiple_of(group_size) && rank.size() > group_size {
        hierarchical_allreduce(rank, buf, op, group_size);
    } else {
        ring_allreduce(rank, buf, op);
    }
}

/// Broadcast re-export companion for the extended set (binomial tree).
pub use crate::collectives::binomial_broadcast as broadcast;

/// All-gather personalized payloads via gather + broadcast (convenience
/// for small control-plane messages; bandwidth-optimal paths should use
/// `ring_allgather`).
pub fn gather_then_broadcast(rank: &Rank, data: Vec<f32>, root: usize) -> Vec<Vec<f32>> {
    let gathered = gather(rank, data, root);
    // Flatten with offsets so broadcast carries one buffer.
    let (mut flat, mut header) = if rank.id() == root {
        let mut flat = Vec::new();
        let mut header = Vec::with_capacity(gathered.len() + 1);
        header.push(gathered.len() as f32);
        for g in &gathered {
            header.push(g.len() as f32);
        }
        for g in &gathered {
            flat.extend_from_slice(g);
        }
        (flat, header)
    } else {
        (Vec::new(), Vec::new())
    };
    binomial_broadcast(rank, &mut header, root);
    binomial_broadcast(rank, &mut flat, root);
    let count = header[0] as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    for i in 0..count {
        let len = header[1 + i] as usize;
        out.push(flat[off..off + len].to_vec());
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn alltoall_power_of_two_and_odd() {
        for p in [2usize, 4, 8, 3, 5, 7] {
            let out = World::run(p, |rank| {
                // Rank i sends [i·p + j] to rank j.
                let send: Vec<Vec<f32>> =
                    (0..p).map(|j| vec![(rank.id() * p + j) as f32]).collect();
                alltoall(rank, send)
            });
            for (i, recv) in out.iter().enumerate() {
                for (j, buf) in recv.iter().enumerate() {
                    assert_eq!(buf, &vec![(j * p + i) as f32], "p={p} rank {i} from {j}");
                }
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        for root in 0..4 {
            let out = World::run(4, |rank| {
                let chunks = (rank.id() == root)
                    .then(|| (0..4).map(|i| vec![i as f32, (i * i) as f32]).collect());
                scatter(rank, chunks, root)
            });
            for (i, chunk) in out.iter().enumerate() {
                assert_eq!(chunk, &vec![i as f32, (i * i) as f32]);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let root = 2;
        let out = World::run(5, |rank| {
            gather(rank, vec![rank.id() as f32; rank.id() + 1], root)
        });
        for (i, g) in out[root].iter().enumerate() {
            assert_eq!(g, &vec![i as f32; i + 1]);
        }
        assert!(out[0].is_empty());
    }

    #[test]
    fn hierarchical_equals_flat_allreduce() {
        for (p, g) in [(6usize, 3usize), (8, 2), (12, 6), (4, 4), (9, 3)] {
            let out = World::run(p, |rank| {
                let mut buf: Vec<f32> = (0..10).map(|i| (rank.id() * 10 + i) as f32).collect();
                hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, g);
                buf
            });
            // Flat reference.
            let mut want = vec![0.0f32; 10];
            for r in 0..p {
                for (w, i) in want.iter_mut().zip(0..10) {
                    *w += (r * 10 + i) as f32;
                }
            }
            for (r, got) in out.iter().enumerate() {
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-3, "p={p} g={g} rank={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn hierarchical_max_and_min() {
        let out = World::run(6, |rank| {
            let mut buf = vec![rank.id() as f32];
            hierarchical_allreduce(rank, &mut buf, ReduceOp::Max, 3);
            buf[0]
        });
        assert!(out.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn auto_allreduce_picks_working_path() {
        for p in [4usize, 5, 6, 12] {
            let out = World::run(p, |rank| {
                let mut buf = vec![1.0f32; 7];
                auto_allreduce(rank, &mut buf, ReduceOp::Sum, 3);
                buf[0]
            });
            assert!(out.iter().all(|&v| (v - p as f32).abs() < 1e-4), "p={p}");
        }
    }

    #[test]
    fn gather_then_broadcast_everyone_sees_all() {
        let out = World::run(4, |rank| {
            gather_then_broadcast(rank, vec![rank.id() as f32; rank.id()], 1)
        });
        for result in out {
            assert_eq!(result.len(), 4);
            for (i, v) in result.iter().enumerate() {
                assert_eq!(v, &vec![i as f32; i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn hierarchical_requires_tiling() {
        World::run(5, |rank| {
            let mut buf = vec![0.0f32; 4];
            hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, 3);
        });
    }
}
