//! Proof that the pooled communicator hot path is allocation-free in
//! steady state: a counting global allocator brackets a window in which
//! every rank runs ring allreduces, and the allocation count must not move.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use summit_comm::collectives::{ring_allreduce, ring_allreduce_bucketed, ReduceOp};
use summit_comm::world::World;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Steady-state ring allreduce performs zero heap allocations.
///
/// Warm-up rounds fill each rank's buffer pool and let the channel queues
/// reach their peak depth; after a barrier, every rank runs many more
/// allreduces while the global allocation counter is watched. Any
/// allocation anywhere in the process during that window fails the test,
/// so the proof covers the collectives, the pooled primitives, and the
/// transport queues at once.
///
/// This file intentionally holds only this test: a sibling test running
/// concurrently in the same binary would pollute the counter.
#[test]
fn steady_state_ring_allreduce_does_not_allocate() {
    let p = 4;
    let n = 4096;
    let warmup = 4;
    let rounds = 32;

    let stats = World::run(p, |rank| {
        let mut buf = vec![rank.id() as f32; n];
        for _ in 0..warmup {
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        }
        rank.barrier();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let pool_before = rank.pool_stats();
        for _ in 0..rounds {
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        }
        rank.barrier();
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        let pool_after = rank.pool_stats();
        (before, after, pool_before, pool_after)
    });

    for (rank_id, (before, after, pool_before, pool_after)) in stats.iter().enumerate() {
        assert_eq!(
            after,
            before,
            "rank {rank_id}: {} allocations during steady-state allreduces",
            after - before
        );
        assert_eq!(
            pool_after.misses, pool_before.misses,
            "rank {rank_id}: pool missed during steady state"
        );
        // Only the reduce-scatter priming send touches the pool: every
        // other step forwards the received payload as-is, and the final
        // reduce hop hands its payload to the allgather phase directly.
        assert_eq!(
            pool_after.hits - pool_before.hits,
            rounds as u64,
            "rank {rank_id}: unexpected pool hit count"
        );
        // Every round each rank acquires one priming buffer and retires one
        // circulating payload, so the outstanding count must return to its
        // warm-state value once the barrier has drained the ring.
        assert_eq!(
            pool_after.outstanding, pool_before.outstanding,
            "rank {rank_id}: pool outstanding count drifted during steady state"
        );
    }

    // The bucketed variant shares the same pooled path: after its own
    // warm-up it must also run allocation-free.
    let bucket = 256;
    let ok = World::run(p, |rank| {
        let mut buf = vec![rank.id() as f32; n];
        for _ in 0..warmup {
            ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
        }
        rank.barrier();
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for _ in 0..rounds {
            ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
        }
        rank.barrier();
        ALLOCATIONS.load(Ordering::SeqCst) == before
    });
    assert!(ok.iter().all(|&v| v), "bucketed steady state allocated");
}
