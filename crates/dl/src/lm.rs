//! A tiny causal language model — multi-head attention over the
//! single-head core, token embeddings, and next-token training.
//!
//! The paper's forward-looking sections are about exactly this model
//! family: "transformer-based language models have scaled past the
//! trillion parameter mark", Blanchard et al. pretrain a BERT on SMILES
//! strings. This module provides the executable miniature: a causal
//! multi-head transformer LM over a small vocabulary that demonstrably
//! learns synthetic grammars, with every gradient path verified by finite
//! differences in the underlying modules.

use summit_tensor::{ops, Initializer, Matrix};

use crate::transformer::{positional_encoding, LayerNorm};

/// Per-head forward cache: (Q, K, V, attention probabilities).
type HeadCache = (Matrix, Matrix, Matrix, Matrix);

/// Multi-head causal self-attention: `heads` independent scaled-dot-product
/// heads of width `dim / heads`, concatenated and mixed by an output
/// projection. A lower-triangular mask makes it autoregressive.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    heads: usize,
    head_dim: usize,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    g_wq: Matrix,
    g_wk: Matrix,
    g_wv: Matrix,
    g_wo: Matrix,
    /// Caches per forward: input X, per-head (Q, K, V, P), concat context.
    cache: Option<(Matrix, Vec<HeadCache>, Matrix)>,
    causal: bool,
}

impl MultiHeadAttention {
    /// Create with `heads` heads over `dim` features.
    ///
    /// # Panics
    /// Panics unless `heads` divides `dim`.
    pub fn new(dim: usize, heads: usize, causal: bool, seed: u64) -> Self {
        assert!(
            heads > 0 && dim.is_multiple_of(heads),
            "heads must divide dim"
        );
        let init = |salt: u64| Initializer::XavierUniform.init(dim, dim, seed.wrapping_add(salt));
        MultiHeadAttention {
            heads,
            head_dim: dim / heads,
            wq: init(1),
            wk: init(2),
            wv: init(3),
            wo: init(4),
            g_wq: Matrix::zeros(dim, dim),
            g_wk: Matrix::zeros(dim, dim),
            g_wv: Matrix::zeros(dim, dim),
            g_wo: Matrix::zeros(dim, dim),
            cache: None,
            causal,
        }
    }

    fn slice_head(m: &Matrix, head: usize, head_dim: usize) -> Matrix {
        let mut out = Matrix::zeros(m.rows(), head_dim);
        for r in 0..m.rows() {
            for c in 0..head_dim {
                out.set(r, c, m.get(r, head * head_dim + c));
            }
        }
        out
    }

    fn write_head(dst: &mut Matrix, src: &Matrix, head: usize, head_dim: usize) {
        for r in 0..src.rows() {
            for c in 0..head_dim {
                dst.set(r, head * head_dim + c, src.get(r, c));
            }
        }
    }

    /// Forward over a `seq × dim` input.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let seq = x.rows();
        let q_all = x.matmul(&self.wq);
        let k_all = x.matmul(&self.wk);
        let v_all = x.matmul(&self.wv);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut concat = Matrix::zeros(seq, self.heads * self.head_dim);
        let mut head_caches = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let q = Self::slice_head(&q_all, h, self.head_dim);
            let k = Self::slice_head(&k_all, h, self.head_dim);
            let v = Self::slice_head(&v_all, h, self.head_dim);
            let mut p = q.matmul_a_bt(&k);
            p.map_inplace(|s| s * scale);
            if self.causal {
                for r in 0..seq {
                    for c in (r + 1)..seq {
                        p.set(r, c, f32::NEG_INFINITY);
                    }
                }
            }
            ops::softmax_inplace(&mut p);
            let o = p.matmul(&v);
            Self::write_head(&mut concat, &o, h, self.head_dim);
            head_caches.push((q, k, v, p));
        }
        let y = concat.matmul(&self.wo);
        self.cache = Some((x.clone(), head_caches, concat));
        y
    }

    /// Backward; accumulates weight gradients, returns dX.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let (x, head_caches, concat) = self.cache.as_ref().expect("backward before forward");
        let seq = x.rows();
        let scale = 1.0 / (self.head_dim as f32).sqrt();

        self.g_wo.add_assign(&concat.matmul_at_b(dy));
        let d_concat = dy.matmul_a_bt(&self.wo);

        let dim = self.heads * self.head_dim;
        let mut d_q_all = Matrix::zeros(seq, dim);
        let mut d_k_all = Matrix::zeros(seq, dim);
        let mut d_v_all = Matrix::zeros(seq, dim);
        for (h, (q, k, v, p)) in head_caches.iter().enumerate() {
            let d_o = Self::slice_head(&d_concat, h, self.head_dim);
            let mut d_p = d_o.matmul_a_bt(v);
            let d_v = p.matmul_at_b(&d_o);
            // Softmax backward (rows; masked entries have p = 0 so their
            // gradient contribution vanishes automatically).
            for r in 0..seq {
                let dot: f32 = d_p.row(r).iter().zip(p.row(r)).map(|(a, b)| a * b).sum();
                for c in 0..seq {
                    let val = p.get(r, c) * (d_p.get(r, c) - dot);
                    d_p.set(r, c, val);
                }
            }
            d_p.map_inplace(|s| s * scale);
            let d_q = d_p.matmul(k);
            let d_k = d_p.matmul_at_b(q);
            Self::write_head(&mut d_q_all, &d_q, h, self.head_dim);
            Self::write_head(&mut d_k_all, &d_k, h, self.head_dim);
            Self::write_head(&mut d_v_all, &d_v, h, self.head_dim);
        }

        self.g_wq.add_assign(&x.matmul_at_b(&d_q_all));
        self.g_wk.add_assign(&x.matmul_at_b(&d_k_all));
        self.g_wv.add_assign(&x.matmul_at_b(&d_v_all));
        let mut dx = d_q_all.matmul_a_bt(&self.wq);
        dx.add_assign(&d_k_all.matmul_a_bt(&self.wk));
        dx.add_assign(&d_v_all.matmul_a_bt(&self.wv));
        dx
    }

    /// Visit (params, grads) pairs.
    pub fn for_each_group(&mut self, mut f: impl FnMut(&mut [f32], &[f32])) {
        f(self.wq.as_mut_slice(), self.g_wq.as_slice());
        f(self.wk.as_mut_slice(), self.g_wk.as_slice());
        f(self.wv.as_mut_slice(), self.g_wv.as_slice());
        f(self.wo.as_mut_slice(), self.g_wo.as_slice());
    }

    fn zero_grads(&mut self) {
        self.g_wq.map_inplace(|_| 0.0);
        self.g_wk.map_inplace(|_| 0.0);
        self.g_wv.map_inplace(|_| 0.0);
        self.g_wo.map_inplace(|_| 0.0);
    }
}

/// A tiny causal LM: embedding + positional encoding → pre-norm multi-head
/// attention block with residual → layer norm → tied-free output head.
pub struct TinyLm {
    vocab: usize,
    dim: usize,
    embedding: Matrix,
    g_embedding: Matrix,
    ln: LayerNorm,
    attn: MultiHeadAttention,
    head: Matrix,
    g_head: Matrix,
    /// Caches: token ids and the post-attention hidden states.
    cache: Option<(Vec<usize>, Matrix)>,
}

impl TinyLm {
    /// Create an LM over `vocab` tokens with width `dim` and `heads` heads.
    pub fn new(vocab: usize, dim: usize, heads: usize, seed: u64) -> Self {
        TinyLm {
            vocab,
            dim,
            embedding: Initializer::XavierUniform.init(vocab, dim, seed),
            g_embedding: Matrix::zeros(vocab, dim),
            ln: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, true, seed.wrapping_add(5)),
            head: Initializer::XavierUniform.init(dim, vocab, seed.wrapping_add(9)),
            g_head: Matrix::zeros(dim, vocab),
            cache: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Logits (`seq × vocab`) for a token sequence: position `t` predicts
    /// token `t + 1`.
    ///
    /// # Panics
    /// Panics on empty input or out-of-range tokens.
    pub fn forward(&mut self, tokens: &[usize]) -> Matrix {
        assert!(!tokens.is_empty(), "need tokens");
        let seq = tokens.len();
        let mut x = Matrix::zeros(seq, self.dim);
        for (t, &tok) in tokens.iter().enumerate() {
            assert!(tok < self.vocab, "token out of range");
            for d in 0..self.dim {
                x.set(t, d, self.embedding.get(tok, d));
            }
        }
        x.add_assign(&positional_encoding(seq, self.dim));
        let normed = self.ln.forward(&x);
        let attn_out = self.attn.forward(&normed);
        let mut h = x;
        h.add_assign(&attn_out);
        let logits = h.matmul(&self.head);
        self.cache = Some((tokens.to_vec(), h));
        logits
    }

    /// One training step on a sequence: next-token cross-entropy over all
    /// positions. Returns the mean loss.
    ///
    /// # Panics
    /// Panics on sequences shorter than 2 tokens.
    pub fn train_step(&mut self, tokens: &[usize], lr: f32) -> f32 {
        assert!(tokens.len() >= 2, "need at least two tokens");
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let logits = self.forward(inputs);
        let (loss, dlogits) = ops::softmax_cross_entropy(logits, targets);

        // Zero grads.
        self.g_embedding.map_inplace(|_| 0.0);
        self.g_head.map_inplace(|_| 0.0);
        self.ln.zero_grads();
        self.attn.zero_grads();
        let (cached_tokens, h) = self.cache.take().expect("forward cached");

        // Head.
        self.g_head.add_assign(&h.matmul_at_b(&dlogits));
        let dh = dlogits.matmul_a_bt(&self.head);
        // Residual: dh flows to attention branch and to the embedding sum.
        let d_attn = self.attn.backward(&dh);
        let mut dx = self.ln.backward(&d_attn);
        dx.add_assign(&dh);
        // Embedding gradient: scatter-add rows.
        for (t, &tok) in cached_tokens.iter().enumerate() {
            for d in 0..self.dim {
                let v = self.g_embedding.get(tok, d) + dx.get(t, d);
                self.g_embedding.set(tok, d, v);
            }
        }

        // Plain SGD update over every group.
        let mut apply = |p: &mut [f32], g: &[f32]| {
            for (pi, gi) in p.iter_mut().zip(g) {
                *pi -= lr * gi;
            }
        };
        let g_emb = self.g_embedding.as_slice().to_vec();
        apply(self.embedding.as_mut_slice(), &g_emb);
        self.ln.for_each_group(&mut apply);
        self.attn.for_each_group(&mut apply);
        let g_head = self.g_head.as_slice().to_vec();
        apply(self.head.as_mut_slice(), &g_head);
        loss
    }

    /// Greedy next-token prediction after a prefix.
    pub fn predict_next(&mut self, prefix: &[usize]) -> usize {
        let logits = self.forward(prefix);
        let last = logits.rows() - 1;
        logits
            .row(last)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty vocab")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_input(seq: usize, dim: usize, seed: u64) -> Matrix {
        let mut m = Matrix::zeros(seq, dim);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        m.map_inplace(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / 2.0f32.powi(31)) - 0.5
        });
        m
    }

    /// Multi-head output gradients match finite differences (the same
    /// harness as the single-head block).
    #[test]
    fn multihead_gradients_check() {
        let mut attn = MultiHeadAttention::new(8, 2, false, 3);
        let x = seq_input(5, 8, 7);
        let y0 = attn.forward(&x);
        let mut w_loss = y0.clone();
        let mut k = 0.0f32;
        w_loss.map_inplace(|_| {
            k += 1.0;
            (k * 0.31).sin()
        });
        let loss = |y: &Matrix| -> f32 {
            y.as_slice()
                .iter()
                .zip(w_loss.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        attn.zero_grads();
        let _ = attn.forward(&x);
        let dx = attn.backward(&w_loss);
        let eps = 1e-2f32;
        for idx in [0usize, 17, 39] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let lp = loss(&attn.forward(&xp));
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lm = loss(&attn.forward(&xm));
            let fd = (lp - lm) / (2.0 * eps);
            let an = dx.as_slice()[idx];
            assert!(
                (fd - an).abs() < 2e-2 * (1.0 + fd.abs()),
                "input grad {idx}: fd {fd} vs {an}"
            );
        }
    }

    /// Causality: position t's output must not depend on tokens after t.
    #[test]
    fn causal_mask_blocks_the_future() {
        let mut attn = MultiHeadAttention::new(8, 2, true, 11);
        let x = seq_input(6, 8, 13);
        let y = attn.forward(&x);
        let mut x2 = x.clone();
        // Perturb the LAST row only.
        for c in 0..8 {
            x2.set(5, c, x2.get(5, c) + 1.0);
        }
        let y2 = attn.forward(&x2);
        for r in 0..5 {
            for c in 0..8 {
                assert!(
                    (y.get(r, c) - y2.get(r, c)).abs() < 1e-6,
                    "position {r} saw the future"
                );
            }
        }
        // The last row must change (it attends to itself).
        let moved: f32 = (0..8).map(|c| (y.get(5, c) - y2.get(5, c)).abs()).sum();
        assert!(moved > 1e-4);
    }

    /// Non-causal attention differs from causal on the same input.
    #[test]
    fn causal_flag_matters() {
        let x = seq_input(4, 8, 17);
        let mut causal = MultiHeadAttention::new(8, 2, true, 19);
        let mut full = MultiHeadAttention::new(8, 2, false, 19);
        let yc = causal.forward(&x);
        let yf = full.forward(&x);
        let diff: f32 = yc
            .as_slice()
            .iter()
            .zip(yf.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3);
    }

    /// The LM learns a deterministic cyclic grammar: token t+1 = (t + 3) mod 7.
    #[test]
    fn lm_learns_a_cyclic_grammar() {
        let vocab = 7usize;
        let stride = 3usize;
        let mut lm = TinyLm::new(vocab, 16, 2, 2026);
        let make_seq = |start: usize| -> Vec<usize> {
            (0..12).map(|i| (start + i * stride) % vocab).collect()
        };
        let mut loss = f32::NAN;
        for epoch in 0..400 {
            for start in 0..vocab {
                loss = lm.train_step(&make_seq(start + epoch % 2), 0.01);
            }
        }
        assert!(loss < 0.2, "LM failed to learn the grammar: loss {loss}");
        // Greedy generation follows the rule from any prefix.
        for start in 0..vocab {
            let prefix = make_seq(start)[..4].to_vec();
            let next = lm.predict_next(&prefix);
            let want = (prefix[3] + stride) % vocab;
            assert_eq!(next, want, "prefix {prefix:?}");
        }
    }

    #[test]
    #[should_panic(expected = "heads must divide dim")]
    fn bad_head_count_rejected() {
        let _ = MultiHeadAttention::new(8, 3, true, 0);
    }
}
