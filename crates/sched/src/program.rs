//! Allocation programs (paper Section II-B).

use serde::Serialize;

/// An OLCF allocation program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum Program {
    /// Innovative and Novel Computational Impact on Theory and Experiment:
    /// ≈60% of allocable hours, rigorous computational-readiness review.
    Incite,
    /// ASCR Leadership Computing Challenge: ≈20%.
    Alcc,
    /// Director's Discretionary: ≈20% (including ECP and much of COVID-19).
    DirectorsDiscretionary,
    /// Exascale Computing Project teams (allocated out of DD, up to half of
    /// it in the studied years).
    Ecp,
    /// COVID-19 HPC Consortium projects that were not DD projects.
    CovidConsortium,
    /// ACM Gordon Bell finalist runs (tracked separately in the paper).
    GordonBell,
}

impl Program {
    /// The three primary allocation programs.
    pub const PRIMARY: [Program; 3] = [
        Program::Incite,
        Program::Alcc,
        Program::DirectorsDiscretionary,
    ];

    /// All program categories used in the study.
    pub const ALL: [Program; 6] = [
        Program::Incite,
        Program::Alcc,
        Program::DirectorsDiscretionary,
        Program::Ecp,
        Program::CovidConsortium,
        Program::GordonBell,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Program::Incite => "INCITE",
            Program::Alcc => "ALCC",
            Program::DirectorsDiscretionary => "DD",
            Program::Ecp => "ECP",
            Program::CovidConsortium => "COVID",
            Program::GordonBell => "Gordon Bell",
        }
    }

    /// Target share of allocable hours for the primary programs (paper:
    /// "roughly 60% ... roughly 20% ... the remaining 20%"). ECP's share is
    /// carved out of DD ("up to half of the available time, i.e., 10% of
    /// the total"); COVID and Gordon Bell have no standing share.
    pub fn target_share(self) -> f64 {
        match self {
            Program::Incite => 0.60,
            Program::Alcc => 0.20,
            Program::DirectorsDiscretionary => 0.20,
            Program::Ecp => 0.10,
            Program::CovidConsortium | Program::GordonBell => 0.0,
        }
    }

    /// Whether proposals undergo a formal computational-readiness review.
    pub fn has_readiness_review(self) -> bool {
        matches!(self, Program::Incite)
    }
}

/// A node-hour allocation to a project for one program year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Allocation {
    /// The awarding program.
    pub program: Program,
    /// Allocation (calendar) year, e.g. 2019.
    pub year: u16,
    /// Node-hours granted at the onset of the project period (the paper's
    /// "allocation hours" metric).
    pub node_hours: f64,
}

impl Allocation {
    /// Create an allocation.
    ///
    /// # Panics
    /// Panics on non-positive node-hours or a year outside Summit's
    /// production life (2018–2025).
    pub fn new(program: Program, year: u16, node_hours: f64) -> Self {
        assert!(node_hours > 0.0, "allocations must be positive");
        assert!(
            (2018..=2025).contains(&year),
            "year outside Summit production"
        );
        Allocation {
            program,
            year,
            node_hours,
        }
    }
}

/// Split one year of allocable node-hours across the primary programs by
/// their target shares. Returns `(program, node_hours)` triples.
pub fn split_allocable_hours(total_node_hours: f64) -> Vec<(Program, f64)> {
    assert!(total_node_hours > 0.0, "total hours must be positive");
    Program::PRIMARY
        .iter()
        .map(|&p| (p, p.target_share() * total_node_hours))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_shares_sum_to_one() {
        let sum: f64 = Program::PRIMARY.iter().map(|p| p.target_share()).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecp_is_half_of_dd() {
        assert!(
            (Program::Ecp.target_share() - Program::DirectorsDiscretionary.target_share() / 2.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn only_incite_has_readiness_review() {
        for p in Program::ALL {
            assert_eq!(p.has_readiness_review(), p == Program::Incite);
        }
    }

    #[test]
    fn split_respects_shares() {
        let split = split_allocable_hours(1_000_000.0);
        assert_eq!(split.len(), 3);
        let incite = split.iter().find(|(p, _)| *p == Program::Incite).unwrap();
        assert!((incite.1 - 600_000.0).abs() < 1e-6);
        let total: f64 = split.iter().map(|(_, h)| h).sum();
        assert!((total - 1_000_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "year outside Summit production")]
    fn prehistoric_allocation_rejected() {
        let _ = Allocation::new(Program::Incite, 2012, 1000.0);
    }
}
