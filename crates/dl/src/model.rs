//! Multi-layer perceptrons with explicit backprop.

use crate::inference::{dense_forward_into, ServableModel};
use summit_tensor::{ops, Initializer, Matrix, Precision};

/// A fully-connected layer `in_dim → out_dim` with its gradient buffers.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Matrix,
    b: Vec<f32>,
    gw: Matrix,
    gb: Vec<f32>,
    /// Input cached by the last forward pass, consumed by backward.
    input: Option<Matrix>,
    /// GEMM storage precision for this layer's three products (f32
    /// accumulation either way — the mixed-precision lever from the
    /// paper's rate assumptions).
    precision: Precision,
}

impl Linear {
    /// Create with He initialization for weights, zero biases, f32 GEMMs.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        Linear {
            w: Initializer::HeNormal.init(in_dim, out_dim, seed),
            b: vec![0.0; out_dim],
            gw: Matrix::zeros(in_dim, out_dim),
            gb: vec![0.0; out_dim],
            input: None,
            precision: Precision::F32,
        }
    }

    /// Forward: `y = x·W + b`, caching `x` for backward. Runs the same
    /// shared routine the forward-only serving path uses
    /// ([`crate::inference::ServableModel`]), so served activations are
    /// bitwise the trained ones.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(x.rows(), self.w.cols());
        dense_forward_into(x, &self.w, &self.b, self.precision, &mut y);
        self.input = Some(x.clone());
        y
    }

    /// Backward: accumulate `gW += xᵀ·dy`, `gb += Σrows dy`; return
    /// `dx = dy·Wᵀ`.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.input.as_ref().expect("backward called before forward");
        let mut gw_step = Matrix::zeros(x.cols(), dy.cols());
        x.matmul_at_b_into_prec(dy, &mut gw_step, self.precision);
        self.gw.add_assign(&gw_step);
        for (g, s) in self.gb.iter_mut().zip(ops::column_sums(dy)) {
            *g += s;
        }
        let mut dx = Matrix::zeros(dy.rows(), self.w.rows());
        dy.matmul_a_bt_into_prec(&self.w, &mut dx, self.precision);
        dx
    }

    fn zero_grads(&mut self) {
        self.gw.map_inplace(|_| 0.0);
        self.gb.iter_mut().for_each(|g| *g = 0.0);
    }

    fn param_count(&self) -> usize {
        self.w.as_slice().len() + self.b.len()
    }
}

/// Architecture description of an MLP classifier/regressor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MlpSpec {
    /// Input feature count.
    pub inputs: usize,
    /// Hidden layer widths (ReLU between all layers).
    pub hidden: Vec<usize>,
    /// Output dimension (class count for classification).
    pub outputs: usize,
}

impl MlpSpec {
    /// Describe an MLP.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(inputs: usize, hidden: &[usize], outputs: usize) -> Self {
        assert!(inputs > 0 && outputs > 0, "dimensions must be positive");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        MlpSpec {
            inputs,
            hidden: hidden.to_vec(),
            outputs,
        }
    }

    /// Materialize the model with deterministic weights.
    pub fn build(&self, seed: u64) -> Mlp {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.inputs);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.outputs);
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, d)| Linear::new(d[0], d[1], seed.wrapping_add(i as u64 * 7919)))
            .collect();
        Mlp {
            layers,
            relu_outputs: Vec::new(),
        }
    }
}

/// An MLP with ReLU activations between layers and linear (logit) output.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    /// ReLU outputs cached by forward for backward masking.
    relu_outputs: Vec<Matrix>,
}

impl Mlp {
    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Set the GEMM storage precision of every layer (forward and both
    /// backward products). `Precision::Mixed` stores the packed operand in
    /// bf16 and accumulates in f32 — training throughput goes up, weights
    /// and gradients stay f32 end to end.
    pub fn set_precision(&mut self, p: Precision) {
        for layer in &mut self.layers {
            layer.precision = p;
        }
    }

    /// The GEMM precision of the first layer (all layers agree after
    /// [`Mlp::set_precision`]).
    pub fn precision(&self) -> Precision {
        self.layers.first().map_or(Precision::F32, |l| l.precision)
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Linear::param_count).sum()
    }

    /// Forward pass: returns logits for a `batch × inputs` matrix.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.relu_outputs.clear();
        let depth = self.layers.len();
        let mut h = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            h = layer.forward(&h);
            if i + 1 < depth {
                ops::relu_inplace(&mut h);
                self.relu_outputs.push(h.clone());
            }
        }
        h
    }

    /// Backward pass from the loss gradient w.r.t. the logits. Gradients
    /// accumulate (call [`Mlp::zero_grads`] between optimizer steps).
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dlogits: &Matrix) {
        let _ = self.backward_input(dlogits);
    }

    /// Backward pass that also returns the gradient with respect to the
    /// *input* batch — needed when the network's input is itself a
    /// differentiable function of other quantities (e.g. machine-learned
    /// force fields, where forces are −∂E/∂descriptors·∂descriptors/∂r).
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward_input(&mut self, dlogits: &Matrix) -> Matrix {
        self.backward_with(dlogits, |_, _, _| {})
    }

    /// Backward pass with a per-layer gradient-readiness callback — the
    /// hook the overlap scheme hangs on. Layers complete in reverse order
    /// (`depth-1` down to `0`); immediately after layer `i`'s `gW`/`gb` are
    /// final, `on_layer_ready(i, &gw, &gb)` runs, while the backward
    /// computation for earlier layers is still pending. A data-parallel
    /// trainer uses this to launch a fusion bucket's allreduce as soon as
    /// the last layer contributing to it has produced its gradient.
    ///
    /// Since the flat gradient layout ([`Mlp::flat_grads`]) is layer-major,
    /// reverse-order completion means the ready region of the flat vector
    /// is a suffix that grows toward offset zero.
    ///
    /// # Panics
    /// Panics if called before `forward`.
    pub fn backward_with(
        &mut self,
        dlogits: &Matrix,
        mut on_layer_ready: impl FnMut(usize, &Matrix, &[f32]),
    ) -> Matrix {
        let mut grad = dlogits.clone();
        for i in (0..self.layers.len()).rev() {
            grad = self.layers[i].backward(&grad);
            on_layer_ready(i, &self.layers[i].gw, &self.layers[i].gb);
            if i > 0 {
                ops::relu_backward(&self.relu_outputs[i - 1], &mut grad);
            }
        }
        grad
    }

    /// Per-layer scalar parameter counts, in flat-gradient order (layer
    /// `i`'s `[weights, bias]` region is `sizes[i]` elements). The bucket
    /// schedule of the overlap scheme is built from these.
    pub fn layer_param_sizes(&self) -> Vec<usize> {
        self.layers.iter().map(Linear::param_count).collect()
    }

    /// Zero all gradient buffers.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Scale all gradients (for micro-batch averaging).
    pub fn scale_grads(&mut self, s: f32) {
        for layer in &mut self.layers {
            layer.gw.map_inplace(|g| g * s);
            layer.gb.iter_mut().for_each(|g| *g *= s);
        }
    }

    /// Copy all gradients into one flat vector (layer-major, weights then
    /// bias per layer) — the buffer a data-parallel trainer allreduces.
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        self.flat_grads_into(&mut out);
        out
    }

    /// [`Mlp::flat_grads`] into a caller-owned buffer: `out` is cleared and
    /// refilled, reusing its capacity. A trainer that keeps one fusion
    /// buffer per rank pays the allocation once, not every step.
    pub fn flat_grads_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.gw.as_slice());
            out.extend_from_slice(&layer.gb);
        }
    }

    /// Overwrite all gradients from a flat vector (inverse of
    /// [`Mlp::flat_grads`]).
    ///
    /// # Panics
    /// Panics if `flat.len() != param_count()`.
    pub fn set_flat_grads(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat gradient length mismatch"
        );
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.gw.as_slice().len();
            layer
                .gw
                .as_mut_slice()
                .copy_from_slice(&flat[off..off + wlen]);
            off += wlen;
            let blen = layer.gb.len();
            layer.gb.copy_from_slice(&flat[off..off + blen]);
            off += blen;
        }
    }

    /// Copy all parameters into one flat vector.
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            out.extend_from_slice(layer.w.as_slice());
            out.extend_from_slice(&layer.b);
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `flat.len() != param_count()`.
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(
            flat.len(),
            self.param_count(),
            "flat parameter length mismatch"
        );
        let mut off = 0;
        for layer in &mut self.layers {
            let wlen = layer.w.as_slice().len();
            layer
                .w
                .as_mut_slice()
                .copy_from_slice(&flat[off..off + wlen]);
            off += wlen;
            let blen = layer.b.len();
            layer.b.copy_from_slice(&flat[off..off + blen]);
            off += blen;
        }
    }

    /// Snapshot the forward-only serving state of this model: weights,
    /// biases, and the precision knob — none of the gradient buffers or
    /// cached activations. The snapshot is what a serving replica holds
    /// and what a weight broadcast ships.
    pub fn servable(&self) -> ServableModel {
        ServableModel::from_layers(
            self.layers
                .iter()
                .map(|l| (l.w.clone(), l.b.clone()))
                .collect(),
            self.precision(),
        )
    }

    /// Visit each parameter group (per-layer weights and biases separately,
    /// as LARS/LAMB prescribe) with `(group_id, params, grads)`.
    pub fn for_each_group(&mut self, mut f: impl FnMut(usize, &mut [f32], &[f32])) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            f(2 * i, layer.w.as_mut_slice(), layer.gw.as_slice());
            f(2 * i + 1, &mut layer.b, &layer.gb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_tensor::ops::softmax_cross_entropy;

    #[test]
    fn param_count_matches_architecture() {
        let m = MlpSpec::new(4, &[8, 8], 3).build(0);
        // 4*8+8 + 8*8+8 + 8*3+3 = 40 + 72 + 27 = 139
        assert_eq!(m.param_count(), 139);
        assert_eq!(m.depth(), 3);
    }

    #[test]
    fn flat_roundtrip() {
        let mut m = MlpSpec::new(3, &[5], 2).build(1);
        let p = m.flat_params();
        let mut p2 = p.clone();
        p2[0] += 1.0;
        m.set_flat_params(&p2);
        assert_eq!(m.flat_params(), p2);
        m.set_flat_params(&p);
        assert_eq!(m.flat_params(), p);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut m = MlpSpec::new(3, &[4], 2).build(3);
        let x = Matrix::from_rows(&[&[0.5, -0.3, 0.8], &[-0.1, 0.9, 0.2]]);
        let labels = [1usize, 0];

        let logits = m.forward(&x);
        let (_, dlogits) = softmax_cross_entropy(logits, &labels);
        m.zero_grads();
        m.backward(&dlogits);
        let analytic = m.flat_grads();

        let base = m.flat_params();
        let eps = 1e-3f32;
        for idx in (0..base.len()).step_by(5) {
            let mut plus = base.clone();
            plus[idx] += eps;
            m.set_flat_params(&plus);
            let (lp, _) = softmax_cross_entropy(m.forward(&x), &labels);
            let mut minus = base.clone();
            minus[idx] -= eps;
            m.set_flat_params(&minus);
            let (lm, _) = softmax_cross_entropy(m.forward(&x), &labels);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - analytic[idx]).abs() < 2e-2,
                "param {idx}: fd {fd} vs analytic {}",
                analytic[idx]
            );
        }
    }

    #[test]
    fn backward_accumulates_until_zeroed() {
        let mut m = MlpSpec::new(2, &[], 2).build(5);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        let logits = m.forward(&x);
        let (_, d) = softmax_cross_entropy(logits, &[0]);
        m.zero_grads();
        m.backward(&d);
        let once = m.flat_grads();
        // Second backward without zeroing doubles the gradients.
        let logits = m.forward(&x);
        let (_, d) = softmax_cross_entropy(logits, &[0]);
        m.backward(&d);
        let twice = m.flat_grads();
        for (a, b) in once.iter().zip(&twice) {
            assert!((2.0 * a - b).abs() < 1e-5);
        }
        m.zero_grads();
        assert!(m.flat_grads().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn mixed_precision_training_tracks_f32() {
        let mut full = MlpSpec::new(6, &[16], 3).build(11);
        let mut mixed = full.clone();
        mixed.set_precision(Precision::Mixed);
        assert_eq!(mixed.precision(), Precision::Mixed);
        assert_eq!(full.precision(), Precision::F32);
        let x = Matrix::from_vec(4, 6, (0..24).map(|i| (i as f32 * 0.37).sin()).collect());
        let yf = full.forward(&x);
        let ym = mixed.forward(&x);
        // bf16 storage keeps 8 mantissa bits on one operand per product:
        // activations agree to ~1% through one hidden layer.
        for (a, b) in yf.as_slice().iter().zip(ym.as_slice()) {
            assert!((a - b).abs() <= a.abs() * 0.02 + 0.02, "{a} vs {b}");
        }
        let d = Matrix::from_vec(4, 3, vec![0.1; 12]);
        mixed.zero_grads();
        mixed.backward(&d);
        let gm = mixed.flat_grads();
        full.zero_grads();
        full.backward(&d);
        let gf = full.flat_grads();
        assert!(gm.iter().all(|g| g.is_finite()));
        // Gradients track the f32 path within the same storage tolerance.
        for (a, b) in gf.iter().zip(&gm) {
            assert!((a - b).abs() <= a.abs() * 0.05 + 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn deterministic_build() {
        let a = MlpSpec::new(4, &[8], 2).build(9);
        let b = MlpSpec::new(4, &[8], 2).build(9);
        assert_eq!(a.flat_params(), b.flat_params());
    }

    #[test]
    fn group_visit_covers_all_params() {
        let mut m = MlpSpec::new(3, &[4, 5], 2).build(2);
        let mut seen = 0usize;
        let mut ids = Vec::new();
        m.for_each_group(|id, p, g| {
            assert_eq!(p.len(), g.len());
            seen += p.len();
            ids.push(id);
        });
        assert_eq!(seen, m.param_count());
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }
}
