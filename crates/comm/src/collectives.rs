//! Executable collective algorithms over a [`Rank`].
//!
//! Every algorithm here is the real chunked message pattern an MPI/NCCL
//! implementation uses, not a shortcut through shared memory:
//!
//! * [`ring_allreduce`] — reduce-scatter ring followed by allgather ring;
//!   `2(p-1)` steps, `2(p-1)/p · n` elements moved per rank. This is the
//!   algorithm whose bandwidth term the paper halves to get 12.5 GB/s.
//! * [`rabenseifner_allreduce`] — recursive-halving reduce-scatter plus
//!   recursive-doubling allgather (for power-of-two worlds).
//! * [`recursive_doubling_allreduce`] — `log2 p` exchanges of the full
//!   buffer; latency-optimal for small messages.
//! * [`binomial_broadcast`] / [`binomial_reduce`] — tree collectives.
//! * [`ring_allgather`], [`reduce_scatter`] — building blocks, exposed for
//!   tests and for the hierarchical trainer.
//!
//! All functions must be called by **every** rank of the world collectively,
//! with equal buffer lengths, like their MPI counterparts.

use std::time::{Duration, Instant};

use crate::faults::CommError;
use crate::world::Rank;

/// Element-wise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Fold `src` into `dst` element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fold(self, dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += *s;
                }
            }
            ReduceOp::Max => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.max(*s);
                }
            }
            ReduceOp::Min => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.min(*s);
                }
            }
        }
    }

    /// Fold `local` into `payload` with the same operand order as
    /// [`ReduceOp::fold`] (`local ⊕ incoming`), so a partial carried in the
    /// circulating message is bit-identical to one accumulated in place.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fold_into_payload(self, payload: &mut [f32], local: &[f32]) {
        assert_eq!(payload.len(), local.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => {
                // `local + incoming`, matching `fold`'s operand order
                // (bit-identical even for signed zeros).
                #[allow(clippy::assign_op_pattern)]
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = *l + *pd;
                }
            }
            ReduceOp::Max => {
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = l.max(*pd);
                }
            }
            ReduceOp::Min => {
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = l.min(*pd);
                }
            }
        }
    }
}

/// Chunk boundaries that partition `n` elements into `p` nearly equal chunks
/// (first `n % p` chunks get one extra element).
///
/// Shared with the nonblocking layer: [`crate::nonblocking`] intersects this
/// same global partition with per-bucket windows so overlapped per-bucket
/// allreduces keep the exact fold order of the serial path.
pub(crate) fn chunk_bounds(n: usize, p: usize, chunk: usize) -> (usize, usize) {
    let base = n / p;
    let extra = n % p;
    let start = chunk * base + chunk.min(extra);
    let len = base + usize::from(chunk < extra);
    (start, start + len)
}

/// Borrow the (disjoint) send and receive chunk windows of `buf` at once.
///
/// Relies on `chunk_bounds` producing non-overlapping intervals for
/// distinct chunk ids; empty chunks all sit at the same boundary point, so
/// one interval always ends before the other starts.
pub(crate) fn send_recv_windows(
    buf: &mut [f32],
    (ss, se): (usize, usize),
    (rs, re): (usize, usize),
) -> (&[f32], &mut [f32]) {
    if se <= rs {
        let (lo, hi) = buf.split_at_mut(rs);
        (&lo[ss..se], &mut hi[..re - rs])
    } else {
        assert!(re <= ss, "send and receive windows overlap");
        let (lo, hi) = buf.split_at_mut(ss);
        (&hi[..se - ss], &mut lo[rs..re])
    }
}

/// What a ring phase does with each received segment.
#[derive(Clone, Copy)]
enum PassKind {
    /// Reduce-scatter: combine the local window into the circulating
    /// partial; only the final hop lands in `buf`.
    Reduce(ReduceOp),
    /// Allgather: every received segment is final data, copied into `buf`.
    Gather,
}

/// One ring phase (`p - 1` steps of "send a chunk right, combine a chunk
/// from the left"), on the pooled zero-copy primitives.
///
/// The first chunk sent is `(me + offset) mod p`; each chunk's transfer is
/// split into segments of at most `bucket` elements, each its own message.
/// Empty chunks send nothing.
///
/// The chunk received at step `s` is exactly the chunk the schedule sends
/// at step `s + 1`, so intermediate steps never copy into a fresh message:
/// the received payload is combined (reduce) or read (gather) and then
/// **forwarded as-is** to the right neighbour. Only step 0 copies out of
/// `buf` (via the pool) and only the final hop releases the payload back
/// into a pool, so each rank's per-phase allocator traffic is at most one
/// pooled acquire and one release regardless of `p`.
///
/// `prime = false` skips the step-0 send: the messages this phase consumes
/// at step 0 were already produced by a `handoff` from a previous phase.
/// `handoff = Some(next)` makes the final hop forward its finished chunk as
/// step 0 of collective `next` (after landing it in `buf`) instead of
/// releasing it — fusing this phase's tail into the next phase's head.
#[allow(clippy::too_many_arguments)] // internal engine; callers are the three ring collectives
fn ring_pass(
    rank: &Rank,
    buf: &mut [f32],
    collective: u64,
    bucket: usize,
    offset: usize,
    kind: PassKind,
    prime: bool,
    handoff: Option<u64>,
) {
    let p = rank.size();
    let me = rank.id();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let n = buf.len();
    if prime {
        // Step 0 primes the ring with this rank's own chunk.
        let first = chunk_bounds(n, p, (me + offset) % p);
        for (g, seg) in buf[first.0..first.1].chunks(bucket).enumerate() {
            rank.send_from(right, tag_seg(collective, 0, g), seg);
        }
    }
    for s in 0..p - 1 {
        let recv_chunk = (me + offset + p - s - 1) % p;
        let (rs, re) = chunk_bounds(n, p, recv_chunk);
        let last = s == p - 2;
        match kind {
            PassKind::Reduce(op) if !last => {
                // Fold this rank's contribution into the circulating
                // partial and pass it on; `buf` is untouched. Operand
                // order (local ⊕ incoming) matches the final-hop fold so
                // results are bit-identical to the copy-per-step ring.
                for (g, local) in buf[rs..re].chunks(bucket).enumerate() {
                    let mut payload = rank.recv(left, tag_seg(collective, s, g));
                    op.fold_into_payload(&mut payload, local);
                    rank.send(right, tag_seg(collective, s + 1, g), payload);
                }
            }
            PassKind::Reduce(op) => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    match handoff {
                        Some(next) => {
                            // Finish the chunk in the payload itself, land
                            // it in `buf`, and forward it as the priming
                            // message of the next phase — no pooled copy.
                            let mut payload = rank.recv(left, tag_seg(collective, s, g));
                            op.fold_into_payload(&mut payload, window);
                            window.copy_from_slice(&payload);
                            rank.send(right, tag_seg(next, 0, g), payload);
                        }
                        None => {
                            rank.recv_with(left, tag_seg(collective, s, g), |payload| {
                                op.fold(window, payload);
                            });
                        }
                    }
                }
            }
            PassKind::Gather if !last => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    let payload = rank.recv(left, tag_seg(collective, s, g));
                    window.copy_from_slice(&payload);
                    rank.send(right, tag_seg(collective, s + 1, g), payload);
                }
            }
            PassKind::Gather => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    rank.recv_with(left, tag_seg(collective, s, g), |payload| {
                        window.copy_from_slice(payload);
                    });
                }
            }
        }
    }
}

/// Fallible twin of [`ring_pass`] for chaos runs: every receive is a
/// checked, deadline-bounded [`Rank::recv_checked`] and each step polls for
/// a scheduled rank kill, so a fault surfaces as [`CommError`] instead of
/// hanging the ring. The message schedule, fold order, and operand order
/// are identical to [`ring_pass`], so a fault-free execution of this path
/// is bit-identical to the infallible one — the property trainer recovery
/// relies on.
///
/// Kept separate from [`ring_pass`] so the steady-state allocation-free
/// hot path (pinned by the counting-allocator test) carries no fault
/// plumbing at all.
#[allow(clippy::too_many_arguments)] // mirrors the internal engine signature
fn try_ring_pass(
    rank: &Rank,
    buf: &mut [f32],
    collective: u64,
    bucket: usize,
    offset: usize,
    kind: PassKind,
    prime: bool,
    handoff: Option<u64>,
    deadline: Option<Instant>,
) -> Result<(), CommError> {
    let p = rank.size();
    let me = rank.id();
    let right = (me + 1) % p;
    let left = (me + p - 1) % p;
    let n = buf.len();
    if prime {
        rank.poll_fault_kill()?;
        let first = chunk_bounds(n, p, (me + offset) % p);
        for (g, seg) in buf[first.0..first.1].chunks(bucket).enumerate() {
            rank.send_from(right, tag_seg(collective, 0, g), seg);
        }
    }
    for s in 0..p - 1 {
        rank.poll_fault_kill()?;
        let recv_chunk = (me + offset + p - s - 1) % p;
        let (rs, re) = chunk_bounds(n, p, recv_chunk);
        let last = s == p - 2;
        match kind {
            PassKind::Reduce(op) if !last => {
                for (g, local) in buf[rs..re].chunks(bucket).enumerate() {
                    let mut payload =
                        rank.recv_checked(left, tag_seg(collective, s, g), deadline)?;
                    op.fold_into_payload(&mut payload, local);
                    rank.send(right, tag_seg(collective, s + 1, g), payload);
                }
            }
            PassKind::Reduce(op) => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    let mut payload =
                        rank.recv_checked(left, tag_seg(collective, s, g), deadline)?;
                    match handoff {
                        Some(next) => {
                            op.fold_into_payload(&mut payload, window);
                            window.copy_from_slice(&payload);
                            rank.send(right, tag_seg(next, 0, g), payload);
                        }
                        None => {
                            op.fold(window, &payload);
                            rank.release_payload(payload);
                        }
                    }
                }
            }
            PassKind::Gather if !last => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    let payload = rank.recv_checked(left, tag_seg(collective, s, g), deadline)?;
                    window.copy_from_slice(&payload);
                    rank.send(right, tag_seg(collective, s + 1, g), payload);
                }
            }
            PassKind::Gather => {
                for (g, window) in buf[rs..re].chunks_mut(bucket).enumerate() {
                    let payload = rank.recv_checked(left, tag_seg(collective, s, g), deadline)?;
                    window.copy_from_slice(&payload);
                    rank.release_payload(payload);
                }
            }
        }
    }
    Ok(())
}

/// Ring allreduce: reduce-scatter phase then allgather phase.
///
/// After return, every rank's `buf` holds the element-wise reduction of all
/// ranks' input buffers. Runs on the pooled communicator primitives: in
/// steady state (pools warm) the call performs no heap allocation.
///
/// # Panics
/// Panics if buffer lengths differ across ranks (detected as message-length
/// mismatch).
pub fn ring_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let bucket = buf.len().max(1);
    ring_allreduce_bucketed(rank, buf, op, bucket);
}

/// [`ring_allreduce`] with each chunk transfer split into messages of at
/// most `bucket_elems` elements (the gradient-fusion bucket).
///
/// Bucketing only changes message segmentation, never the chunk partition
/// or the per-element fold order, so the result is bit-identical to the
/// flat [`ring_allreduce`] for every bucket size; `bucket_elems >= n`
/// degenerates to exactly the flat path.
///
/// # Panics
/// Panics if `bucket_elems == 0` or on the conditions of
/// [`ring_allreduce`].
pub fn ring_allreduce_bucketed(rank: &Rank, buf: &mut [f32], op: ReduceOp, bucket_elems: usize) {
    assert!(bucket_elems > 0, "bucket must hold at least one element");
    if rank.size() == 1 {
        return;
    }
    // Phase 1: reduce-scatter. In step s, send chunk (me - s) and reduce
    // into chunk (me - s - 1), both mod p. The final hop hands its finished
    // chunk straight to phase 2 as that phase's priming message.
    ring_pass(
        rank,
        buf,
        0,
        bucket_elems,
        0,
        PassKind::Reduce(op),
        true,
        Some(1),
    );
    // Phase 2: allgather. In step s, send chunk (me + 1 - s) mod p; step 0
    // was already sent by the reduce-scatter handoff.
    ring_pass(rank, buf, 1, bucket_elems, 1, PassKind::Gather, false, None);
}

/// Timeout-aware [`ring_allreduce`]: completes with the exact bitwise
/// result of the infallible path, or fails loudly with a [`CommError`]
/// within roughly `timeout` when the fault plane drops, corrupts, or kills
/// something. On error, `buf` is left in an unspecified partially reduced
/// state — callers are expected to roll back to a checkpoint.
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`ring_allreduce`].
pub fn try_ring_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(), CommError> {
    let bucket = buf.len().max(1);
    try_ring_allreduce_bucketed(rank, buf, op, bucket, timeout)
}

/// Timeout-aware [`ring_allreduce_bucketed`]; see [`try_ring_allreduce`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`ring_allreduce_bucketed`].
pub fn try_ring_allreduce_bucketed(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    bucket_elems: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    assert!(bucket_elems > 0, "bucket must hold at least one element");
    rank.poll_fault_kill()?;
    if rank.size() == 1 {
        return Ok(());
    }
    let deadline = Some(Instant::now() + timeout);
    try_ring_pass(
        rank,
        buf,
        0,
        bucket_elems,
        0,
        PassKind::Reduce(op),
        true,
        Some(1),
        deadline,
    )?;
    try_ring_pass(
        rank,
        buf,
        1,
        bucket_elems,
        1,
        PassKind::Gather,
        false,
        None,
        deadline,
    )
}

/// Reduce-scatter over a ring: afterwards, rank i holds the fully reduced
/// chunk i (the contents of other chunks are unspecified — partials ride in
/// the circulating messages, not in `buf`). Returns the (start, end)
/// element range this rank owns.
pub fn reduce_scatter(rank: &Rank, buf: &mut [f32], op: ReduceOp) -> (usize, usize) {
    let p = rank.size();
    let me = rank.id();
    let n = buf.len();
    if p == 1 {
        return (0, n);
    }
    ring_pass(rank, buf, 2, n.max(1), 0, PassKind::Reduce(op), true, None);
    chunk_bounds(n, p, (me + 1) % p)
}

/// Ring allgather: each rank contributes its own chunk of `buf` (as defined
/// by `chunk_bounds`) and receives everyone else's.
pub fn ring_allgather(rank: &Rank, buf: &mut [f32]) {
    if rank.size() == 1 {
        return;
    }
    let bucket = buf.len().max(1);
    ring_pass(rank, buf, 3, bucket, 0, PassKind::Gather, true, None);
}

/// Recursive-doubling allreduce: `log2 p` full-buffer exchanges.
///
/// # Panics
/// Panics unless the world size is a power of two.
pub fn recursive_doubling_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let p = rank.size();
    assert!(
        p.is_power_of_two(),
        "recursive doubling needs power-of-two world"
    );
    let me = rank.id();
    let mut dist = 1;
    let mut step = 0;
    while dist < p {
        let peer = me ^ dist;
        let t = tag(4, step);
        rank.send_from(peer, t, buf);
        rank.recv_with(peer, t, |got| op.fold(buf, got));
        dist <<= 1;
        step += 1;
    }
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter followed by
/// recursive-doubling allgather. Bandwidth-optimal like the ring but with
/// `2 log2 p` latency terms instead of `2(p-1)`.
///
/// # Panics
/// Panics unless the world size is a power of two and the buffer length is
/// divisible by the world size.
pub fn rabenseifner_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let p = rank.size();
    assert!(p.is_power_of_two(), "rabenseifner needs power-of-two world");
    let n = buf.len();
    assert!(
        n.is_multiple_of(p),
        "buffer length must be divisible by world size"
    );
    if p == 1 {
        return;
    }
    let me = rank.id();

    // Recursive halving reduce-scatter: the active window [lo, hi) of the
    // buffer halves each step.
    let mut lo = 0usize;
    let mut hi = n;
    let mut dist = p / 2;
    let mut step = 0;
    while dist >= 1 {
        let peer = me ^ dist;
        let mid = lo + (hi - lo) / 2;
        let t = tag(5, step);
        // The rank whose id bit is 0 keeps the lower half.
        let (first, second) = buf[lo..hi].split_at_mut(mid - lo);
        let (keep, send) = if me & dist == 0 {
            (first, &*second)
        } else {
            (second, &*first)
        };
        rank.send_from(peer, t, send);
        rank.recv_with(peer, t, |got| op.fold(keep, got));
        if me & dist == 0 {
            hi = mid;
        } else {
            lo = mid;
        }
        dist /= 2;
        step += 1;
    }

    // Recursive doubling allgather: window doubles back to the full buffer.
    let mut dist = 1;
    while dist < p {
        let peer = me ^ dist;
        let window = hi - lo;
        // Peer's window is the mirror of ours at this level.
        let (peer_lo, peer_hi) = if me & dist == 0 {
            (lo + window, hi + window)
        } else {
            (lo - window, hi - window)
        };
        let t = tag(6, step);
        let (src, dst) = send_recv_windows(buf, (lo, hi), (peer_lo, peer_hi));
        rank.send_from(peer, t, src);
        rank.recv_into(peer, t, dst);
        lo = lo.min(peer_lo);
        hi = hi.max(peer_hi);
        dist <<= 1;
        step += 1;
    }
    debug_assert_eq!((lo, hi), (0, n));
}

/// Binomial-tree broadcast from `root`.
///
/// Non-root ranks may pass an empty buffer; it is replaced by the received
/// data.
pub fn binomial_broadcast(rank: &Rank, buf: &mut Vec<f32>, root: usize) {
    let p = rank.size();
    if p == 1 {
        return;
    }
    let me = rank.id();
    // Re-map so the root is virtual rank 0; tree edges join vrank and
    // vrank ± mask. A rank receives at its lowest set bit, then forwards to
    // children at all smaller masks.
    let vrank = (me + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % p;
            // Reuse `buf`'s own storage and recycle the transport buffer
            // instead of replacing the allocation wholesale.
            rank.recv_with(parent, tag(7, mask.trailing_zeros() as usize), |payload| {
                buf.clear();
                buf.extend_from_slice(payload);
            });
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            let child = (vrank + mask + root) % p;
            rank.send_from(child, tag(7, mask.trailing_zeros() as usize), buf);
        }
        mask >>= 1;
    }
}

/// [`binomial_broadcast`] for pre-sized buffers: every rank passes a slice
/// of the same length and the root's contents are broadcast into it,
/// without touching any allocation.
///
/// # Panics
/// Panics if buffer lengths differ across ranks.
pub fn binomial_broadcast_into(rank: &Rank, buf: &mut [f32], root: usize) {
    let p = rank.size();
    if p == 1 {
        return;
    }
    let me = rank.id();
    let vrank = (me + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            let parent = (vrank - mask + root) % p;
            rank.recv_into(parent, tag(9, mask.trailing_zeros() as usize), buf);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        if vrank + mask < p {
            let child = (vrank + mask + root) % p;
            rank.send_from(child, tag(9, mask.trailing_zeros() as usize), buf);
        }
        mask >>= 1;
    }
}

/// Binomial-tree reduce to `root`: after return, `root`'s buffer holds the
/// reduction; other ranks' buffers hold intermediate partial sums.
pub fn binomial_reduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, root: usize) {
    let p = rank.size();
    if p == 1 {
        return;
    }
    let me = rank.id();
    let vrank = (me + p - root) % p;
    let mut mask = 1usize;
    while mask < p {
        if vrank & mask != 0 {
            // Send partial to parent and exit.
            let parent_v = vrank & !mask;
            let parent = (parent_v + root) % p;
            rank.send_from(parent, tag(8, mask.trailing_zeros() as usize), buf);
            return;
        }
        if vrank + mask < p {
            let child_v = vrank + mask;
            let child = (child_v + root) % p;
            rank.recv_with(child, tag(8, mask.trailing_zeros() as usize), |got| {
                op.fold(buf, got);
            });
        }
        mask <<= 1;
    }
}

/// Tree allreduce: binomial reduce to rank 0, then binomial broadcast.
pub fn tree_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    binomial_reduce(rank, buf, op, 0);
    binomial_broadcast_into(rank, buf, 0);
}

/// Collective tag namespace: `(collective id, step)` packed into a u64 so
/// different collectives and steps never collide.
fn tag(collective: u64, step: usize) -> u64 {
    tag_seg(collective, step, 0)
}

/// Tag for one segment of a bucketed chunk transfer: `(collective id,
/// step, segment)` packed so that the flat path (`segment == 0`) produces
/// the same tags as the historical unsegmented collectives.
fn tag_seg(collective: u64, step: usize, seg: usize) -> u64 {
    debug_assert!(step < 1 << 12, "ring step out of tag range");
    assert!(seg < 1 << 20, "segment index out of tag range");
    (collective << 32) | ((seg as u64) << 12) | step as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn input(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| (rank * n + i) as f32 * 0.5).collect()
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; n];
        for r in 0..p {
            for (a, b) in acc.iter_mut().zip(input(r, n)) {
                *a += b;
            }
        }
        acc
    }

    fn check_allreduce(f: impl Fn(&Rank, &mut [f32], ReduceOp) + Sync, p: usize, n: usize) {
        let out = World::run(p, |rank| {
            let mut buf = input(rank.id(), n);
            f(rank, &mut buf, ReduceOp::Sum);
            buf
        });
        let want = expected_sum(p, n);
        for (r, got) in out.iter().enumerate() {
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "rank {r} element {i}: got {g}, want {w}"
                );
            }
        }
    }

    #[test]
    fn ring_allreduce_small_worlds() {
        for p in 1..=8 {
            for n in [1usize, 2, 7, 16, 33] {
                check_allreduce(ring_allreduce, p, n);
            }
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for p in [1usize, 2, 4, 8] {
            check_allreduce(recursive_doubling_allreduce, p, 24);
        }
    }

    #[test]
    fn rabenseifner_power_of_two() {
        for p in [1usize, 2, 4, 8] {
            check_allreduce(rabenseifner_allreduce, p, 32);
        }
    }

    #[test]
    fn tree_allreduce_any_world() {
        for p in 1..=9 {
            check_allreduce(tree_allreduce, p, 13);
        }
    }

    #[test]
    fn max_and_min_ops() {
        let out = World::run(5, |rank| {
            let mut hi = vec![rank.id() as f32];
            ring_allreduce(rank, &mut hi, ReduceOp::Max);
            let mut lo = vec![rank.id() as f32];
            ring_allreduce(rank, &mut lo, ReduceOp::Min);
            (hi[0], lo[0])
        });
        assert!(out.iter().all(|&(hi, lo)| hi == 4.0 && lo == 0.0));
    }

    #[test]
    fn broadcast_from_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let out = World::run(p, |rank| {
                    let mut buf = if rank.id() == root {
                        vec![42.0, 7.0]
                    } else {
                        vec![]
                    };
                    binomial_broadcast(rank, &mut buf, root);
                    buf
                });
                for (r, v) in out.iter().enumerate() {
                    assert_eq!(v, &vec![42.0, 7.0], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    fn reduce_to_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let out = World::run(p, |rank| {
                    let mut buf = vec![1.0f32; 4];
                    binomial_reduce(rank, &mut buf, ReduceOp::Sum, root);
                    buf
                });
                assert_eq!(out[root], vec![p as f32; 4], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn reduce_scatter_owned_chunk_reduced() {
        let p = 4;
        let n = 16;
        let out = World::run(p, |rank| {
            let mut buf = input(rank.id(), n);
            let (s, e) = reduce_scatter(rank, &mut buf, ReduceOp::Sum);
            (s, e, buf[s..e].to_vec())
        });
        let want = expected_sum(p, n);
        let mut covered = vec![false; n];
        for (s, e, chunk) in out {
            for (i, v) in (s..e).zip(chunk) {
                assert!((v - want[i]).abs() < 1e-3);
                covered[i] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "chunks must partition the buffer"
        );
    }

    #[test]
    fn ring_allreduce_message_volume_matches_theory() {
        // Each rank sends 2(p-1)/p * n elements; total bytes = 4 * 2(p-1) * n.
        let (p, n) = (6usize, 36usize);
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![1.0f32; n];
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        assert_eq!(stats.bytes_sent, (4 * 2 * (p - 1) * n) as u64);
        assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
    }

    /// In every ring step the p ranks send p distinct chunks that partition
    /// the buffer, so total traffic is exactly 4 * 2(p-1) * n bytes even
    /// when p does not divide n — and bucketing must not change a byte.
    #[test]
    fn executed_ring_traffic_is_exact_for_uneven_chunks() {
        for p in [2usize, 3, 4, 8] {
            for n in [1usize, 5, 37, 96] {
                for bucket in [usize::MAX, 7, 1] {
                    let (_, stats) = World::run_with_stats(p, |rank| {
                        let mut buf = vec![1.0f32; n];
                        ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
                    });
                    assert_eq!(
                        stats.bytes_sent,
                        (4 * 2 * (p - 1) * n) as u64,
                        "p={p} n={n} bucket={bucket}"
                    );
                    if n >= p && bucket == usize::MAX {
                        // Flat path, all chunks non-empty: one message per
                        // rank per step.
                        assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn try_ring_allreduce_matches_flat_bitwise() {
        for p in [2usize, 3, 5] {
            let n = 23;
            let flat = World::run(p, |rank| {
                let mut buf = input(rank.id(), n);
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
                buf
            });
            let checked = World::run(p, |rank| {
                let mut buf = input(rank.id(), n);
                try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_secs(5))
                    .expect("fault-free run must succeed");
                buf
            });
            for (f, c) in flat.iter().zip(&checked) {
                for (x, y) in f.iter().zip(c) {
                    assert_eq!(x.to_bits(), y.to_bits(), "p={p}");
                }
            }
        }
    }

    #[test]
    fn try_ring_allreduce_fails_loudly_on_drop() {
        use crate::faults::{FaultPlan, TagClass};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 1, TagClass::Any, 0));
        let (out, _) = World::run_with_faults(3, plan, |rank| {
            let mut buf = vec![rank.id() as f32; 9];
            let res = try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_millis(200));
            // Every rank returns (success or error) within its deadline;
            // no rank hangs, so this barrier is reachable.
            rank.barrier();
            res.is_err()
        });
        assert!(
            out.iter().any(|&e| e),
            "at least one rank must observe the dropped message"
        );
    }

    #[test]
    fn try_ring_allreduce_surfaces_kill() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::empty().kill_rank(1, 0));
        let (out, _) = World::run_with_faults(2, plan, |rank| {
            let mut buf = vec![1.0f32; 4];
            let res = try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_millis(200));
            rank.barrier();
            res
        });
        assert_eq!(out[1], Err(CommError::RankKilled { rank: 1 }));
    }

    proptest::proptest! {
        /// Bucketing is pure message segmentation: for any world size,
        /// buffer, and bucket size (one element up to larger than the whole
        /// buffer), the bucketed allreduce is bit-identical to the flat one.
        #[test]
        fn bucketed_allreduce_bit_identical_to_flat(
            p in 2usize..=8,
            n in 1usize..=48,
            bucket in 1usize..=64,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let inputs: Vec<Vec<f32>> = (0..p)
                .map(|_| (0..n).map(|_| rng.gen_range(-1e3f32..1e3)).collect())
                .collect();
            let flat = World::run(p, |rank| {
                let mut buf = inputs[rank.id()].clone();
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
                buf
            });
            let bucketed = World::run(p, |rank| {
                let mut buf = inputs[rank.id()].clone();
                ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
                buf
            });
            for (r, (f, b)) in flat.iter().zip(&bucketed).enumerate() {
                for (i, (x, y)) in f.iter().zip(b).enumerate() {
                    proptest::prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "rank {} element {}: {} vs {}", r, i, x, y
                    );
                }
            }
        }
    }
}
