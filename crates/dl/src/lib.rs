//! A small, real deep-learning training framework.
//!
//! The paper's full-Summit training runs (Section IV-B) all share one
//! algorithmic core: synchronous data-parallel SGD with layer-wise adaptive
//! optimizers that keep very large global batches convergent — LARC for the
//! climate network of Kurth et al., LARS/Adam for Laanait et al., LAMB for
//! Khan et al. and for the 5.8-million-sample batches of Blanchard et al.
//! This crate implements that core for real, at CPU/laptop scale:
//!
//! * [`model`] — multi-layer perceptrons with explicit forward/backward
//!   passes over [`summit_tensor::Matrix`] batches, flat parameter/gradient
//!   views for allreduce, and per-layer parameter groups for the layer-wise
//!   optimizers.
//! * [`optim`] — SGD (+momentum, +weight decay), Adam, LARS, LARC and LAMB,
//!   all sharing the [`optim::Optimizer`] trait; the trust-ratio math
//!   follows You et al. (LARS/LAMB) and the LARC clipping variant.
//! * [`schedule`] — constant / linear-warmup / cosine / polynomial-decay
//!   learning-rate schedules (warmup-then-decay is what every Section IV-B
//!   project used).
//! * [`data`] — deterministic synthetic classification/regression tasks, so
//!   convergence tests are reproducible.
//! * [`trainer`] — a single-process trainer with gradient accumulation, and
//!   [`trainer::DataParallelTrainer`] which replicates the model over
//!   `summit-comm` ranks, allreduces real gradients every step, and is
//!   bit-for-bit equivalent to large-batch single-process training (tested).
//!
//! # Example: train a classifier
//!
//! ```
//! use summit_dl::{data::blobs, model::MlpSpec, optim::Sgd, schedule::LrSchedule,
//!                 trainer::Trainer};
//!
//! let task = blobs(200, 4, 3, 0.5, 42);
//! let spec = MlpSpec::new(4, &[16], 3);
//! let mut trainer = Trainer::new(
//!     spec.build(7),
//!     Box::new(Sgd::new(0.1, 0.9, 0.0)),
//!     LrSchedule::Constant,
//! );
//! let first = trainer.train_epoch(&task.x, &task.y, 32);
//! for _ in 0..20 { trainer.train_epoch(&task.x, &task.y, 32); }
//! let last = trainer.train_epoch(&task.x, &task.y, 32);
//! assert!(last.loss < first.loss);
//! ```

pub mod checkpoint;
pub mod compression;
pub mod data;
pub mod inference;
pub mod lm;
pub mod model;
pub mod optim;
pub mod recovery;
pub mod schedule;
pub mod trainer;
pub mod transformer;

pub use checkpoint::{CheckpointError, ElasticCheckpoint};
pub use compression::{Compressor, GradCompression};
pub use inference::ServableModel;
pub use lm::{MultiHeadAttention, TinyLm};
pub use model::{Mlp, MlpSpec};
pub use optim::{Adam, Lamb, Larc, Lars, Optimizer, OptimizerState, Sgd};
pub use recovery::{
    elastic_clock, ElasticConfig, ElasticOutcome, FtOutcome, RecoveryConfig, SUB_COMM, SUB_DRAIN,
    SUB_PRE, SUB_REPART, SUB_VOTE,
};
pub use schedule::LrSchedule;
pub use trainer::{
    BucketSchedule, DataParallelTrainer, EpochMetrics, FusionConfig, OverlapConfig, Trainer,
};
pub use transformer::{LayerNorm, SelfAttention, SequenceClassifier, TransformerBlock};
