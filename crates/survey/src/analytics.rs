//! The figure-generating analytics (Figures 1–6).
//!
//! Every function takes the portfolio records and computes the aggregation
//! the corresponding paper figure plots. Nothing here knows how the
//! portfolio was synthesized — these are the honest computation paths a
//! survey over real proposals would use.

use std::collections::BTreeMap;

use serde::Serialize;
use summit_sched::program::Program;

use crate::portfolio::{
    iae_user_records, program_records, ProjectRecord, DOMAIN_ROWS, MOTIF_COLUMNS,
};
use crate::taxonomy::{Domain, MlMethod, Motif, UsageStatus};

/// Counts of projects by usage status.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct UsageCounts {
    /// Actively using AI/ML.
    pub active: u32,
    /// Inactive (planned/previous/indirect) usage.
    pub inactive: u32,
    /// No AI/ML usage.
    pub none: u32,
}

impl UsageCounts {
    /// Total projects.
    pub fn total(&self) -> u32 {
        self.active + self.inactive + self.none
    }

    /// Active fraction.
    pub fn active_pct(&self) -> f64 {
        f64::from(self.active) / f64::from(self.total().max(1))
    }

    /// Inactive fraction.
    pub fn inactive_pct(&self) -> f64 {
        f64::from(self.inactive) / f64::from(self.total().max(1))
    }

    /// Fraction with no usage.
    pub fn none_pct(&self) -> f64 {
        f64::from(self.none) / f64::from(self.total().max(1))
    }

    fn add(&mut self, status: UsageStatus) {
        match status {
            UsageStatus::Active => self.active += 1,
            UsageStatus::Inactive => self.inactive += 1,
            UsageStatus::None => self.none += 1,
        }
    }
}

/// Figure 1: overall AI/ML usage over all non-Gordon-Bell project-years.
pub fn overall_usage(records: &[ProjectRecord]) -> UsageCounts {
    let mut counts = UsageCounts::default();
    for r in program_records(records) {
        counts.add(r.status);
    }
    counts
}

/// Figure 2: usage by (program, year), percentage of projects. Keys are
/// sorted for stable iteration.
pub fn usage_by_program_year(records: &[ProjectRecord]) -> BTreeMap<(Program, u16), UsageCounts> {
    let mut map: BTreeMap<(Program, u16), UsageCounts> = BTreeMap::new();
    for r in program_records(records) {
        map.entry((r.program, r.year)).or_default().add(r.status);
    }
    map
}

/// Figure 3: ML method of AI/ML-using projects (active + inactive
/// aggregated, as the paper does).
pub fn usage_by_method(records: &[ProjectRecord]) -> BTreeMap<MlMethod, u32> {
    let mut map: BTreeMap<MlMethod, u32> = BTreeMap::new();
    for r in program_records(records) {
        if let Some(m) = r.method {
            *map.entry(m).or_insert(0) += 1;
        }
    }
    map
}

/// Figure 4: usage by science domain, project counts.
pub fn usage_by_domain(records: &[ProjectRecord]) -> BTreeMap<Domain, UsageCounts> {
    let mut map: BTreeMap<Domain, UsageCounts> = BTreeMap::new();
    for d in Domain::ALL {
        map.insert(d, UsageCounts::default());
    }
    for r in program_records(records) {
        map.entry(r.domain).or_default().add(r.status);
    }
    map
}

/// Figure 5: AI motif distribution over INCITE+ALCC+ECP users.
pub fn usage_by_motif(records: &[ProjectRecord]) -> BTreeMap<Motif, u32> {
    let mut map: BTreeMap<Motif, u32> = BTreeMap::new();
    for m in Motif::ALL {
        map.insert(m, 0);
    }
    for r in iae_user_records(records) {
        let m = r.motif.expect("users have motifs");
        *map.entry(m).or_insert(0) += 1;
    }
    map
}

/// Figure 6: motif × domain cross-tabulation over INCITE+ALCC+ECP users.
/// Rows follow [`DOMAIN_ROWS`], columns [`MOTIF_COLUMNS`].
pub fn motif_by_domain(records: &[ProjectRecord]) -> [[u32; 11]; 9] {
    let mut matrix = [[0u32; 11]; 9];
    for r in iae_user_records(records) {
        let motif = r.motif.expect("users have motifs");
        let row = DOMAIN_ROWS
            .iter()
            .position(|&d| d == r.domain)
            .expect("all domains in row order");
        let col = MOTIF_COLUMNS
            .iter()
            .position(|&m| m == motif)
            .expect("all motifs in column order");
        matrix[row][col] += 1;
    }
    matrix
}

/// Node-hours by usage status — the paper's alternative metric: "We
/// measure AI/ML usage either by number of projects or by total allocation
/// hours summed across relevant projects."
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct WeightedUsage {
    /// Node-hours of actively-using projects.
    pub active_hours: f64,
    /// Node-hours of inactive-usage projects.
    pub inactive_hours: f64,
    /// Node-hours of non-using projects.
    pub none_hours: f64,
}

impl WeightedUsage {
    /// Total node-hours.
    pub fn total(&self) -> f64 {
        self.active_hours + self.inactive_hours + self.none_hours
    }

    /// Active share of node-hours.
    pub fn active_share(&self) -> f64 {
        self.active_hours / self.total().max(f64::MIN_POSITIVE)
    }

    /// Inactive share of node-hours.
    pub fn inactive_share(&self) -> f64 {
        self.inactive_hours / self.total().max(f64::MIN_POSITIVE)
    }
}

/// Figure 1 weighted by allocation hours instead of project counts.
pub fn overall_usage_weighted(records: &[ProjectRecord]) -> WeightedUsage {
    let mut w = WeightedUsage::default();
    for r in program_records(records) {
        match r.status {
            UsageStatus::Active => w.active_hours += r.allocation_node_hours,
            UsageStatus::Inactive => w.inactive_hours += r.allocation_node_hours,
            UsageStatus::None => w.none_hours += r.allocation_node_hours,
        }
    }
    w
}

/// Hour-weighted usage per program (paper Figure 2's alternative reading).
pub fn usage_by_program_weighted(records: &[ProjectRecord]) -> BTreeMap<Program, WeightedUsage> {
    let mut map: BTreeMap<Program, WeightedUsage> = BTreeMap::new();
    for r in program_records(records) {
        let w = map.entry(r.program).or_default();
        match r.status {
            UsageStatus::Active => w.active_hours += r.allocation_node_hours,
            UsageStatus::Inactive => w.inactive_hours += r.allocation_node_hours,
            UsageStatus::None => w.none_hours += r.allocation_node_hours,
        }
    }
    map
}

/// Render a percentage bar (for the ASCII figure output).
fn bar(pct: f64, width: usize) -> String {
    let filled = (pct * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Render Figure 1 as ASCII.
pub fn render_fig1(counts: &UsageCounts) -> String {
    let mut out = String::from("Fig 1. Overall AI/ML usage, percentage of projects\n");
    for (label, pct) in [
        ("active", counts.active_pct()),
        ("inactive", counts.inactive_pct()),
        ("none", counts.none_pct()),
    ] {
        out.push_str(&format!(
            "{label:<9} {:>5.1}% |{}|\n",
            pct * 100.0,
            bar(pct, 40)
        ));
    }
    out
}

/// Render Figure 2 as ASCII.
pub fn render_fig2(map: &BTreeMap<(Program, u16), UsageCounts>) -> String {
    let mut out = String::from("Fig 2. AI/ML usage by program and year, percentage of projects\n");
    for ((program, year), counts) in map {
        out.push_str(&format!(
            "{:<7} {year}  active {:>5.1}%  inactive {:>5.1}%  (n={})\n",
            program.name(),
            counts.active_pct() * 100.0,
            counts.inactive_pct() * 100.0,
            counts.total()
        ));
    }
    out
}

/// Render Figure 3 as ASCII.
pub fn render_fig3(map: &BTreeMap<MlMethod, u32>) -> String {
    let total: u32 = map.values().sum();
    let mut out = String::from("Fig 3. Usage by AI/ML method, percentage of AI/ML projects\n");
    for (method, count) in map {
        let pct = f64::from(*count) / f64::from(total.max(1));
        out.push_str(&format!(
            "{:<13} {:>5.1}% |{}|\n",
            method.name(),
            pct * 100.0,
            bar(pct, 40)
        ));
    }
    out
}

/// Render Figure 4 as ASCII.
pub fn render_fig4(map: &BTreeMap<Domain, UsageCounts>) -> String {
    let mut out = String::from("Fig 4. AI/ML usage by science domain, project counts\n");
    for (domain, counts) in map {
        out.push_str(&format!(
            "{:<18} active {:>3}  inactive {:>3}  none {:>3}\n",
            domain.name(),
            counts.active,
            counts.inactive,
            counts.none
        ));
    }
    out
}

/// Render Figure 5 as ASCII.
pub fn render_fig5(map: &BTreeMap<Motif, u32>) -> String {
    let total: u32 = map.values().sum();
    let mut out =
        String::from("Fig 5. AI/ML usage by AI motif, percentage of INCITE/ALCC/ECP AI projects\n");
    // Sort by count descending for the classic bar-chart reading.
    let mut rows: Vec<(&Motif, &u32)> = map.iter().collect();
    rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    for (motif, count) in rows {
        let pct = f64::from(*count) / f64::from(total.max(1));
        out.push_str(&format!(
            "{:<18} {:>5.1}% |{}|\n",
            motif.name(),
            pct * 100.0,
            bar(pct, 40)
        ));
    }
    out
}

/// Render Figure 6 as ASCII.
pub fn render_fig6(matrix: &[[u32; 11]; 9]) -> String {
    let mut out = String::from("Fig 6. AI motif vs. science domain, project counts\n");
    out.push_str(&format!("{:<18}", ""));
    for m in MOTIF_COLUMNS {
        let name = m.name();
        let short: String = name.chars().take(5).collect();
        out.push_str(&format!("{short:>6}"));
    }
    out.push('\n');
    for (d, row) in DOMAIN_ROWS.iter().zip(matrix.iter()) {
        out.push_str(&format!("{:<18}", d.name()));
        for v in row {
            out.push_str(&format!("{v:>6}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portfolio::build;

    #[test]
    fn fig1_matches_paper() {
        // "1/3 over Summit's lifespan have actively used AI/ML methods,
        // with another 8% indirect use."
        let counts = overall_usage(&build());
        assert_eq!(counts.total(), 645);
        assert!(
            (counts.active_pct() - 1.0 / 3.0).abs() < 0.01,
            "{}",
            counts.active_pct()
        );
        assert!(
            (counts.inactive_pct() - 0.08).abs() < 0.005,
            "{}",
            counts.inactive_pct()
        );
    }

    #[test]
    fn fig2_incite_grows_from_20_pct() {
        // "AI/ML adoption in INCITE ... has grown steadily from 20% in 2019"
        let map = usage_by_program_year(&build());
        let series: Vec<f64> = (2019..=2022)
            .map(|y| map[&(Program::Incite, y)].active_pct())
            .collect();
        assert!((series[0] - 0.20).abs() < 0.01, "2019 INCITE {series:?}");
        for w in series.windows(2) {
            assert!(w[1] > w[0], "INCITE active share must grow: {series:?}");
        }
        // Conclusions: "about 31% of INCITE projects actively using AI/ML
        // and another 28% ..." (the 2022 cohort).
        assert!((series[3] - 0.31).abs() < 0.01);
        let inactive_2022 = map[&(Program::Incite, 2022)].inactive_pct();
        assert!((inactive_2022 - 0.28).abs() < 0.02, "{inactive_2022}");
    }

    #[test]
    fn fig2_alcc_peak_and_covid_heavy() {
        let map = usage_by_program_year(&build());
        // "ALCC usage has been significant, especially in 2019-20".
        let alcc19 = map[&(Program::Alcc, 2019)].active_pct();
        let alcc21 = map[&(Program::Alcc, 2021)].active_pct();
        assert!(alcc19 > 0.45 && alcc19 > alcc21);
        // "COVID-19 projects use AI/ML heavily".
        let covid = map[&(Program::CovidConsortium, 2020)].active_pct();
        assert!(covid > 0.8);
        // "ECP projects understandably use AI/ML less".
        for y in 2019..=2021 {
            assert!(map[&(Program::Ecp, y)].active_pct() < 0.25);
        }
    }

    #[test]
    fn fig3_dl_dominates() {
        // "DL/NN methods are much more prevalent than others."
        let map = usage_by_method(&build());
        let total: u32 = map.values().sum();
        let dl = map[&MlMethod::DeepLearningOrNn];
        let other = map[&MlMethod::OtherMl];
        assert!(f64::from(dl) / f64::from(total) > 0.55, "DL {dl}/{total}");
        assert!(dl > 2 * other);
    }

    #[test]
    fn fig4_top_domains() {
        // "AI/ML adoption is highly differentiated by science domain, with
        // Biology, Computer Science and Materials being top categories."
        let map = usage_by_domain(&build());
        let users = |d: Domain| map[&d].active + map[&d].inactive;
        let mut by_users: Vec<(Domain, u32)> = Domain::ALL.iter().map(|&d| (d, users(d))).collect();
        by_users.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let top3: Vec<Domain> = by_users[..3].iter().map(|&(d, _)| d).collect();
        assert!(top3.contains(&Domain::Biology), "{by_users:?}");
        assert!(top3.contains(&Domain::ComputerScience), "{by_users:?}");
        assert!(
            top3.contains(&Domain::Materials) || by_users[3].0 == Domain::Materials,
            "{by_users:?}"
        );
    }

    #[test]
    fn fig5_submodel_family_structure() {
        // "The top motif is Submodels ... This with Classification,
        // Analysis, Surrogate Models and MD Potentials account for over 3/4
        // of usage."
        let map = usage_by_motif(&build());
        let total: u32 = map.values().sum();
        assert_eq!(total, 121);
        let submodel = map[&Motif::Submodel];
        for (m, &count) in &map {
            if *m != Motif::Submodel {
                assert!(submodel >= count, "{} beats submodel", m.name());
            }
        }
        let top5 = submodel
            + map[&Motif::Classification]
            + map[&Motif::Analysis]
            + map[&Motif::SurrogateModel]
            + map[&Motif::MdPotentials];
        assert!(
            f64::from(top5) / f64::from(total) > 0.75,
            "top-5 {top5}/{total}"
        );
    }

    #[test]
    fn fig6_structural_claims() {
        let matrix = motif_by_domain(&build());
        let row = |d: Domain| DOMAIN_ROWS.iter().position(|&x| x == d).unwrap();
        let col = |m: Motif| MOTIF_COLUMNS.iter().position(|&x| x == m).unwrap();
        // "The most prominent usage is Submodels by Engineering."
        let eng_sub = matrix[row(Domain::Engineering)][col(Motif::Submodel)];
        let max_cell = matrix.iter().flatten().copied().max().unwrap();
        assert_eq!(eng_sub, max_cell);
        // "Biology uses no Submodels (other than MD Potentials)" and its MD
        // potential users are otherwise classed.
        assert_eq!(matrix[row(Domain::Biology)][col(Motif::Submodel)], 0);
        assert_eq!(matrix[row(Domain::Biology)][col(Motif::MdPotentials)], 0);
        // "they have no Math/CS Algorithm components" (Computer Science).
        assert_eq!(
            matrix[row(Domain::ComputerScience)][col(Motif::MathCsAlgorithm)],
            0
        );
        // "Machine-learned MD Potentials are heavily used in Materials
        // projects; they are used in Fusion/Plasma".
        let md_col = col(Motif::MdPotentials);
        let md_total: u32 = matrix.iter().map(|r| r[md_col]).sum();
        assert!(matrix[row(Domain::Materials)][md_col] * 2 > md_total);
        assert!(matrix[row(Domain::FusionPlasma)][md_col] > 0);
        // "Computer Science contains many Classification projects."
        let cs_class = matrix[row(Domain::ComputerScience)][col(Motif::Classification)];
        let class_col: u32 = matrix.iter().map(|r| r[col(Motif::Classification)]).sum();
        assert!(f64::from(cs_class) / f64::from(class_col) > 0.4);
    }

    #[test]
    fn weighted_usage_differs_from_counts() {
        // INCITE allocations (600k node-hours) dwarf DD's (25k), and DD has
        // a higher active *project* share — so the hour-weighted active
        // share must differ from the count share, and INCITE must dominate
        // the hour budget (paper: the caveat motivating both metrics).
        let records = build();
        let counts = overall_usage(&records);
        let weighted = overall_usage_weighted(&records);
        assert!((weighted.active_share() - counts.active_pct()).abs() > 0.02);
        let by_program = usage_by_program_weighted(&records);
        let incite = by_program[&Program::Incite].total();
        let total: f64 = by_program.values().map(WeightedUsage::total).sum();
        assert!(incite / total > 0.5, "INCITE hour share {}", incite / total);
    }

    #[test]
    fn weighted_shares_partition() {
        let w = overall_usage_weighted(&build());
        let sum = w.active_share() + w.inactive_share() + w.none_hours / w.total();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(w.total() > 0.0);
    }

    #[test]
    fn renders_are_nonempty_and_labelled() {
        let records = build();
        let f1 = render_fig1(&overall_usage(&records));
        assert!(f1.contains("active") && f1.contains('%'));
        let f2 = render_fig2(&usage_by_program_year(&records));
        assert!(f2.contains("INCITE") && f2.contains("2022"));
        let f3 = render_fig3(&usage_by_method(&records));
        assert!(f3.contains("DL/NN"));
        let f4 = render_fig4(&usage_by_domain(&records));
        assert!(f4.contains("Biology"));
        let f5 = render_fig5(&usage_by_motif(&records));
        assert!(f5.lines().nth(1).unwrap_or("").contains("submodel"));
        let f6 = render_fig6(&motif_by_domain(&records));
        assert!(f6.contains("Engineering"));
    }
}
