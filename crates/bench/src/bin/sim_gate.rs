//! CI gate over the event-driven full-machine collective simulator.
//!
//! Runs every modeled collective at Summit's full 27,648 GPU ranks on the
//! routed fat-tree fabric ([`summit_comm::sim::simulate_on`]), asserting
//!
//! 1. **exact traffic**: each collective's total simulated message count
//!    equals its closed-form event count (the per-rank version of the same
//!    pin lives in the `sim_equivalence` suite at executable scale);
//! 2. **Section VI-B from the simulated fabric**: a 100 MB ring allreduce
//!    across 4,608 nodes on the latency-free fat tree lands on the paper's
//!    ≈8 ms / 12.5 GB/s ring-bandwidth figures;
//! 3. **wall-time budgets**: every collective finishes within
//!    `SUMMIT_SIM_BUDGET_S` (default 10 s) — a case that overruns it must
//!    also sustain `SUMMIT_SIM_EVENTS_FLOOR` events/s (default 2×10⁷)
//!    under a hard cap of `SUMMIT_SIM_HARD_CAP_S` (default 120 s), so an
//!    overage can only ever be irreducible event count, never an engine
//!    regression (the small-message alltoall takes the Bruck log-p
//!    schedule exactly so its count stays p·⌈lg p⌉, not p·(p−1));
//! 4. **no >10% events/s regression** against the last committed
//!    `BENCH_trajectory.json` entry (`SUMMIT_GATE_SKIP_TRAJECTORY=1`
//!    skips this leg on hosts not comparable to the recording machine).
//!
//! Also writes the algorithm crossover study (ring vs recursive doubling
//! vs Rabenseifner vs hierarchical over message size × world size, all
//! simulated) to `target/BENCH_crossover.json`, and the gate's own numbers
//! to `target/BENCH_sim.json`. `SUMMIT_BENCH_RECORD=1` appends the
//! headline metrics to the committed trajectory.

use std::collections::BTreeMap;
use std::time::Instant;

use summit_bench::harness;
use summit_comm::{sim, Collective};
use summit_machine::ClusterModel;
use summit_perf::crossover::AlgorithmCrossoverStudy;

/// Full-machine world: 4,608 nodes × 6 GPUs.
const P: u64 = 27_648;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Case {
    name: &'static str,
    collective: Collective,
    elems: usize,
    /// Closed-form total message count for this (collective, p, elems).
    expected_messages: u64,
}

/// The gate's case list: every `Collective` variant, with payloads chosen
/// so the event count exercises the engine without being gratuitous
/// (sparse ring payloads keep empty chunks fast-forwarded; Rabenseifner's
/// payload divides the 2^14 power-of-two core).
fn cases() -> Vec<Case> {
    let p = P;
    let groups = p / 6;
    let core = 1u64 << 14; // pow2 core of 27,648
    let rem = p - core;
    let lg = 14u64;
    vec![
        Case {
            name: "ring_allreduce",
            collective: Collective::RingAllreduce {
                bucket_elems: usize::MAX,
            },
            elems: 1024,
            expected_messages: 2 * (p - 1) * 1024,
        },
        Case {
            name: "ring_allreduce_bucketed",
            collective: Collective::RingAllreduce { bucket_elems: 256 },
            elems: 1024,
            expected_messages: 2 * (p - 1) * 1024,
        },
        Case {
            name: "reduce_scatter",
            collective: Collective::ReduceScatter,
            elems: 1024,
            expected_messages: (p - 1) * 1024,
        },
        Case {
            name: "ring_allgather",
            collective: Collective::RingAllgather,
            elems: 1024,
            expected_messages: (p - 1) * 1024,
        },
        Case {
            name: "recursive_doubling",
            collective: Collective::RecursiveDoubling,
            elems: 16_384,
            // Core ranks exchange lg rounds; each folded-out rank adds one
            // pre-reduce send and one post-broadcast send.
            expected_messages: core * lg + 2 * rem,
        },
        Case {
            name: "rabenseifner",
            collective: Collective::Rabenseifner,
            elems: 16_384,
            // Halving + doubling: 2·lg rounds over the core, plus the fold.
            expected_messages: 2 * core * lg + 2 * rem,
        },
        Case {
            name: "binomial_broadcast",
            collective: Collective::BinomialBroadcast { root: 0 },
            elems: 16_384,
            expected_messages: p - 1,
        },
        Case {
            name: "binomial_reduce",
            collective: Collective::BinomialReduce { root: 0 },
            elems: 16_384,
            expected_messages: p - 1,
        },
        Case {
            name: "tree_allreduce",
            collective: Collective::TreeAllreduce,
            elems: 16_384,
            expected_messages: 2 * (p - 1),
        },
        Case {
            name: "hierarchical_allreduce",
            collective: Collective::HierarchicalAllreduce { group_size: 6 },
            elems: 4608,
            // Fan-in + fan-out inside every node, dense leader ring across
            // the 4,608 nodes.
            expected_messages: 2 * (p - groups) + groups * 2 * (groups - 1),
        },
        Case {
            name: "alltoall",
            collective: Collective::Alltoall,
            elems: 1,
            // 4-byte blocks sit under the Bruck threshold: ⌈lg p⌉ = 15
            // combined messages per rank.
            expected_messages: p * 15,
        },
        Case {
            name: "scatter",
            collective: Collective::Scatter { root: 0 },
            elems: 16_384,
            expected_messages: p - 1,
        },
        Case {
            name: "gather",
            collective: Collective::Gather { root: 0 },
            elems: 16_384,
            expected_messages: p - 1,
        },
    ]
}

fn main() {
    let budget = env_f64("SUMMIT_SIM_BUDGET_S", 10.0);
    let floor = env_f64("SUMMIT_SIM_EVENTS_FLOOR", 2.0e7);
    let hard_cap = env_f64("SUMMIT_SIM_HARD_CAP_S", 120.0);
    let cluster = ClusterModel::summit();
    let mut failures: Vec<String> = Vec::new();
    let mut rows = String::new();
    let mut total_events = 0u64;
    let mut total_wall = 0.0f64;
    let mut ring_wall = f64::NAN;
    let mut alltoall_wall = f64::NAN;

    println!(
        "sim_gate: {} collectives at p = {P} on the Summit fat tree",
        cases().len()
    );
    for case in cases() {
        let t0 = Instant::now();
        let out = sim::simulate_on(case.collective, P as usize, case.elems, cluster);
        let wall = t0.elapsed().as_secs_f64();
        let events = out.events;
        let rate = events as f64 / wall.max(1e-9);
        total_events += events;
        total_wall += wall;
        match case.name {
            "ring_allreduce" => ring_wall = wall,
            "alltoall" => alltoall_wall = wall,
            _ => {}
        }
        println!(
            "  {:<24} {:>12} events  {:>8.3} s  {:>6.1} M events/s  t_virt {:.3e} s",
            case.name,
            events,
            wall,
            rate / 1e6,
            out.report.time_seconds
        );
        if events != case.expected_messages {
            failures.push(format!(
                "{}: {} simulated messages, closed form says {}",
                case.name, events, case.expected_messages
            ));
        }
        if wall > hard_cap {
            failures.push(format!(
                "{}: {wall:.1} s exceeds the {hard_cap:.0} s hard cap",
                case.name
            ));
        } else if wall > budget && rate < floor {
            // Over budget AND slow per event: an engine regression, not an
            // irreducible event count.
            failures.push(format!(
                "{}: {wall:.1} s over the {budget:.0} s budget at only {:.1} M events/s (floor {:.1} M)",
                case.name,
                rate / 1e6,
                floor / 1e6
            ));
        }
        rows.push_str(&format!(
            "    {{\"collective\": \"{}\", \"events\": {}, \"wall_s\": {:.4}, \"virtual_s\": {:.6e}, \"nvlink\": {}, \"intra_leaf\": {}, \"spine\": {}}},\n",
            case.name, events, wall, out.report.time_seconds,
            out.nvlink_messages, out.intra_leaf_messages, out.spine_messages
        ));
    }
    let events_per_sec = total_events as f64 / total_wall.max(1e-9);
    println!(
        "sim_gate: {total_events} events in {total_wall:.1} s — {:.1} M events/s aggregate",
        events_per_sec / 1e6
    );

    // Leg 2: Section VI-B from the simulated fat tree. The paper's
    // arithmetic is bandwidth-only (pipelined collectives hide latency),
    // so zero the latency knobs and let the fabric supply the bandwidth.
    let mut vi_b = ClusterModel::summit_nodes(4608);
    vi_b.tree.injection.alpha = 0.0;
    vi_b.tree.hop_latency = 0.0;
    vi_b.nvlink_latency = 0.0;
    let bytes = 100.0e6;
    let elems = (bytes / 4.0) as usize;
    let out = sim::simulate_on(
        Collective::RingAllreduce {
            bucket_elems: usize::MAX,
        },
        4608,
        elems,
        vi_b,
    );
    let t = out.report.time_seconds;
    let ring_bw = bytes / t;
    println!(
        "sim_gate: VI-B ring 100 MB × 4608 nodes: {:.3} ms, ring bandwidth {:.2} GB/s",
        t * 1e3,
        ring_bw / 1e9
    );
    if (t - 8.0e-3).abs() / 8.0e-3 > 0.05 {
        failures.push(format!(
            "VI-B: simulated 100 MB ring allreduce is {:.3} ms, paper says ≈8 ms",
            t * 1e3
        ));
    }
    if (ring_bw - 12.5e9).abs() / 12.5e9 > 0.05 {
        failures.push(format!(
            "VI-B: simulated ring bandwidth {:.2} GB/s, paper says ≈12.5 GB/s",
            ring_bw / 1e9
        ));
    }

    // The algorithm crossover study, simulated end to end.
    let study = AlgorithmCrossoverStudy::summit();
    let t0 = Instant::now();
    let cells = study.run();
    println!(
        "sim_gate: crossover study ({} cells) in {:.1} s",
        cells.len(),
        t0.elapsed().as_secs_f64()
    );
    let mut study_rows = String::new();
    for c in &cells {
        study_rows.push_str(&format!(
            "    {{\"ranks\": {}, \"message_bytes\": {}, \"ring_s\": {:.6e}, \"recursive_doubling_s\": {:.6e}, \"rabenseifner_s\": {:.6e}, \"hierarchical_s\": {:.6e}, \"winner\": \"{}\"}},\n",
            c.ranks,
            c.message_bytes,
            c.ring_seconds,
            c.recursive_doubling_seconds,
            c.rabenseifner_seconds,
            c.hierarchical_seconds,
            c.winner
        ));
    }
    let study_json = format!(
        "{{\n  \"bench\": \"crossover\",\n  \"description\": \"simulated allreduce algorithm crossover, message size × world size\",\n  \"cells\": [\n{}  ]\n}}\n",
        study_rows.trim_end_matches(",\n").to_string() + "\n"
    );
    harness::write_bench_json("crossover", &study_json);

    // Headline + bench JSON.
    let mut metrics = BTreeMap::new();
    metrics.insert("sim_events_per_sec".to_string(), events_per_sec);
    metrics.insert("ring_allreduce_wall_s".to_string(), ring_wall);
    metrics.insert("alltoall_wall_s".to_string(), alltoall_wall);
    let headline = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"sim\",\n  \"world\": {P},\n  \"headline\": {{{headline}}},\n  \"collectives\": [\n{}  ]\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n"
    );
    harness::write_bench_json("sim", &json);
    harness::record_trajectory(&harness::TrajectoryEntry::now("sim", metrics.clone()));

    // Leg 4: throughput regression vs the committed trajectory. Only the
    // engine-rate metric gates; the per-collective wall times are recorded
    // for the record, not compared (their event counts change by design).
    harness::gate_trajectory(
        "sim",
        &metrics,
        &|k| (k == "sim_events_per_sec").then_some(harness::Direction::HigherIsBetter),
        0.10,
        &mut failures,
    );

    if failures.is_empty() {
        println!("sim_gate: PASS");
    } else {
        for f in &failures {
            eprintln!("sim_gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
