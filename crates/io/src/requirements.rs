//! The Section VI-B aggregate read-bandwidth requirement analysis.
//!
//! "The aggregated read bandwidth needed to sustain full Summit
//! data-parallel training is roughly estimated from single device training
//! throughput on in-memory synthetic data, multiplying by input data size
//! and number of devices. For the standard ResNet50 on ImageNet benchmark, a
//! total of 20 TB/s is required for ideal scaling."

use serde::Serialize;

use crate::tier::StorageTier;

/// The read-bandwidth demand of an ideally-scaled data-parallel training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReadDemand {
    /// Single-device training throughput on in-memory data, samples/s.
    pub samples_per_sec_per_device: f64,
    /// Bytes read per training sample.
    pub bytes_per_sample: f64,
    /// Number of devices (GPUs).
    pub devices: u64,
}

impl ReadDemand {
    /// Create a demand description.
    ///
    /// # Panics
    /// Panics on non-positive rates/sizes or zero devices.
    pub fn new(samples_per_sec_per_device: f64, bytes_per_sample: f64, devices: u64) -> Self {
        assert!(
            samples_per_sec_per_device > 0.0,
            "throughput must be positive"
        );
        assert!(bytes_per_sample > 0.0, "sample size must be positive");
        assert!(devices > 0, "need at least one device");
        ReadDemand {
            samples_per_sec_per_device,
            bytes_per_sample,
            devices,
        }
    }

    /// Aggregate read bandwidth (bytes/s) required for ideal scaling.
    pub fn aggregate_read_bw(&self) -> f64 {
        self.samples_per_sec_per_device * self.bytes_per_sample * self.devices as f64
    }

    /// Per-device read bandwidth (bytes/s).
    pub fn per_device_read_bw(&self) -> f64 {
        self.samples_per_sec_per_device * self.bytes_per_sample
    }

    /// Judge a storage tier against this demand.
    pub fn feasibility(&self, tier: &StorageTier) -> Feasibility {
        let supply = tier.read_bw;
        let demand = self.aggregate_read_bw();
        Feasibility {
            tier_name: tier.name,
            demand_bw: demand,
            supply_bw: supply,
            satisfied: supply >= demand,
            // If the tier cannot keep up, training throughput is capped at
            // supply/demand of ideal.
            achievable_fraction: (supply / demand).min(1.0),
        }
    }

    /// The maximum device count this tier can feed at full speed.
    pub fn max_devices_at_full_speed(&self, tier: &StorageTier) -> u64 {
        (tier.read_bw / self.per_device_read_bw()).floor() as u64
    }
}

/// Verdict of a demand-vs-tier comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Feasibility {
    /// Tier under judgment.
    pub tier_name: &'static str,
    /// Required aggregate bytes/s.
    pub demand_bw: f64,
    /// Available aggregate bytes/s.
    pub supply_bw: f64,
    /// Whether supply meets demand.
    pub satisfied: bool,
    /// Fraction of ideal training throughput achievable (≤ 1).
    pub achievable_fraction: f64,
}

/// ResNet50-on-ImageNet demand at full Summit, with the parameters recorded
/// in DESIGN.md (2,900 samples/s/device synthetic-data throughput, 250 KB
/// per sample, 27,648 V100s → ≈20 TB/s).
pub fn resnet50_full_summit_demand() -> ReadDemand {
    ReadDemand::new(2900.0, 250.0e3, 27_648)
}

#[cfg(test)]
mod tests {
    use super::*;
    use summit_machine::MachineSpec;

    #[test]
    fn paper_twenty_tbs_figure() {
        let d = resnet50_full_summit_demand();
        let tbs = d.aggregate_read_bw() / 1e12;
        assert!((tbs - 20.0).abs() / 20.0 < 0.05, "got {tbs} TB/s");
    }

    #[test]
    fn gpfs_cannot_feed_full_summit_but_nvme_can() {
        let summit = MachineSpec::summit();
        let d = resnet50_full_summit_demand();
        let gpfs = d.feasibility(&StorageTier::shared_fs(&summit));
        assert!(
            !gpfs.satisfied,
            "paper: GPFS 2.5 TB/s cannot sustain 20 TB/s"
        );
        // GPFS caps training at ~1/8 of ideal.
        assert!(gpfs.achievable_fraction < 0.15);
        let nvme = d.feasibility(&StorageTier::node_local_nvme(&summit, summit.nodes));
        assert!(nvme.satisfied, "paper: NVMe >27 TB/s satisfies the need");
    }

    #[test]
    fn gpfs_feeds_a_partial_machine() {
        // The crossover: GPFS can feed 2.5/20 of the machine ≈ 3,456 GPUs.
        let summit = MachineSpec::summit();
        let d = resnet50_full_summit_demand();
        let max = d.max_devices_at_full_speed(&StorageTier::shared_fs(&summit));
        assert!(max > 3000 && max < 3600, "got {max}");
    }

    #[test]
    fn demand_linear_in_each_factor() {
        let base = ReadDemand::new(1000.0, 1.0e5, 100);
        let double_rate = ReadDemand::new(2000.0, 1.0e5, 100);
        let double_size = ReadDemand::new(1000.0, 2.0e5, 100);
        let double_dev = ReadDemand::new(1000.0, 1.0e5, 200);
        for d in [double_rate, double_size, double_dev] {
            assert!((d.aggregate_read_bw() / base.aggregate_read_bw() - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn achievable_fraction_capped_at_one() {
        let summit = MachineSpec::summit();
        let tiny = ReadDemand::new(10.0, 1.0e3, 6);
        let f = tiny.feasibility(&StorageTier::shared_fs(&summit));
        assert_eq!(f.achievable_fraction, 1.0);
        assert!(f.satisfied);
    }
}
