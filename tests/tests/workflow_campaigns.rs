//! Integration X3/X4: the AI-coordinated workflow campaigns through the
//! public API, and the cross-facility scheduling of Section V-B.

use std::collections::HashMap;

use summit_workflow::{
    engine::{simulate_schedule, Facility, WorkflowBuilder},
    materials::MaterialsLoop,
    screening::{CompoundLibrary, FunnelPolicy, ScreeningFunnel},
    steering::{Policy, SteeringConfig, SteeringLoop},
};

/// X3: the screening funnel dominates random selection at equal budget and
/// costs a fraction of brute force.
#[test]
fn screening_funnel_dominates() {
    let library = CompoundLibrary::generate(1500, 8, 23);
    let funnel = ScreeningFunnel {
        seed_set: 150,
        shortlist: 150,
        k: 40,
        seed: 5,
    };
    let surrogate = funnel.run(&library, FunnelPolicy::Surrogate);
    let random = funnel.run(&library, FunnelPolicy::Random);
    assert!(surrogate.recall_at_k > random.recall_at_k);
    assert!(surrogate.expensive_evaluations * 5 <= library.len());
}

/// X4: the materials active-learning loop reduces surrogate error.
#[test]
fn materials_loop_learns() {
    let outcome = MaterialsLoop {
        iterations: 4,
        sweeps_per_iteration: 20,
        ..MaterialsLoop::default()
    }
    .run();
    let first = outcome.rmse_per_iteration[0];
    let last = *outcome.rmse_per_iteration.last().unwrap();
    assert!(last < first, "RMSE {first} → {last}");
}

/// Steering reaches rare states faster than uniform sampling (the
/// DeepDriveMD claim).
#[test]
fn steering_outperforms_uniform() {
    let campaign = SteeringLoop::new(SteeringConfig {
        rounds: 10,
        ..SteeringConfig::default()
    });
    let steered = campaign.run(Policy::MlSteered);
    let random = campaign.run(Policy::Random);
    assert!(steered.best_distance < random.best_distance);
}

/// Section V-B's multi-facility campaign shape: FFEA on ThetaGPU, AAMD on
/// Perlmutter, CVAE training on Summit, coupled through consistency tasks.
/// The simulated schedule must overlap facilities and respect coupling.
#[test]
fn multi_facility_campaign_schedules() {
    let mut wf: WorkflowBuilder<u32> = WorkflowBuilder::new();
    let cryo = wf.task("cryo-EM input", Facility::Andes, 100.0, vec![], |_| 0);
    let ffea = wf.task(
        "FFEA mesoscale",
        Facility::ThetaGpu,
        500.0,
        vec![cryo],
        |_| 1,
    );
    let aamd = wf.task(
        "AAMD (NAMD)",
        Facility::Perlmutter,
        800.0,
        vec![cryo],
        |_| 2,
    );
    let anca = wf.task("ANCA-AE", Facility::ThetaGpu, 150.0, vec![ffea], |_| 3);
    let cvae = wf.task("CVAE training", Facility::Summit, 400.0, vec![aamd], |_| 4);
    let gno = wf.task(
        "GNO coupling",
        Facility::ThetaGpu,
        200.0,
        vec![anca, cvae],
        |_| 5,
    );

    // Real execution completes and respects dependencies.
    let specs = wf.specs();
    let outputs = wf.run(4);
    assert_eq!(*outputs[gno], 5);

    // Simulated schedule: FFEA and AAMD overlap across facilities; the GNO
    // coupling waits for both branches.
    let caps = HashMap::from([
        (Facility::Andes, 1),
        (Facility::ThetaGpu, 2),
        (Facility::Perlmutter, 1),
        (Facility::Summit, 1),
    ]);
    let (placements, makespan) = simulate_schedule(&specs, &caps);
    assert_eq!(placements[ffea].start, 100.0);
    assert_eq!(placements[aamd].start, 100.0, "branches overlap");
    // Critical path: cryo 100 → AAMD 800 → CVAE 400 → GNO 200 = 1500.
    assert_eq!(makespan, 1500.0);
    assert!(placements[gno].start >= placements[anca].end);
    assert!(placements[gno].start >= placements[cvae].end);
}
