//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` as an
//! unbounded MPMC channel over `Mutex<VecDeque>` + `Condvar`. Both handles
//! are cloneable (the workspace's workflow engine shares one `Receiver`
//! among worker threads as a work queue); disconnect semantics match
//! upstream: `recv` errors once all senders are gone and the queue is
//! drained, `send` errors once all receivers are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC work-queue semantics).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// rejected message is handed back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Like upstream: no T: Debug bound, the payload is elided.
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when every sender is gone and
    /// the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty, senders still connected.
        Empty,
        /// Queue empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`] / [`Receiver::recv_deadline`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// Queue empty and all senders gone.
        Disconnected,
    }

    /// Create an unbounded MPMC channel.
    ///
    /// The queue pre-reserves a small constant capacity so that steady-state
    /// traffic with bounded in-flight depth (the communicator's ring and
    /// windowed collectives) never grows the queue after creation — queue
    /// growth under scheduling skew would otherwise show up as an
    /// allocation inside the hot-path allocation-count proofs.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::with_capacity(64)),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, waking one blocked receiver.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            q.push_back(value);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue, blocking until a message arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.ready.wait(q).expect("channel mutex poisoned");
            }
        }

        /// Dequeue, blocking until a message arrives, all senders drop, or
        /// `deadline` passes.
        pub fn recv_deadline(&self, deadline: std::time::Instant) -> Result<T, RecvTimeoutError> {
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(q, remaining)
                    .expect("channel mutex poisoned");
                q = guard;
            }
        }

        /// Dequeue, blocking for at most `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(std::time::Instant::now() + timeout)
        }

        /// Non-blocking dequeue.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of queued messages (racy, for diagnostics).
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .len()
        }

        /// Whether the queue is currently empty (racy, for diagnostics).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn roundtrip_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn mpmc_workers_drain_queue() {
            let (tx, rx) = unbounded::<u32>();
            for i in 0..64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = thread::scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|_| {
                        let rx = rx.clone();
                        s.spawn(move || {
                            let mut sum = 0;
                            while let Ok(v) = rx.recv() {
                                sum += v;
                            }
                            sum
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum()
            });
            assert_eq!(total, (0..64).sum::<u32>());
        }

        #[test]
        fn recv_timeout_expires_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(3));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded::<u32>();
            let h = thread::spawn(move || rx.recv().unwrap());
            thread::sleep(std::time::Duration::from_millis(20));
            tx.send(42).unwrap();
            assert_eq!(h.join().unwrap(), 42);
        }
    }
}
