//! Integration: real data-parallel training over the comm substrate
//! (experiment X2) with the large-batch optimizers of Section IV-B.

use summit_dl::{
    data::blobs,
    model::MlpSpec,
    optim::{Lamb, Larc, Optimizer, Sgd},
    schedule::LrSchedule,
    trainer::{slice_rows, DataParallelTrainer, Trainer},
};

/// LAMB data-parallel run equals LAMB single-process large-batch run —
/// gradient averaging over the ring allreduce is exact.
#[test]
fn lamb_data_parallel_equals_large_batch() {
    let task = blobs(256, 6, 2, 0.4, 77);
    let spec = MlpSpec::new(6, &[12], 2);
    let schedule = LrSchedule::LinearWarmup { warmup_steps: 4 };

    let mut single = Trainer::new(spec.build(3), Box::new(Lamb::new(0.02, 1e-4)), schedule);
    for s in 0..(256 / 32) {
        let bx = slice_rows(&task.x, s * 32, (s + 1) * 32);
        single.train_batch(&bx, &task.y[s * 32..(s + 1) * 32]);
    }

    let dp = DataParallelTrainer::new(8, 4);
    let out = dp.run(
        || spec.build(3),
        || Box::new(Lamb::new(0.02, 1e-4)) as Box<dyn Optimizer>,
        schedule,
        &task.x,
        &task.y,
        1,
    );
    assert!(out.max_divergence < 1e-6);
    for (a, b) in single.model.flat_params().iter().zip(&out.params) {
        assert!((a - b).abs() < 2e-4, "{a} vs {b}");
    }
}

/// Scaling the rank count at fixed global batch does not change the
/// trajectory (2 ranks × 16 == 4 ranks × 8 == 8 ranks × 4).
#[test]
fn rank_count_invariance_at_fixed_global_batch() {
    let task = blobs(128, 4, 2, 0.4, 99);
    let spec = MlpSpec::new(4, &[8], 2);
    let mut finals: Vec<Vec<f32>> = Vec::new();
    for (ranks, per_rank) in [(2usize, 16usize), (4, 8), (8, 4)] {
        let dp = DataParallelTrainer::new(ranks, per_rank);
        let out = dp.run(
            || spec.build(5),
            || Box::new(Sgd::new(0.05, 0.9, 0.0)) as Box<dyn Optimizer>,
            LrSchedule::Constant,
            &task.x,
            &task.y,
            2,
        );
        finals.push(out.params);
    }
    for other in &finals[1..] {
        for (a, b) in finals[0].iter().zip(other) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}

/// A LARC data-parallel run converges on a real task (loss drops well
/// below the random baseline).
#[test]
fn larc_data_parallel_converges() {
    let task = blobs(512, 8, 4, 0.5, 13);
    let dp = DataParallelTrainer::new(4, 32);
    let spec = MlpSpec::new(8, &[32], 4);
    let out = dp.run(
        || spec.build(11),
        || Box::new(Larc::new(0.5, 0.9, 1e-4, 0.02)) as Box<dyn Optimizer>,
        LrSchedule::LinearWarmup { warmup_steps: 8 },
        &task.x,
        &task.y,
        30,
    );
    let baseline = (4.0f32).ln();
    assert!(
        out.loss < baseline * 0.5,
        "LARC loss {} vs baseline {baseline}",
        out.loss
    );
}
