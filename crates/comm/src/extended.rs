//! Extended collectives: personalized all-to-all, scatter/gather, and the
//! hierarchical (two-level) allreduce that mirrors Summit's NVLink-inside,
//! InfiniBand-between structure.
//!
//! Like the core set in [`crate::collectives`], each pattern is defined once
//! as an engine schedule ([`crate::engine`]) and surfaced here as a blocking
//! wrapper plus a deadline-bounded `try_` twin, so the extended collectives
//! get `FaultPlan` coverage and modeled ([`crate::sim::simulate`]) twins
//! for free.

use std::time::{Duration, Instant};

use crate::collectives::{binomial_broadcast_into, ring_allreduce, ReduceOp};
use crate::engine::{
    drive_blocking, drive_checked, AlltoallSchedule, BruckAlltoallSchedule, GatherSchedule,
    HierarchicalSchedule, ScatterSchedule, BRUCK_MAX_BYTES,
};
use crate::faults::CommError;
use crate::world::Rank;

/// Set up the all-to-all slot array: send buffers in `0..p`, received
/// buffers land in `p..2p`; this rank's own contribution moves straight
/// across.
fn alltoall_slots(rank: &Rank, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let p = rank.size();
    assert_eq!(send.len(), p, "alltoall needs one buffer per rank");
    let mut slots = send;
    slots.extend((0..p).map(|_| Vec::new()));
    slots[p + rank.id()] = std::mem::take(&mut slots[rank.id()]);
    slots
}

/// Whether this exchange takes the Bruck log-p schedule: uniform block
/// lengths (Bruck's combined messages split evenly on receive) at or below
/// the small-message threshold. Deterministic in `(p, block length)`, so
/// the modeled twin ([`crate::sim::simulate`]) makes the same choice.
fn bruck_eligible(send: &[Vec<f32>]) -> bool {
    let n = send.first().map_or(0, Vec::len);
    send.iter().all(|b| b.len() == n) && n * 4 <= BRUCK_MAX_BYTES
}

/// Bruck phase 1: the local rotation — `work[i]` holds the block destined
/// for rank `(me + i) mod p`.
fn bruck_rotate(me: usize, mut send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let p = send.len();
    (0..p)
        .map(|i| std::mem::take(&mut send[(me + i) % p]))
        .collect()
}

/// Bruck phase 3: after the rounds `work[i]` holds the block *from* rank
/// `(me - i) mod p`; un-rotate so the result is indexed by source.
fn bruck_unrotate(me: usize, mut work: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    let p = work.len();
    (0..p)
        .map(|src| std::mem::take(&mut work[(me + p - src) % p]))
        .collect()
}

/// Personalized all-to-all: rank i sends `send[j]` to rank j and receives
/// rank j's `send[i]`. Returns the received buffers indexed by source.
///
/// Small uniform blocks (≤ [`BRUCK_MAX_BYTES`]) take the Bruck log-p
/// store-and-forward schedule — `⌈lg p⌉` combined messages per rank
/// instead of `p − 1`. Larger or ragged exchanges use the direct pairwise
/// schedule (`peer = me ^ s`) for power-of-two worlds, the shifted ring
/// otherwise; this rank's own contribution stays in place either way.
///
/// # Panics
/// Panics if `send.len() != world size`.
pub fn alltoall(rank: &Rank, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    assert_eq!(
        send.len(),
        rank.size(),
        "alltoall needs one buffer per rank"
    );
    if bruck_eligible(&send) {
        let mut work = bruck_rotate(rank.id(), send);
        let mut sched = BruckAlltoallSchedule::new(rank.size(), rank.id());
        drive_blocking(rank, &mut [], &mut work, ReduceOp::Sum, &mut sched);
        return bruck_unrotate(rank.id(), work);
    }
    let mut slots = alltoall_slots(rank, send);
    let mut sched = AlltoallSchedule::new(rank.size(), rank.id());
    drive_blocking(rank, &mut [], &mut slots, ReduceOp::Sum, &mut sched);
    slots.split_off(rank.size())
}

/// Timeout-aware [`alltoall`]. On error the exchange is torn mid-flight and
/// the send buffers are lost with it.
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`alltoall`].
pub fn try_alltoall(
    rank: &Rank,
    send: Vec<Vec<f32>>,
    timeout: Duration,
) -> Result<Vec<Vec<f32>>, CommError> {
    assert_eq!(
        send.len(),
        rank.size(),
        "alltoall needs one buffer per rank"
    );
    rank.poll_fault_kill()?;
    let deadline = Some(Instant::now() + timeout);
    if bruck_eligible(&send) {
        let mut work = bruck_rotate(rank.id(), send);
        let mut sched = BruckAlltoallSchedule::new(rank.size(), rank.id());
        drive_checked(
            rank,
            &mut [],
            &mut work,
            ReduceOp::Sum,
            &mut sched,
            deadline,
        )?;
        return Ok(bruck_unrotate(rank.id(), work));
    }
    let mut slots = alltoall_slots(rank, send);
    let mut sched = AlltoallSchedule::new(rank.size(), rank.id());
    drive_checked(
        rank,
        &mut [],
        &mut slots,
        ReduceOp::Sum,
        &mut sched,
        deadline,
    )?;
    Ok(slots.split_off(rank.size()))
}

/// Set up the scatter slot array: the root's chunks, empty elsewhere.
fn scatter_slots(rank: &Rank, chunks: Option<Vec<Vec<f32>>>, root: usize) -> Vec<Vec<f32>> {
    let p = rank.size();
    if rank.id() == root {
        let chunks = chunks.expect("root must provide chunks");
        assert_eq!(chunks.len(), p, "scatter needs one chunk per rank");
        chunks
    } else {
        assert!(chunks.is_none(), "non-root ranks pass None");
        (0..p).map(|_| Vec::new()).collect()
    }
}

/// Scatter: the root distributes `chunks[i]` to rank i. Returns this
/// rank's chunk.
///
/// # Panics
/// Panics if the root's `chunks` has the wrong length, or a non-root
/// passes `Some`.
pub fn scatter(rank: &Rank, chunks: Option<Vec<Vec<f32>>>, root: usize) -> Vec<f32> {
    let mut slots = scatter_slots(rank, chunks, root);
    let mut sched = ScatterSchedule::new(rank.size(), rank.id(), root);
    drive_blocking(rank, &mut [], &mut slots, ReduceOp::Sum, &mut sched);
    std::mem::take(&mut slots[rank.id()])
}

/// Timeout-aware [`scatter`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`scatter`].
pub fn try_scatter(
    rank: &Rank,
    chunks: Option<Vec<Vec<f32>>>,
    root: usize,
    timeout: Duration,
) -> Result<Vec<f32>, CommError> {
    let mut slots = scatter_slots(rank, chunks, root);
    rank.poll_fault_kill()?;
    let mut sched = ScatterSchedule::new(rank.size(), rank.id(), root);
    drive_checked(
        rank,
        &mut [],
        &mut slots,
        ReduceOp::Sum,
        &mut sched,
        Some(Instant::now() + timeout),
    )?;
    Ok(std::mem::take(&mut slots[rank.id()]))
}

/// Set up the gather slot array: this rank's contribution in its own slot.
fn gather_slots(rank: &Rank, data: Vec<f32>) -> Vec<Vec<f32>> {
    let mut slots: Vec<Vec<f32>> = (0..rank.size()).map(|_| Vec::new()).collect();
    slots[rank.id()] = data;
    slots
}

/// Gather: every rank contributes `data`; the root returns all
/// contributions indexed by rank, others return an empty vector.
pub fn gather(rank: &Rank, data: Vec<f32>, root: usize) -> Vec<Vec<f32>> {
    let mut slots = gather_slots(rank, data);
    let mut sched = GatherSchedule::new(rank.size(), rank.id(), root);
    drive_blocking(rank, &mut [], &mut slots, ReduceOp::Sum, &mut sched);
    if rank.id() == root {
        slots
    } else {
        Vec::new()
    }
}

/// Timeout-aware [`gather`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_gather(
    rank: &Rank,
    data: Vec<f32>,
    root: usize,
    timeout: Duration,
) -> Result<Vec<Vec<f32>>, CommError> {
    let mut slots = gather_slots(rank, data);
    rank.poll_fault_kill()?;
    let mut sched = GatherSchedule::new(rank.size(), rank.id(), root);
    drive_checked(
        rank,
        &mut [],
        &mut slots,
        ReduceOp::Sum,
        &mut sched,
        Some(Instant::now() + timeout),
    )?;
    Ok(if rank.id() == root { slots } else { Vec::new() })
}

/// Two-level allreduce mirroring Summit's hierarchy: ranks are grouped
/// into "nodes" of `group_size`; each group linearly reduces to its leader
/// (groups are small — the NVLink triplet/node — so a linear gather-reduce
/// is what NCCL does), leaders ring reduce-scatter + allgather among
/// themselves chunked by group id, then each leader broadcasts back into
/// its group. The result equals a flat allreduce.
///
/// # Panics
/// Panics unless the world size is a multiple of `group_size`.
pub fn hierarchical_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, group_size: usize) {
    let mut sched = HierarchicalSchedule::new(rank.size(), rank.id(), buf.len(), group_size);
    drive_blocking(rank, buf, &mut [], op, &mut sched);
}

/// Timeout-aware [`hierarchical_allreduce`]: same schedule under checked,
/// deadline-bounded receives, so drop/corrupt/kill faults targeting any of
/// its phases (tags 13–16) surface as [`CommError`] instead of hanging.
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`hierarchical_allreduce`].
pub fn try_hierarchical_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    group_size: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let mut sched = HierarchicalSchedule::new(rank.size(), rank.id(), buf.len(), group_size);
    drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Flat allreduce convenience wrapper choosing the hierarchical path when
/// the world tiles into `group_size`, plain ring otherwise.
pub fn auto_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, group_size: usize) {
    if group_size > 1 && rank.size().is_multiple_of(group_size) && rank.size() > group_size {
        hierarchical_allreduce(rank, buf, op, group_size);
    } else {
        ring_allreduce(rank, buf, op);
    }
}

/// Broadcast companion for the extended set (binomial tree, fixed-size
/// buffers — the `_into` surface).
pub use crate::collectives::binomial_broadcast_into as broadcast;

/// All-gather personalized payloads via gather + broadcast (convenience
/// for small control-plane messages; bandwidth-optimal paths should use
/// `ring_allgather`).
pub fn gather_then_broadcast(rank: &Rank, data: Vec<f32>, root: usize) -> Vec<Vec<f32>> {
    let p = rank.size();
    let gathered = gather(rank, data, root);
    // Broadcast a fixed-size header (count + per-rank lengths — every rank
    // knows p, so the header needs no growable buffer) and then the flat
    // payload, sized from the header.
    let mut header = vec![0.0f32; p + 1];
    let mut flat = Vec::new();
    if rank.id() == root {
        header[0] = gathered.len() as f32;
        for (h, g) in header[1..].iter_mut().zip(&gathered) {
            *h = g.len() as f32;
        }
        for g in &gathered {
            flat.extend_from_slice(g);
        }
    }
    binomial_broadcast_into(rank, &mut header, root);
    let total: usize = header[1..].iter().map(|&l| l as usize).sum();
    flat.resize(total, 0.0);
    binomial_broadcast_into(rank, &mut flat, root);
    let count = header[0] as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 0usize;
    for i in 0..count {
        let len = header[1 + i] as usize;
        out.push(flat[off..off + len].to_vec());
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    #[test]
    fn alltoall_power_of_two_and_odd() {
        for p in [2usize, 4, 8, 3, 5, 7] {
            let out = World::run(p, |rank| {
                // Rank i sends [i·p + j] to rank j.
                let send: Vec<Vec<f32>> =
                    (0..p).map(|j| vec![(rank.id() * p + j) as f32]).collect();
                alltoall(rank, send)
            });
            for (i, recv) in out.iter().enumerate() {
                for (j, buf) in recv.iter().enumerate() {
                    assert_eq!(buf, &vec![(j * p + i) as f32], "p={p} rank {i} from {j}");
                }
            }
        }
    }

    /// Blocks above the Bruck threshold exercise the direct pairwise
    /// schedule (the small-block test above lands on Bruck).
    #[test]
    fn alltoall_large_blocks_take_the_pairwise_path() {
        let n = BRUCK_MAX_BYTES / 4 + 1;
        for p in [4usize, 5] {
            let out = World::run(p, |rank| {
                let send: Vec<Vec<f32>> = (0..p)
                    .map(|j| vec![(rank.id() * p + j) as f32; n])
                    .collect();
                alltoall(rank, send)
            });
            for (i, recv) in out.iter().enumerate() {
                for (j, buf) in recv.iter().enumerate() {
                    assert_eq!(buf, &vec![(j * p + i) as f32; n], "p={p} rank {i} from {j}");
                }
            }
        }
    }

    /// Ragged block lengths are ineligible for Bruck (its combined
    /// messages split evenly) and must stay on the pairwise schedule.
    #[test]
    fn alltoall_ragged_blocks_stay_pairwise() {
        let p = 4;
        let out = World::run(p, |rank| {
            let send: Vec<Vec<f32>> = (0..p)
                .map(|j| vec![(rank.id() * p + j) as f32; j + 1])
                .collect();
            alltoall(rank, send)
        });
        for (i, recv) in out.iter().enumerate() {
            for (j, buf) in recv.iter().enumerate() {
                assert_eq!(
                    buf,
                    &vec![(j * p + i) as f32; i + 1],
                    "p={p} rank {i} from {j}"
                );
            }
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        for root in 0..4 {
            let out = World::run(4, |rank| {
                let chunks = (rank.id() == root)
                    .then(|| (0..4).map(|i| vec![i as f32, (i * i) as f32]).collect());
                scatter(rank, chunks, root)
            });
            for (i, chunk) in out.iter().enumerate() {
                assert_eq!(chunk, &vec![i as f32, (i * i) as f32]);
            }
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let root = 2;
        let out = World::run(5, |rank| {
            gather(rank, vec![rank.id() as f32; rank.id() + 1], root)
        });
        for (i, g) in out[root].iter().enumerate() {
            assert_eq!(g, &vec![i as f32; i + 1]);
        }
        assert!(out[0].is_empty());
    }

    #[test]
    fn hierarchical_equals_flat_allreduce() {
        for (p, g) in [(6usize, 3usize), (8, 2), (12, 6), (4, 4), (9, 3)] {
            let out = World::run(p, |rank| {
                let mut buf: Vec<f32> = (0..10).map(|i| (rank.id() * 10 + i) as f32).collect();
                hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, g);
                buf
            });
            // Flat reference.
            let mut want = vec![0.0f32; 10];
            for r in 0..p {
                for (w, i) in want.iter_mut().zip(0..10) {
                    *w += (r * 10 + i) as f32;
                }
            }
            for (r, got) in out.iter().enumerate() {
                for (a, b) in got.iter().zip(&want) {
                    assert!((a - b).abs() < 1e-3, "p={p} g={g} rank={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn hierarchical_max_and_min() {
        let out = World::run(6, |rank| {
            let mut buf = vec![rank.id() as f32];
            hierarchical_allreduce(rank, &mut buf, ReduceOp::Max, 3);
            buf[0]
        });
        assert!(out.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn auto_allreduce_picks_working_path() {
        for p in [4usize, 5, 6, 12] {
            let out = World::run(p, |rank| {
                let mut buf = vec![1.0f32; 7];
                auto_allreduce(rank, &mut buf, ReduceOp::Sum, 3);
                buf[0]
            });
            assert!(out.iter().all(|&v| (v - p as f32).abs() < 1e-4), "p={p}");
        }
    }

    #[test]
    fn gather_then_broadcast_everyone_sees_all() {
        let out = World::run(4, |rank| {
            gather_then_broadcast(rank, vec![rank.id() as f32; rank.id()], 1)
        });
        for result in out {
            assert_eq!(result.len(), 4);
            for (i, v) in result.iter().enumerate() {
                assert_eq!(v, &vec![i as f32; i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "a rank panicked")]
    fn hierarchical_requires_tiling() {
        World::run(5, |rank| {
            let mut buf = vec![0.0f32; 4];
            hierarchical_allreduce(rank, &mut buf, ReduceOp::Sum, 3);
        });
    }

    /// Every extended try_ twin runs the identical engine schedule, so a
    /// fault-free checked run matches the blocking one exactly.
    #[test]
    fn try_twins_match_blocking() {
        use std::time::Duration;
        let t = Duration::from_secs(5);
        for p in [2usize, 4, 6] {
            let plain = World::run(p, |rank| {
                let send: Vec<Vec<f32>> =
                    (0..p).map(|j| vec![(rank.id() * p + j) as f32]).collect();
                let a2a = alltoall(rank, send);
                let chunks = (rank.id() == 0).then(|| (0..p).map(|i| vec![i as f32]).collect());
                let sc = scatter(rank, chunks, 0);
                let ga = gather(rank, vec![rank.id() as f32], 1 % p);
                let mut h = vec![rank.id() as f32; 6];
                hierarchical_allreduce(rank, &mut h, ReduceOp::Sum, 2.min(p));
                (a2a, sc, ga, h)
            });
            let checked = World::run(p, |rank| {
                let send: Vec<Vec<f32>> =
                    (0..p).map(|j| vec![(rank.id() * p + j) as f32]).collect();
                let a2a = try_alltoall(rank, send, t).unwrap();
                let chunks = (rank.id() == 0).then(|| (0..p).map(|i| vec![i as f32]).collect());
                let sc = try_scatter(rank, chunks, 0, t).unwrap();
                let ga = try_gather(rank, vec![rank.id() as f32], 1 % p, t).unwrap();
                let mut h = vec![rank.id() as f32; 6];
                try_hierarchical_allreduce(rank, &mut h, ReduceOp::Sum, 2.min(p), t).unwrap();
                (a2a, sc, ga, h)
            });
            for (a, b) in plain.iter().zip(&checked) {
                assert_eq!(a.0, b.0, "alltoall p={p}");
                assert_eq!(a.1, b.1, "scatter p={p}");
                assert_eq!(a.2, b.2, "gather p={p}");
                for (x, y) in a.3.iter().zip(&b.3) {
                    assert_eq!(x.to_bits(), y.to_bits(), "hierarchical p={p}");
                }
            }
        }
    }

    #[test]
    fn try_hierarchical_surfaces_dropped_leader_message() {
        use crate::faults::{FaultPlan, TagClass};
        use std::sync::Arc;
        use std::time::Duration;
        // Drop a leader-ring reduce-scatter message (tag id 14).
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 2, TagClass::Blocking(14), 0));
        let (out, _) = World::run_with_faults(4, plan, |rank| {
            let mut buf = vec![1.0f32; 8];
            let res = try_hierarchical_allreduce(
                rank,
                &mut buf,
                ReduceOp::Sum,
                2,
                Duration::from_millis(200),
            );
            rank.barrier();
            res.is_err()
        });
        assert!(
            out.iter().any(|&e| e),
            "a dropped leader-ring message must surface as an error"
        );
    }
}
