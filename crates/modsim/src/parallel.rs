//! Strip domain decomposition with real halo exchange over `summit-comm`.
//!
//! This is the communication pattern of every grid-based Engineering /
//! Earth Science code in the survey: each rank owns a horizontal strip of
//! the periodic domain and exchanges one-cell halos with its ring
//! neighbors every step. Ranks are OS threads; the exchange is real
//! message passing through the [`summit_comm::world`] channels, and the
//! parallel solution is verified (tests) to match the serial solver
//! exactly.

use summit_comm::world::World;

use crate::grid::Field;
use crate::solver::{Reaction, Solver};

/// A parallel diffusion–reaction solver over thread-ranks.
///
/// The reaction term must be a pure function here (it crosses thread
/// boundaries); use [`Reaction::exact_value`] to mirror the serial exact
/// kinetics.
#[derive(Clone, Copy)]
pub struct ParallelSolver {
    /// Diffusion number `D·dt/dx²` (≤ 0.25).
    pub alpha: f32,
    /// Reaction time step.
    pub dt: f32,
    /// Optional pointwise reaction rate `u ↦ R(u)`.
    pub reaction: Option<fn(f32) -> f32>,
}

impl ParallelSolver {
    /// Run `steps` of the solver over `ranks` thread-ranks, strip-decomposing
    /// `init` along y. Returns the assembled global field.
    ///
    /// # Panics
    /// Panics if `init.ny()` is not divisible by `ranks`, a strip would be
    /// thinner than the halo (1 row), or the stability bound is violated.
    pub fn run(&self, init: &Field, ranks: usize, steps: u32) -> Field {
        self.run_in(&mut World::new(ranks), init, steps)
    }

    /// Like [`ParallelSolver::run`] but executing on a caller-provided
    /// [`World`] (`ranks = world.size()`): the scheduler's execution
    /// backend runs stencil jobs inside its own leased worlds this way.
    /// The world is reusable afterwards.
    ///
    /// # Panics
    /// Same contract as [`ParallelSolver::run`].
    pub fn run_in(&self, world: &mut World, init: &Field, steps: u32) -> Field {
        let ranks = world.size();
        assert!(self.alpha > 0.0 && self.alpha <= 0.25, "unstable alpha");
        assert!(ranks > 0, "need ranks");
        assert!(
            init.ny().is_multiple_of(ranks),
            "rows ({}) must divide over ranks ({ranks})",
            init.ny()
        );
        let rows_per_rank = init.ny() / ranks;
        assert!(rows_per_rank >= 1, "strip thinner than the halo");
        let nx = init.nx();
        let alpha = self.alpha;
        let dt = self.dt;
        let reaction = self.reaction;

        let strips = world.execute(|rank| {
            let me = rank.id();
            let p = rank.size();
            // Local strip with its own halo.
            let mut local = Field::new(rows_per_rank, nx);
            for r in 0..rows_per_rank {
                for c in 0..nx {
                    local.set_interior(
                        r,
                        c,
                        init.get((me * rows_per_rank + r) as isize, c as isize),
                    );
                }
            }
            let up = (me + p - 1) % p;
            let down = (me + 1) % p;
            for step in 0..steps {
                // Halo exchange along y (periodic ring). With one rank the
                // periodic images are local.
                if p == 1 {
                    local.refresh_y_halo_periodic();
                } else {
                    let top_row = local.interior_row(0);
                    let bottom_row = local.interior_row(rows_per_rank - 1);
                    // Send my top row up; it becomes `up`'s bottom halo.
                    let from_down = rank.send_recv(up, down, u64::from(step) * 2, top_row);
                    local.set_halo_row(rows_per_rank as isize, &from_down);
                    // Send my bottom row down; it becomes `down`'s top halo.
                    let from_up = rank.send_recv(down, up, u64::from(step) * 2 + 1, bottom_row);
                    local.set_halo_row(-1, &from_up);
                }
                local.refresh_x_halo();

                // Stencil update.
                let mut next = local.clone();
                for r in 0..rows_per_rank {
                    for c in 0..nx {
                        let (ri, ci) = (r as isize, c as isize);
                        let u = local.get(ri, ci);
                        let lap = local.get(ri - 1, ci)
                            + local.get(ri + 1, ci)
                            + local.get(ri, ci - 1)
                            + local.get(ri, ci + 1)
                            - 4.0 * u;
                        let rate = reaction.map_or(0.0, |f| f(u));
                        next.set_interior(r, c, u + alpha * lap + dt * rate);
                    }
                }
                local = next;
            }
            // Return the interior rows.
            (0..rows_per_rank)
                .map(|r| local.interior_row(r))
                .collect::<Vec<_>>()
        });

        // Assemble the global field.
        let mut out = Field::new(init.ny(), nx);
        for (rank_id, strip) in strips.into_iter().enumerate() {
            for (r, row) in strip.into_iter().enumerate() {
                for (c, v) in row.into_iter().enumerate() {
                    out.set_interior(rank_id * rows_per_rank + r, c, v);
                }
            }
        }
        out
    }

    /// The equivalent serial run (the verification reference). Uses the same
    /// reaction function.
    pub fn run_serial(&self, init: &Field, steps: u32) -> Field {
        let mut solver = Solver::new(
            init.clone(),
            self.alpha,
            self.dt,
            match self.reaction {
                None => Reaction::None,
                Some(_) => Reaction::None, // reaction handled below
            },
        );
        match self.reaction {
            None => {
                solver.step(steps);
                solver.field().clone()
            }
            Some(f) => {
                // Manual loop mirroring the parallel kernel exactly.
                let mut field = init.clone();
                for _ in 0..steps {
                    field.refresh_y_halo_periodic();
                    field.refresh_x_halo();
                    let mut next = field.clone();
                    for r in 0..field.ny() {
                        for c in 0..field.nx() {
                            let (ri, ci) = (r as isize, c as isize);
                            let u = field.get(ri, ci);
                            let lap = field.get(ri - 1, ci)
                                + field.get(ri + 1, ci)
                                + field.get(ri, ci - 1)
                                + field.get(ri, ci + 1)
                                - 4.0 * u;
                            next.set_interior(r, c, u + self.alpha * lap + self.dt * f(u));
                        }
                    }
                    field = next;
                }
                field
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinetics(u: f32) -> f32 {
        Reaction::exact_value(2.0, u)
    }

    #[test]
    fn parallel_equals_serial_pure_diffusion() {
        let mut init = Field::new(24, 16);
        init.fill_test_pattern();
        let solver = ParallelSolver {
            alpha: 0.2,
            dt: 0.05,
            reaction: None,
        };
        let serial = solver.run_serial(&init, 40);
        for ranks in [1usize, 2, 3, 4, 6] {
            let parallel = solver.run(&init, ranks, 40);
            let err = parallel.max_abs_diff(&serial);
            assert!(err < 1e-5, "{ranks} ranks diverged by {err}");
        }
    }

    #[test]
    fn parallel_equals_serial_with_reaction() {
        let mut init = Field::new(12, 12);
        init.fill_test_pattern();
        let solver = ParallelSolver {
            alpha: 0.15,
            dt: 0.05,
            reaction: Some(kinetics),
        };
        let serial = solver.run_serial(&init, 30);
        let parallel = solver.run(&init, 4, 30);
        assert!(parallel.max_abs_diff(&serial) < 1e-5);
    }

    #[test]
    fn parallel_diffusion_conserves_mass() {
        let mut init = Field::new(16, 16);
        init.fill_test_pattern();
        let mass0 = init.total_mass();
        let solver = ParallelSolver {
            alpha: 0.25,
            dt: 0.05,
            reaction: None,
        };
        let out = solver.run(&init, 4, 60);
        assert!((out.total_mass() - mass0).abs() < 1e-3 * mass0.max(1.0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_decomposition_rejected() {
        let init = Field::new(10, 8);
        ParallelSolver {
            alpha: 0.2,
            dt: 0.05,
            reaction: None,
        }
        .run(&init, 3, 1);
    }
}
