//! Property-based tests for the scaling models.

use proptest::prelude::*;
use summit_perf::crossover::CommCrossover;
use summit_perf::model::ScalingModel;
use summit_perf::parallelism::{HybridPlanner, MemoryModel, ParallelStrategy};
use summit_workloads::Workload;

fn zoo(idx: usize) -> Workload {
    let all = Workload::all();
    all[idx % all.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Throughput never exceeds linear scaling, efficiency stays in (0, 1]
    /// relative to any base, for every zoo workload and configuration.
    ///
    /// Node counts are capped at 576: every distinct (workload, nodes)
    /// draw simulates a fresh full ring schedule, and the full-machine
    /// p = 4608 path is pinned deterministically in `summit_perf::model`'s
    /// unit tests — randomizing it here would only re-run multi-second
    /// simulations without new coverage.
    #[test]
    fn efficiency_bounded(widx in 0usize..9, nodes in 1u32..576, base in 1u32..64,
                          overlap in 0.0f64..1.0) {
        prop_assume!(nodes >= base);
        let m = ScalingModel {
            overlap,
            ..ScalingModel::summit_defaults(zoo(widx))
        };
        let eff = m.efficiency(nodes, base);
        prop_assert!(eff > 0.0 && eff <= 1.0 + 1e-9, "eff {eff}");
        let tp1 = m.throughput(base);
        let tpn = m.throughput(nodes);
        prop_assert!(tpn <= tp1 * f64::from(nodes) / f64::from(base) * (1.0 + 1e-9));
    }

    /// Step decomposition components are non-negative and total as summed.
    #[test]
    fn step_components_sane(widx in 0usize..9, nodes in 1u32..576) {
        let m = ScalingModel::summit_defaults(zoo(widx));
        let s = m.step(nodes);
        prop_assert!(s.compute > 0.0);
        prop_assert!(s.exposed_comm >= 0.0);
        prop_assert!(s.exposed_io >= 0.0);
        prop_assert!(s.overhead >= 0.0);
        prop_assert!((s.total() - (s.compute + s.exposed_comm + s.exposed_io + s.overhead)).abs()
                     < 1e-15);
    }

    /// More overlap never hurts; more compression never hurts.
    #[test]
    fn monotone_levers(widx in 0usize..9, nodes in 2u32..576,
                       o1 in 0.0f64..1.0, o2 in 0.0f64..1.0,
                       c1 in 1.0f64..64.0, c2 in 1.0f64..64.0) {
        let base = ScalingModel::summit_defaults(zoo(widx));
        let (o_lo, o_hi) = if o1 <= o2 { (o1, o2) } else { (o2, o1) };
        let less = ScalingModel { overlap: o_lo, ..base };
        let more = ScalingModel { overlap: o_hi, ..base };
        prop_assert!(more.throughput(nodes) >= less.throughput(nodes) - 1e-9);

        let (c_lo, c_hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        let raw = ScalingModel { compression_factor: c_lo, overlap: 0.0, ..base };
        let squeezed = ScalingModel { compression_factor: c_hi, overlap: 0.0, ..base };
        prop_assert!(squeezed.throughput(nodes) >= raw.throughput(nodes) - 1e-9);
    }

    /// The crossover is linear in bandwidth and compute time.
    #[test]
    fn crossover_scaling_laws(bw_scale in 0.1f64..10.0, t_scale in 0.1f64..10.0) {
        let base = CommCrossover::summit_bert_anchor();
        let scaled = CommCrossover {
            step_compute_seconds: base.step_compute_seconds * t_scale,
            link: summit_machine::LinkModel::new(base.link.alpha, base.link.beta * bw_scale),
            ..base
        };
        let ratio = scaled.crossover_params() / base.crossover_params();
        prop_assert!((ratio - bw_scale * t_scale).abs() / (bw_scale * t_scale) < 1e-9);
    }

    /// Memory model: sharding over more ways never increases per-GPU bytes;
    /// a feasible strategy stays feasible with more ways.
    #[test]
    fn memory_monotone_in_ways(params_m in 1u32..100_000, tensor in 1u32..7,
                               pp1 in 0u32..8, pp2 in 0u32..8) {
        let w = Workload::transformer_lm("probe", f64::from(params_m) * 1e6);
        let mem = MemoryModel::for_workload(&w);
        let (lo, hi) = if pp1 <= pp2 { (1u32 << pp1, 1u32 << pp2) } else { (1 << pp2, 1 << pp1) };
        let small = ParallelStrategy { data: 1, tensor, pipeline: lo, micro_batches: 4 };
        let big = ParallelStrategy { data: 1, tensor, pipeline: hi, micro_batches: 4 };
        prop_assert!(mem.bytes_per_gpu(&big, 1) <= mem.bytes_per_gpu(&small, 1) + 1.0);
    }

    /// The planner never returns a strategy that exceeds the GPU budget or
    /// fails the memory check.
    #[test]
    fn planner_output_valid(params_m in 100u32..50_000, nodes in 1u32..512) {
        let w = Workload::transformer_lm("probe", f64::from(params_m) * 1e6);
        let planner = HybridPlanner::summit(nodes, 30.0e12);
        if let Some(best) = planner.best(&w) {
            prop_assert!(best.strategy.gpus() <= planner.gpus);
            let mem = MemoryModel::for_workload(&w);
            prop_assert!(mem.fits(&best.strategy, best.micro_batch, planner.node.gpu.hbm_bytes));
            prop_assert!(best.throughput > 0.0);
        }
    }
}
