//! CI gate over the elastic-shrink vs rollback-and-replay study.
//!
//! Quantifies, on the simulated full machine, what the elastic recovery
//! path in `summit_dl::recovery` buys over the classic
//! checkpoint-rollback-and-replay path it replaces. One rank dies at
//! p = 27,648; both paths are costed in rank-seconds over the routed
//! fat-tree fabric ([`summit_comm::sim::elastic_shrink_study`]):
//!
//! * **elastic** — survivor vote (1-element all-to-all) + two quiesce
//!   barriers (token gather + release scatter) + the first allreduce step
//!   at p − 1, paid by the p − 1 survivors;
//! * **replay** — a scheduler requeue stall for a replacement rank +
//!   `SUMMIT_ELASTIC_REPLAY` (default 10) replayed allreduce steps at p,
//!   paid by all p ranks. The stall is **measured**, not assumed: a small
//!   requeue probe is injected into the batch simulator's EASY-backfill
//!   queue under a seeded background trace and its mean wait is used
//!   ([`summit_sched::facility::measured_requeue_wait_hours`]);
//!   `SUMMIT_ELASTIC_STALL_S` still overrides it for what-if runs.
//!
//! The gate asserts the study's internal composition identities, that the
//! shrink protocol itself is sub-second (it is control-plane only), and
//! that the elastic path wins by at least `SUMMIT_ELASTIC_MIN_ADVANTAGE`
//! (default 10×) under the default stall. It also reports the break-even
//! stall — the requeue time below which replay would win — which the
//! advantage formula yields in closed form, and a small-p sweep so the
//! scaling trend is visible in the JSON.
//!
//! Writes `target/BENCH_elastic.json`; `SUMMIT_BENCH_RECORD=1` appends
//! the headline metrics to the committed `BENCH_trajectory.json`. The
//! trajectory leg fails on a >10% advantage regression
//! (`SUMMIT_GATE_SKIP_TRAJECTORY=1` skips it).

use std::collections::BTreeMap;
use std::time::Instant;

use summit_bench::harness;
use summit_comm::sim;
use summit_machine::ClusterModel;

/// Full-machine world: 4,608 nodes × 6 GPUs.
const P: usize = 27_648;
/// 100 MB of f32 gradients — the paper's Section VI-B payload.
const ELEMS: usize = 25_000_000;

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let replay_steps = env_f64("SUMMIT_ELASTIC_REPLAY", 10.0) as usize;
    // Measure the requeue stall in the simulated batch queue: a 2-node
    // probe resubmitted amid a seeded background mix, mean wait over 6
    // injection points. The env override still wins for what-if runs.
    let measured_stall_s = summit_sched::facility::measured_requeue_wait_hours(
        &summit_machine::MachineSpec::summit(),
        90,
        6,
    ) * 3600.0;
    let stall_override = std::env::var("SUMMIT_ELASTIC_STALL_S")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let stall_s = stall_override.unwrap_or(measured_stall_s);
    let min_advantage = env_f64("SUMMIT_ELASTIC_MIN_ADVANTAGE", 10.0);
    let mut failures: Vec<String> = Vec::new();

    println!(
        "elastic_gate: one rank dies at p = {P}, {ELEMS} gradient elements, \
         replay = {replay_steps} steps, requeue stall = {stall_s:.0} s \
         ({} — measured queue wait {measured_stall_s:.0} s)",
        if stall_override.is_some() {
            "env override"
        } else {
            "measured in the batch-queue simulator"
        }
    );
    let t0 = Instant::now();
    let study = sim::elastic_shrink_study(P, ELEMS, replay_steps, stall_s, ClusterModel::summit());
    let wall = t0.elapsed().as_secs_f64();
    println!(
        "  shrink protocol  {:>10.6} s  (vote + 2 quiesce barriers, control plane only)",
        study.shrink_protocol_s
    );
    println!(
        "  step at p-1      {:>10.6} s   step at p {:>10.6} s",
        study.step_after_shrink_s, study.step_before_shrink_s
    );
    println!(
        "  elastic total    {:>10.3} s × {} survivors = {:.3e} rank-seconds",
        study.elastic_total_s,
        P - 1,
        study.elastic_rank_seconds
    );
    println!(
        "  replay total     {:>10.3} s × {} ranks     = {:.3e} rank-seconds",
        study.replay_total_s, P, study.replay_rank_seconds
    );
    let node_hours_saved = (study.replay_rank_seconds - study.elastic_rank_seconds) / 6.0 / 3600.0;
    // Advantage is linear in the stall, so the break-even requeue time —
    // below which rollback-and-replay would win — falls out in closed form.
    let break_even_stall = (study.elastic_total_s * (P - 1) as f64 / P as f64
        - replay_steps as f64 * study.step_before_shrink_s)
        .max(0.0);
    println!(
        "  advantage {:.1}×, {node_hours_saved:.1} node-hours saved per failure, \
         break-even stall {break_even_stall:.3} s  ({wall:.1} s simulated)",
        study.advantage
    );

    // The study must be internally consistent (same identities the unit
    // test pins at small p, re-checked here at full scale).
    if study.elastic_total_s != study.shrink_protocol_s + study.step_after_shrink_s {
        failures.push("elastic_total_s is not protocol + first step at p-1".into());
    }
    if study.replay_total_s != stall_s + replay_steps as f64 * study.step_before_shrink_s {
        failures.push("replay_total_s is not stall + replayed steps at p".into());
    }
    if !(study.shrink_protocol_s > 0.0 && study.shrink_protocol_s < 1.0) {
        failures.push(format!(
            "shrink protocol is {:.3} s — the vote and barriers carry one element each and must \
             stay sub-second even at p = {P}",
            study.shrink_protocol_s
        ));
    }
    if study.advantage < min_advantage {
        failures.push(format!(
            "elastic advantage {:.1}× is below the {min_advantage:.0}× floor under a \
             {stall_s:.0} s stall",
            study.advantage
        ));
    }

    // Scaling sweep at proportionally-shrunk payloads so the trend is
    // cheap to simulate and visible in the JSON.
    let mut rows = String::new();
    for nodes in [8u32, 64, 512] {
        let p = nodes as usize * 6;
        let elems = ELEMS * p / P;
        let s = sim::elastic_shrink_study(
            p,
            elems,
            replay_steps,
            stall_s,
            ClusterModel::summit_like(nodes),
        );
        println!(
            "  sweep p = {p:<5} protocol {:.6} s  advantage {:.1}×",
            s.shrink_protocol_s, s.advantage
        );
        if s.advantage <= 1.0 {
            failures.push(format!(
                "sweep p = {p}: elastic does not beat replay ({:.2}×)",
                s.advantage
            ));
        }
        rows.push_str(&format!(
            "    {{\"ranks\": {p}, \"elems\": {elems}, \"protocol_s\": {:.6e}, \
             \"elastic_rank_s\": {:.6e}, \"replay_rank_s\": {:.6e}, \"advantage\": {:.4}}},\n",
            s.shrink_protocol_s, s.elastic_rank_seconds, s.replay_rank_seconds, s.advantage
        ));
    }
    rows.push_str(&format!(
        "    {{\"ranks\": {P}, \"elems\": {ELEMS}, \"protocol_s\": {:.6e}, \
         \"elastic_rank_s\": {:.6e}, \"replay_rank_s\": {:.6e}, \"advantage\": {:.4}}},\n",
        study.shrink_protocol_s,
        study.elastic_rank_seconds,
        study.replay_rank_seconds,
        study.advantage
    ));

    let mut metrics = BTreeMap::new();
    metrics.insert("elastic_advantage".to_string(), study.advantage);
    metrics.insert(
        "elastic_rank_seconds".to_string(),
        study.elastic_rank_seconds,
    );
    metrics.insert("replay_rank_seconds".to_string(), study.replay_rank_seconds);
    metrics.insert("node_hours_saved".to_string(), node_hours_saved);
    metrics.insert("shrink_protocol_s".to_string(), study.shrink_protocol_s);
    let headline = metrics
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.6}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"elastic\",\n  \"world\": {P},\n  \"replay_steps\": {replay_steps},\n  \
         \"realloc_stall_s\": {stall_s},\n  \
         \"requeue_wait_measured_s\": {measured_stall_s:.6},\n  \
         \"break_even_stall_s\": {break_even_stall:.6},\n  \
         \"headline\": {{{headline}}},\n  \"sweep\": [\n{}  ]\n}}\n",
        rows.trim_end_matches(",\n").to_string() + "\n"
    );
    harness::write_bench_json("elastic", &json);
    harness::record_trajectory(&harness::TrajectoryEntry::now("elastic", metrics.clone()));

    // Regression leg: the study is a deterministic function of the fabric
    // model, so any drift in the committed advantage is a modeling change
    // that must be deliberate.
    harness::gate_trajectory(
        "elastic",
        &metrics,
        &|k| (k == "elastic_advantage").then_some(harness::Direction::HigherIsBetter),
        0.10,
        &mut failures,
    );

    if failures.is_empty() {
        println!("elastic_gate: PASS");
    } else {
        for f in &failures {
            eprintln!("elastic_gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
