//! The materials ML + Monte-Carlo loop of Liu et al. (paper Section V-A).
//!
//! Run with `cargo run --example materials_loop`.
//!
//! An MLP surrogate Hamiltonian drives Metropolis sampling of an alloy
//! lattice; active learning labels visited configurations with the exact
//! ("first-principles") energy and retrains. The refined surrogate then
//! predicts the order–disorder transition — the paper's "qualitative
//! predictions of phase transitions in high entropy alloys".

use summit_core::prelude::*;

fn main() {
    let campaign = MaterialsLoop {
        lattice_size: 10,
        iterations: 6,
        sweeps_per_iteration: 30,
        labels_per_iteration: 60,
        temperature: 2.5,
        seed: 17,
    };
    println!(
        "Active-learning loop on a {0}x{0} alloy lattice (T = {1}):\n",
        campaign.lattice_size, campaign.temperature
    );
    let mut outcome = campaign.run();
    println!("iteration  surrogate RMSE on freshly visited states");
    for (i, rmse) in outcome.rmse_per_iteration.iter().enumerate() {
        println!(
            "  {:>3}      {:.4}  {}",
            i,
            rmse,
            "#".repeat((rmse * 200.0) as usize)
        );
    }
    println!(
        "\n\"DFT\" evaluations spent: {} (vs {} states visited in total)",
        outcome.dft_evaluations,
        campaign.iterations * campaign.sweeps_per_iteration
    );

    println!("\nOrder–disorder transition from the surrogate-driven sampler:");
    let temps = [1.0f32, 1.5, 2.0, 2.27, 2.6, 3.2, 4.0];
    let sweep = campaign.magnetization_sweep(&mut outcome.surrogate, &temps, 40);
    println!("  T       |m|");
    for (t, m) in sweep {
        println!("  {t:<6.2} {m:>5.2}  {}", "#".repeat((m * 40.0) as usize));
    }
    println!("\n(The 2D Ising critical temperature is T_c ≈ 2.27 J/k_B.)");
}
