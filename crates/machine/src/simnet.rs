//! A bulk-synchronous network simulator over the fat tree.
//!
//! The α–β collective models assume contention-free links. This simulator
//! checks that assumption (and quantifies its violation) by executing
//! communication *schedules* — rounds of point-to-point transfers — against
//! per-resource serialization: each node's injection (send) and ejection
//! (receive) link carries one byte stream at a time, and each leaf switch's
//! uplink bundle carries at most `nodes_per_leaf / taper` concurrent
//! streams' worth of bandwidth. A round completes when its slowest resource
//! drains; the next round then starts (bulk-synchronous, which matches how
//! ring/tree collectives synchronize).
//!
//! Validation (tested): a simulated ring allreduce with one rank per node
//! matches the textbook `2(p−1)(α + m/(pβ))` formula to within rounding;
//! oversubscribing nodes (two ranks each) doubles the time; tapering the
//! tree slows only schedules that cross the spine.

use std::collections::HashMap;

use serde::Serialize;

use crate::topology::FatTree;

/// One point-to-point transfer within a round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Transfer {
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Payload bytes.
    pub bytes: f64,
}

/// Outcome of simulating a schedule.
#[derive(Debug, Clone, Serialize)]
pub struct SimOutcome {
    /// Total simulated seconds.
    pub seconds: f64,
    /// Per-round seconds.
    pub round_seconds: Vec<f64>,
    /// The bottleneck description of the slowest round.
    pub bottleneck: &'static str,
}

/// The simulator.
#[derive(Debug, Clone, Copy)]
pub struct SimNetwork {
    /// Topology under simulation.
    pub tree: FatTree,
}

impl SimNetwork {
    /// Create a simulator over a tree.
    pub fn new(tree: FatTree) -> Self {
        SimNetwork { tree }
    }

    /// Simulate one round of concurrent transfers. Returns (seconds,
    /// bottleneck label).
    ///
    /// # Panics
    /// Panics on self-transfers or out-of-range nodes.
    pub fn simulate_round(&self, transfers: &[Transfer]) -> (f64, &'static str) {
        let beta = self.tree.injection.beta;
        let mut send_load: HashMap<u32, f64> = HashMap::new();
        let mut recv_load: HashMap<u32, f64> = HashMap::new();
        let mut uplink_load: HashMap<u32, f64> = HashMap::new();
        let mut max_single = 0.0f64;
        for t in transfers {
            assert_ne!(t.src, t.dst, "self-transfer");
            let path = self.tree.path(t.src, t.dst);
            // Serialization loads: seconds of wire time per resource.
            let wire = t.bytes / beta;
            *send_load.entry(t.src).or_insert(0.0) += wire;
            *recv_load.entry(t.dst).or_insert(0.0) += wire;
            if self.tree.leaf_of(t.src) != self.tree.leaf_of(t.dst) {
                // Uplink bundle of the source leaf: capacity is
                // nodes_per_leaf/taper concurrent streams.
                *uplink_load.entry(self.tree.leaf_of(t.src)).or_insert(0.0) += wire;
            }
            max_single = max_single.max(path.transfer_time(t.bytes));
        }
        let max_map = |m: &HashMap<u32, f64>| m.values().copied().fold(0.0f64, f64::max);
        let send = max_map(&send_load);
        let recv = max_map(&recv_load);
        // Uplink bundle bandwidth = per-node bandwidth × nodes_per_leaf /
        // taper, so `load` seconds of single-stream wire time drain in
        // load · taper / nodes_per_leaf seconds.
        let uplink = max_map(&uplink_load) * self.tree.taper
            / f64::from(self.tree.nodes_per_leaf)
            / self.tree.adaptive_routing_quality;
        let (worst, label) = [
            (send, "injection"),
            (recv, "ejection"),
            (uplink, "leaf uplink"),
            (max_single, "wire latency"),
        ]
        .into_iter()
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("non-empty candidates");
        (worst.max(max_single), label)
    }

    /// Simulate a multi-round schedule (bulk-synchronous rounds).
    pub fn simulate(&self, rounds: &[Vec<Transfer>]) -> SimOutcome {
        let mut round_seconds = Vec::with_capacity(rounds.len());
        let mut bottleneck = "empty";
        let mut worst_round = 0.0f64;
        for round in rounds {
            let (secs, label) = if round.is_empty() {
                (0.0, "empty")
            } else {
                self.simulate_round(round)
            };
            if secs > worst_round {
                worst_round = secs;
                bottleneck = label;
            }
            round_seconds.push(secs);
        }
        SimOutcome {
            seconds: round_seconds.iter().sum(),
            round_seconds,
            bottleneck,
        }
    }

    /// Build the ring-allreduce schedule for `ranks` ranks placed
    /// round-robin over `nodes` nodes, message `bytes` per rank:
    /// `2(ranks−1)` rounds each moving `bytes/ranks` along the ring.
    ///
    /// # Panics
    /// Panics if `ranks < 2` or `nodes` is zero.
    pub fn ring_allreduce_schedule(ranks: u32, nodes: u32, bytes: f64) -> Vec<Vec<Transfer>> {
        assert!(ranks >= 2, "ring needs at least two ranks");
        assert!(nodes >= 1, "need nodes");
        let chunk = bytes / f64::from(ranks);
        let node_of = |rank: u32| rank % nodes;
        let mut rounds = Vec::with_capacity(2 * (ranks as usize - 1));
        for _ in 0..2 * (ranks - 1) {
            let mut round = Vec::with_capacity(ranks as usize);
            for r in 0..ranks {
                let next = (r + 1) % ranks;
                if node_of(r) != node_of(next) {
                    round.push(Transfer {
                        src: node_of(r),
                        dst: node_of(next),
                        bytes: chunk,
                    });
                }
            }
            rounds.push(round);
        }
        rounds
    }

    /// Build a shifted all-to-all schedule over `nodes` nodes, `bytes` per
    /// pair: `nodes − 1` rounds; in round s node i sends to `(i+s) % nodes`.
    pub fn alltoall_schedule(nodes: u32, bytes: f64) -> Vec<Vec<Transfer>> {
        assert!(nodes >= 2, "alltoall needs at least two nodes");
        (1..nodes)
            .map(|s| {
                (0..nodes)
                    .map(|i| Transfer {
                        src: i,
                        dst: (i + s) % nodes,
                        bytes,
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NodeSpec;
    use crate::LinkModel;

    fn net(nodes: u32) -> SimNetwork {
        SimNetwork::new(FatTree::summit_like(nodes))
    }

    /// One rank per node: the simulation reproduces the textbook ring time
    /// (latency per hop differs slightly because the simulator uses real
    /// path latencies, so compare the bandwidth term).
    #[test]
    fn ring_matches_analytic_model() {
        let nodes = 36u32;
        let bytes = 36.0 * 1.0e6; // divisible chunks
        let sim = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(nodes, nodes, bytes));
        let link = LinkModel::inter_node(&NodeSpec::summit());
        let expected_bw_term = 2.0 * f64::from(nodes - 1) / f64::from(nodes) * bytes / link.beta;
        // Simulated time = bandwidth term + per-round latencies.
        assert!(sim.seconds >= expected_bw_term);
        let latency_budget = 2.0 * f64::from(nodes - 1) * (link.alpha + 3.0 * 0.1e-6) * 1.5;
        assert!(
            sim.seconds <= expected_bw_term + latency_budget,
            "sim {} vs bw {}",
            sim.seconds,
            expected_bw_term
        );
    }

    /// Two ranks per node: the injection link serializes both ring streams,
    /// doubling the bandwidth term.
    #[test]
    fn oversubscription_doubles_time() {
        let nodes = 18u32;
        let bytes = 36.0 * 1.0e6;
        let one = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(nodes, nodes, bytes));
        let two = net(nodes).simulate(&SimNetwork::ring_allreduce_schedule(
            2 * nodes,
            nodes,
            bytes,
        ));
        let ratio = two.seconds / one.seconds;
        assert!(
            ratio > 1.7 && ratio < 2.3,
            "expected ~2x from sharing the NIC, got {ratio}"
        );
    }

    /// Tapering the tree slows spine-crossing schedules but not intra-leaf
    /// ones.
    #[test]
    fn taper_hits_only_cross_leaf_traffic() {
        let mut tapered = FatTree::summit_like(36);
        tapered.taper = 4.0;
        let sim_tapered = SimNetwork::new(tapered);
        let sim_full = net(36);
        // Intra-leaf round: nodes 0..18 pairwise within the leaf.
        let intra: Vec<Transfer> = (0..9)
            .map(|i| Transfer {
                src: i,
                dst: i + 9,
                bytes: 1.0e7,
            })
            .collect();
        let (t_full, _) = sim_full.simulate_round(&intra);
        let (t_tapered, _) = sim_tapered.simulate_round(&intra);
        assert!((t_full - t_tapered).abs() / t_full < 1e-9);
        // Cross-leaf all-to-all: the tapered uplink becomes the bottleneck.
        let rounds = SimNetwork::alltoall_schedule(36, 1.0e7);
        let full = sim_full.simulate(&rounds);
        let tapered_out = sim_tapered.simulate(&rounds);
        assert!(
            tapered_out.seconds > 1.5 * full.seconds,
            "{} vs {}",
            tapered_out.seconds,
            full.seconds
        );
    }

    #[test]
    fn alltoall_bottleneck_is_reported() {
        let rounds = SimNetwork::alltoall_schedule(36, 1.0e7);
        let out = net(36).simulate(&rounds);
        assert_eq!(out.round_seconds.len(), 35);
        assert!(["injection", "ejection", "leaf uplink"].contains(&out.bottleneck));
    }

    #[test]
    fn empty_round_is_free() {
        let out = net(4).simulate(&[vec![]]);
        assert_eq!(out.seconds, 0.0);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn self_transfer_rejected() {
        let _ = net(4).simulate_round(&[Transfer {
            src: 1,
            dst: 1,
            bytes: 1.0,
        }]);
    }

    /// Latency dominates tiny messages: the round time equals the wire
    /// latency, not the (near-zero) serialization loads.
    #[test]
    fn latency_floor_respected() {
        let n = net(40);
        let (t, label) = n.simulate_round(&[Transfer {
            src: 0,
            dst: 39, // crosses the spine
            bytes: 1.0,
        }]);
        let expected = n.tree.path(0, 39).transfer_time(1.0);
        assert!((t - expected).abs() < 1e-12);
        assert_eq!(label, "wire latency");
    }
}
