//! GEMM microkernel benchmarks for the persistent compute-pool runtime.
//!
//! * `gemm/*` — GFLOP/s of the three pooled matmul variants at 128³, 256³,
//!   and 512³ under the full machine core budget.
//! * `spawn_overhead/*` — A/B of the pre-pool scoped-spawn matmul (kept
//!   verbatim below as `scoped_spawn_matmul`) against the pooled packed
//!   kernel at identical sizes: the spawn-per-call cost plus the unpacked
//!   strided-`B` traversal is exactly what the pool + packing removed.
//!
//! Besides the criterion timings, the bench writes a machine-readable
//! summary to `target/BENCH_gemm.json` (GFLOP/s per variant/shape, the
//! scoped-vs-pooled speedup, and the pool's activity counters). In `--test`
//! mode (CI smoke) every measurement runs a single iteration.

use criterion::{BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Instant;
use summit_tensor::Matrix;

/// The paper-scale shapes: square m = k = n.
const SHAPES: [usize; 3] = [128, 256, 512];

fn square(n: usize, seed: u64) -> Matrix {
    let data = (0..n * n)
        .map(|i| {
            let v = seed.wrapping_add(i as u64).wrapping_mul(2654435761) % 29;
            v as f32 * 0.37 - 4.0
        })
        .collect();
    Matrix::from_vec(n, n, data)
}

/// The pre-pool `Matrix::matmul`, kept verbatim as the in-bench baseline:
/// every call above the parallelism threshold spawns scoped threads, walks
/// `B` strided (no packing), and pays a data-dependent `a == 0.0` branch in
/// the innermost loop.
fn scoped_spawn_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    let rows = a.rows();
    let n = b.cols();
    let run_rows = |rows_out: &mut [f32], row_range: std::ops::Range<usize>| {
        for (oi, i) in row_range.enumerate() {
            let a_row = a.row(i);
            let out_row = &mut rows_out[oi * n..(oi + 1) * n];
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    };
    if rows < 128 {
        run_rows(out.as_mut_slice(), 0..rows);
    } else {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(4)
            .min(rows);
        let chunk_rows = rows.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, chunk) in out.as_mut_slice().chunks_mut(chunk_rows * n).enumerate() {
                let start = t * chunk_rows;
                let end = (start + chunk.len() / n).min(rows);
                let run = &run_rows;
                s.spawn(move || run(chunk, start..end));
            }
        });
    }
    out
}

fn gemm_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for &s in &SHAPES {
        let a = square(s, 1);
        let b = square(s, 2);
        let mut out = Matrix::zeros(s, s);
        group.bench_with_input(BenchmarkId::new("matmul", s), &s, |bench, _| {
            bench.iter(|| {
                a.matmul_into(black_box(&b), &mut out);
                out.get(0, 0)
            })
        });
        group.bench_with_input(BenchmarkId::new("matmul_at_b", s), &s, |bench, _| {
            bench.iter(|| {
                a.matmul_at_b_into(black_box(&b), &mut out);
                out.get(0, 0)
            })
        });
        group.bench_with_input(BenchmarkId::new("matmul_a_bt", s), &s, |bench, _| {
            bench.iter(|| {
                a.matmul_a_bt_into(black_box(&b), &mut out);
                out.get(0, 0)
            })
        });
    }
    group.finish();
}

fn spawn_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("spawn_overhead");
    group.sample_size(10);
    for &s in &[256usize, 512] {
        let a = square(s, 3);
        let b = square(s, 4);
        let mut out = Matrix::zeros(s, s);
        group.bench_with_input(BenchmarkId::new("scoped_spawn", s), &s, |bench, _| {
            bench.iter(|| scoped_spawn_matmul(black_box(&a), black_box(&b)).get(0, 0))
        });
        group.bench_with_input(BenchmarkId::new("pooled", s), &s, |bench, _| {
            bench.iter(|| {
                a.matmul_into(black_box(&b), &mut out);
                out.get(0, 0)
            })
        });
    }
    group.finish();
}

/// Best-of-`iters` wall-clock seconds for `f` (1 iteration in smoke mode).
fn time_best(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Measure GFLOP/s per variant/shape plus the scoped-vs-pooled A/B and
/// write `target/BENCH_gemm.json`.
fn write_summary(smoke: bool) {
    let iters = if smoke { 1 } else { 5 };
    let mut entries = Vec::new();
    for &s in &SHAPES {
        let a = square(s, 1);
        let b = square(s, 2);
        let mut out = Matrix::zeros(s, s);
        let flops = 2.0 * (s as f64).powi(3);
        // Warm the pool and the packing scratch before timing.
        a.matmul_into(&b, &mut out);
        let mm = time_best(iters, || a.matmul_into(&b, &mut out));
        let atb = time_best(iters, || a.matmul_at_b_into(&b, &mut out));
        let abt = time_best(iters, || a.matmul_a_bt_into(&b, &mut out));
        for (name, secs) in [("matmul", mm), ("matmul_at_b", atb), ("matmul_a_bt", abt)] {
            entries.push(format!(
                "    {{\"variant\": \"{name}\", \"shape\": {s}, \"seconds\": {secs:.6}, \"gflops\": {:.3}}}",
                flops / secs / 1e9
            ));
        }
    }

    // Spawn-overhead A/B at the acceptance shape.
    let s = 512;
    let a = square(s, 3);
    let b = square(s, 4);
    let mut out = Matrix::zeros(s, s);
    a.matmul_into(&b, &mut out);
    let scoped = time_best(iters, || {
        black_box(scoped_spawn_matmul(&a, &b));
    });
    let pooled = time_best(iters, || a.matmul_into(&b, &mut out));
    let stats = summit_pool::global().stats();

    let json = format!
(
        "{{\n  \"bench\": \"gemm\",\n  \"cores\": {},\n  \"budget\": {},\n  \"results\": [\n{}\n  ],\n  \"spawn_overhead_ab\": {{\"shape\": {s}, \"scoped_seconds\": {scoped:.6}, \"pooled_seconds\": {pooled:.6}, \"speedup\": {:.3}}},\n  \"pool\": {{\"tasks_dispatched\": {}, \"tasks_stolen\": {}, \"parks\": {}, \"workers\": {}, \"busy_seconds\": {:.3}, \"max_concurrency\": {}}}\n}}\n",
        summit_pool::machine_parallelism(),
        summit_pool::core_budget(),
        entries.join(",\n"),
        scoped / pooled,
        stats.tasks_dispatched,
        stats.tasks_stolen,
        stats.parks,
        stats.workers_spawned,
        stats.busy_seconds(),
        stats.max_concurrency,
    );
    // Anchor to the workspace root: cargo runs bench binaries with the
    // package directory as CWD, so a bare relative "target" would land in
    // crates/bench/target, not the workspace target CI uploads from.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels below the workspace root")
        .join("target");
    let _ = std::fs::create_dir_all(&path);
    let file = path.join("BENCH_gemm.json");
    if let Err(e) = std::fs::write(&file, &json) {
        eprintln!("could not write {}: {e}", file.display());
    } else {
        println!("wrote {}", file.display());
    }
    print!("{json}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    let mut criterion = Criterion::default();
    gemm_variants(&mut criterion);
    spawn_overhead(&mut criterion);
    write_summary(smoke);
}
