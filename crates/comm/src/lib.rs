//! An MPI-like communication substrate with ranks as OS threads.
//!
//! The paper's full-Summit training codes all lean on one collective —
//! allreduce — and reason about it with bandwidth arithmetic (Section VI-B:
//! ring-algorithm bandwidth is half the 25 GB/s network bandwidth, so a
//! 100 MB ResNet50 gradient costs ≈8 ms and a 1.4 GB BERT-large gradient
//! ≈110 ms). This crate provides both halves of that story:
//!
//! * [`world`] + [`collectives`] — a **real, executable** communicator whose
//!   ranks are threads exchanging messages over channels, with the standard
//!   collective algorithms implemented chunk-by-chunk exactly as an MPI
//!   library would: ring allreduce, reduce-scatter + allgather
//!   (Rabenseifner), recursive doubling, binomial-tree broadcast/reduce, and
//!   ring allgather. These run at thread scale (p ≲ 64) and are the
//!   correctness anchor.
//! * [`model`] — α–β **cost models** of the same algorithms for arbitrary
//!   rank counts and message sizes, including a hierarchical
//!   (NVLink-within-node, InfiniBand-between-nodes) variant. These are the
//!   at-scale prediction tool and reproduce the paper's numbers.
//!
//! The executed collectives and the cost models share algorithm definitions
//! ([`model::Algorithm`]), so tests can cross-validate shapes: executed step
//! counts match the models' α terms, and transferred byte counts match the
//! models' β terms.
//!
//! # Example: a real 8-rank ring allreduce
//!
//! ```
//! use summit_comm::{world::World, collectives::{self, ReduceOp}};
//!
//! let results = World::run(8, |rank| {
//!     let mut buf = vec![rank.id() as f32; 16];
//!     collectives::ring_allreduce(&rank, &mut buf, ReduceOp::Sum);
//!     buf[0]
//! });
//! // 0 + 1 + ... + 7 = 28 on every rank.
//! assert!(results.iter().all(|&x| x == 28.0));
//! ```

pub mod collectives;
pub mod elastic;
pub mod engine;
pub mod extended;
pub mod faults;
pub mod group;
pub mod model;
pub mod nonblocking;
pub mod sim;
pub mod world;

pub use collectives::ReduceOp;
pub use elastic::{try_ring_allreduce_view, view_barrier, vote_members};
pub use engine::{simulate_reference, Collective, ModelReport};
pub use extended::{alltoall, gather, hierarchical_allreduce, scatter};
pub use faults::{all_agree, CommError, FaultKind, FaultPlan, FaultRates, TagClass, CONTROL_BIT};
pub use group::Group;
pub use model::{Algorithm, CollectiveModel};
pub use nonblocking::{
    ring_allreduce_start, ring_allreduce_start_windowed, ring_allreduce_start_windowed_view,
    RecvHandle, RingAllreduceHandle, SendHandle,
};
pub use sim::{elastic_shrink_study, simulate, simulate_on, ElasticStudy, FabricReport};
pub use summit_machine::LinkModel;
pub use world::{Rank, RankTraffic, World, WorldView};
