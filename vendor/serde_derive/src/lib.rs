//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! The workspace decorates report/spec structs with
//! `#[derive(Serialize, Deserialize)]` for forward compatibility but never
//! drives an actual serializer through them (there is no serde_json in the
//! tree), so empty expansions keep every call site compiling without
//! pulling in syn/quote.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
