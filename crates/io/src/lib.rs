//! Training-I/O models for leadership-scale deep learning.
//!
//! Section VI-B of *Learning to Scale the Summit* analyzes why full-machine
//! data-parallel training stresses the I/O subsystem: the access pattern is
//! "iterative random access" over the training set, the aggregate read
//! bandwidth required for ideal scaling of ResNet50/ImageNet is ≈20 TB/s,
//! the shared GPFS filesystem delivers only 2.5 TB/s, while the node-local
//! NVMe burst buffers aggregate to >27 TB/s — at the cost of data staging at
//! job start and sharding/shuffling complications. This crate implements
//! each of those pieces:
//!
//! * [`tier`] — storage tiers (shared parallel FS, node-local NVMe, host
//!   memory) with capacity and bandwidth derived from
//!   [`summit_machine::MachineSpec`].
//! * [`dataset`] — dataset descriptions and node-sharding plans.
//! * [`shuffle`] — per-epoch shuffle strategies (none / within-shard /
//!   global reshard) with both a *real* index-level implementation used to
//!   verify epoch invariants and analytic cross-node traffic estimates.
//! * [`staging`] — the cost of staging data from the shared filesystem to
//!   node-local NVMe (partitioned or replicated), and its amortization over
//!   a training job.
//! * [`requirements`] — the Section VI-B aggregate-bandwidth requirement
//!   calculator and per-tier feasibility verdicts.
//!
//! # Example: the paper's ResNet50 feasibility argument
//!
//! ```
//! use summit_io::requirements::ReadDemand;
//! use summit_machine::MachineSpec;
//!
//! let summit = MachineSpec::summit();
//! // ~2,900 samples/s/GPU on in-memory synthetic data, 250 KB per sample.
//! let demand = ReadDemand::new(2900.0, 250.0e3, summit.total_gpus());
//! let tbs = demand.aggregate_read_bw() / 1e12;
//! assert!(tbs > 19.0 && tbs < 21.0); // "roughly 20 TB/s"
//! ```

pub mod checkpoint;
pub mod dataset;
pub mod epoch;
pub mod requirements;
pub mod shuffle;
pub mod staging;
pub mod tier;

pub use checkpoint::CheckpointModel;
pub use dataset::{DatasetSpec, ShardPlan};
pub use epoch::{EpochPlan, EpochTimeline, TrainingSource};
pub use requirements::{Feasibility, ReadDemand};
pub use shuffle::ShuffleStrategy;
pub use staging::{StagingMode, StagingPlan};
pub use tier::StorageTier;
