//! Executable collective algorithms over a [`Rank`].
//!
//! Every algorithm here is the real chunked message pattern an MPI/NCCL
//! implementation uses, not a shortcut through shared memory:
//!
//! * [`ring_allreduce`] — reduce-scatter ring followed by allgather ring;
//!   `2(p-1)` steps, `2(p-1)/p · n` elements moved per rank. This is the
//!   algorithm whose bandwidth term the paper halves to get 12.5 GB/s.
//! * [`rabenseifner_allreduce`] — recursive-halving reduce-scatter plus
//!   recursive-doubling allgather (for power-of-two worlds).
//! * [`recursive_doubling_allreduce`] — `log2 p` exchanges of the full
//!   buffer; latency-optimal for small messages.
//! * [`binomial_broadcast_into`] / [`binomial_reduce`] — tree collectives.
//! * [`ring_allgather`], [`reduce_scatter`] — building blocks, exposed for
//!   tests and for the hierarchical trainer.
//!
//! Each algorithm is written **once**, as a schedule state machine in
//! [`crate::engine`]; the functions here are the blocking surface
//! ([`engine::drive_blocking`](crate::engine) drives the schedule on the
//! infallible pooled primitives) and the fallible `try_` surface (the same
//! schedule under deadline-bounded checked receives). The nonblocking
//! handles ([`crate::nonblocking`]) and the α–β model transport
//! ([`crate::sim::simulate`]) execute the identical schedules, so all
//! four surfaces share one source of truth for the message pattern.
//!
//! All functions must be called by **every** rank of the world collectively,
//! with equal buffer lengths, like their MPI counterparts.

use std::time::{Duration, Instant};

use crate::engine::{
    self, drive_blocking, drive_checked, BroadcastSchedule, RdSchedule, ReduceSchedule,
    RingSchedule,
};
use crate::faults::CommError;
use crate::world::Rank;

/// Element-wise reduction operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise maximum.
    Max,
    /// Element-wise minimum.
    Min,
}

impl ReduceOp {
    /// Fold `src` into `dst` element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fold(self, dst: &mut [f32], src: &[f32]) {
        assert_eq!(dst.len(), src.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d += *s;
                }
            }
            ReduceOp::Max => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.max(*s);
                }
            }
            ReduceOp::Min => {
                for (d, s) in dst.iter_mut().zip(src) {
                    *d = d.min(*s);
                }
            }
        }
    }

    /// Fold `local` into `payload` with the same operand order as
    /// [`ReduceOp::fold`] (`local ⊕ incoming`), so a partial carried in the
    /// circulating message is bit-identical to one accumulated in place.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn fold_into_payload(self, payload: &mut [f32], local: &[f32]) {
        assert_eq!(payload.len(), local.len(), "reduction length mismatch");
        match self {
            ReduceOp::Sum => {
                // `local + incoming`, matching `fold`'s operand order
                // (bit-identical even for signed zeros).
                #[allow(clippy::assign_op_pattern)]
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = *l + *pd;
                }
            }
            ReduceOp::Max => {
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = l.max(*pd);
                }
            }
            ReduceOp::Min => {
                for (pd, l) in payload.iter_mut().zip(local) {
                    *pd = l.min(*pd);
                }
            }
        }
    }
}

/// Chunk boundaries that partition `n` elements into `p` nearly equal chunks
/// (first `n % p` chunks get one extra element).
///
/// This is the **global partition** every surface shares: the blocking and
/// fallible collectives, the nonblocking windowed handles (which intersect
/// it with per-bucket windows so overlapped per-bucket allreduces keep the
/// serial fold order), and the model transport. Delegates to
/// [`summit_pool::chunk_range`] — the workspace's one canonical "first
/// `n % p` chunks get one extra element" rule, shared with the compute
/// pool's row partitioner. (The issue suggested hoisting it into
/// `summit-core`, but `summit-core` sits *above* this crate in the layering;
/// `summit-pool` is the common dependency both crates already share.)
///
/// # Panics
/// Panics if `p == 0` or `chunk >= p`.
pub fn chunk_bounds(n: usize, p: usize, chunk: usize) -> (usize, usize) {
    let r = summit_pool::chunk_range(n, p, chunk);
    (r.start, r.end)
}

/// Borrow the (disjoint) send and receive chunk windows of `buf` at once.
///
/// Relies on `chunk_bounds` producing non-overlapping intervals for
/// distinct chunk ids; empty chunks all sit at the same boundary point, so
/// one interval always ends before the other starts.
pub(crate) fn send_recv_windows(
    buf: &mut [f32],
    (ss, se): (usize, usize),
    (rs, re): (usize, usize),
) -> (&[f32], &mut [f32]) {
    if se <= rs {
        let (lo, hi) = buf.split_at_mut(rs);
        (&lo[ss..se], &mut hi[..re - rs])
    } else {
        assert!(re <= ss, "send and receive windows overlap");
        let (lo, hi) = buf.split_at_mut(ss);
        (&hi[..se - ss], &mut lo[rs..re])
    }
}

/// Ring allreduce: reduce-scatter phase then allgather phase.
///
/// After return, every rank's `buf` holds the element-wise reduction of all
/// ranks' input buffers. Runs on the pooled communicator primitives: in
/// steady state (pools warm) the call performs no heap allocation.
///
/// # Panics
/// Panics if buffer lengths differ across ranks (detected as message-length
/// mismatch).
pub fn ring_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let bucket = buf.len().max(1);
    ring_allreduce_bucketed(rank, buf, op, bucket);
}

/// [`ring_allreduce`] with each chunk transfer split into messages of at
/// most `bucket_elems` elements (the gradient-fusion bucket).
///
/// Bucketing only changes message segmentation, never the chunk partition
/// or the per-element fold order, so the result is bit-identical to the
/// flat [`ring_allreduce`] for every bucket size; `bucket_elems >= n`
/// degenerates to exactly the flat path.
///
/// # Panics
/// Panics if `bucket_elems == 0` or on the conditions of
/// [`ring_allreduce`].
pub fn ring_allreduce_bucketed(rank: &Rank, buf: &mut [f32], op: ReduceOp, bucket_elems: usize) {
    assert!(bucket_elems > 0, "bucket must hold at least one element");
    if rank.size() == 1 {
        return;
    }
    let mut sched = RingSchedule::allreduce(rank.size(), rank.id(), buf.len(), bucket_elems);
    drive_blocking(rank, buf, &mut [], op, &mut sched);
}

/// Timeout-aware [`ring_allreduce`]: completes with the exact bitwise
/// result of the infallible path, or fails loudly with a [`CommError`]
/// within roughly `timeout` when the fault plane drops, corrupts, or kills
/// something. On error, `buf` is left in an unspecified partially reduced
/// state — callers are expected to roll back to a checkpoint.
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`ring_allreduce`].
pub fn try_ring_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(), CommError> {
    let bucket = buf.len().max(1);
    try_ring_allreduce_bucketed(rank, buf, op, bucket, timeout)
}

/// Timeout-aware [`ring_allreduce_bucketed`]; see [`try_ring_allreduce`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`ring_allreduce_bucketed`].
pub fn try_ring_allreduce_bucketed(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    bucket_elems: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    assert!(bucket_elems > 0, "bucket must hold at least one element");
    rank.poll_fault_kill()?;
    if rank.size() == 1 {
        return Ok(());
    }
    let deadline = Some(Instant::now() + timeout);
    let mut sched = RingSchedule::allreduce(rank.size(), rank.id(), buf.len(), bucket_elems);
    drive_checked(rank, buf, &mut [], op, &mut sched, deadline)
}

/// Reduce-scatter over a ring: afterwards, rank i holds the fully reduced
/// chunk i (the contents of other chunks are unspecified — partials ride in
/// the circulating messages, not in `buf`). Returns the (start, end)
/// element range this rank owns.
pub fn reduce_scatter(rank: &Rank, buf: &mut [f32], op: ReduceOp) -> (usize, usize) {
    let p = rank.size();
    let me = rank.id();
    let n = buf.len();
    if p == 1 {
        return (0, n);
    }
    let mut sched = RingSchedule::reduce_scatter(p, me, n);
    drive_blocking(rank, buf, &mut [], op, &mut sched);
    chunk_bounds(n, p, (me + 1) % p)
}

/// Timeout-aware [`reduce_scatter`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_reduce_scatter(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(usize, usize), CommError> {
    let p = rank.size();
    let me = rank.id();
    let n = buf.len();
    rank.poll_fault_kill()?;
    if p == 1 {
        return Ok((0, n));
    }
    let mut sched = RingSchedule::reduce_scatter(p, me, n);
    drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut sched,
        Some(Instant::now() + timeout),
    )?;
    Ok(chunk_bounds(n, p, (me + 1) % p))
}

/// Ring allgather: each rank contributes its own chunk of `buf` (as defined
/// by `chunk_bounds`) and receives everyone else's.
pub fn ring_allgather(rank: &Rank, buf: &mut [f32]) {
    if rank.size() == 1 {
        return;
    }
    let mut sched = RingSchedule::allgather(rank.size(), rank.id(), buf.len());
    drive_blocking(rank, buf, &mut [], ReduceOp::Sum, &mut sched);
}

/// Timeout-aware [`ring_allgather`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_ring_allgather(
    rank: &Rank,
    buf: &mut [f32],
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    if rank.size() == 1 {
        return Ok(());
    }
    let mut sched = RingSchedule::allgather(rank.size(), rank.id(), buf.len());
    drive_checked(
        rank,
        buf,
        &mut [],
        ReduceOp::Sum,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Recursive-doubling allreduce: `log2 p` full-buffer exchanges.
///
/// Non-power-of-two worlds fold into a power-of-two core first (MPICH
/// style): the `p − 2^⌊log2 p⌋` surplus ranks pre-reduce into a partner,
/// sit out the core exchange, and receive the result afterwards.
pub fn recursive_doubling_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let mut sched = RdSchedule::new(rank.size(), rank.id(), buf.len());
    drive_blocking(rank, buf, &mut [], op, &mut sched);
}

/// Timeout-aware [`recursive_doubling_allreduce`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_recursive_doubling_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let mut sched = RdSchedule::new(rank.size(), rank.id(), buf.len());
    drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Rabenseifner allreduce: recursive-halving reduce-scatter followed by
/// recursive-doubling allgather. Bandwidth-optimal like the ring but with
/// `2 log2 p` latency terms instead of `2(p-1)`. Non-power-of-two worlds
/// fold into a power-of-two core first, as in
/// [`recursive_doubling_allreduce`].
///
/// # Panics
/// Panics unless the buffer length is divisible by the power-of-two core
/// of the world size (`2^⌊log2 p⌋`).
pub fn rabenseifner_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    let mut sched = engine::RabenseifnerSchedule::new(rank.size(), rank.id(), buf.len());
    drive_blocking(rank, buf, &mut [], op, &mut sched);
}

/// Timeout-aware [`rabenseifner_allreduce`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
///
/// # Panics
/// Panics on the conditions of [`rabenseifner_allreduce`].
pub fn try_rabenseifner_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let mut sched = engine::RabenseifnerSchedule::new(rank.size(), rank.id(), buf.len());
    drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Binomial-tree broadcast for pre-sized buffers: every rank passes a slice
/// of the same length and the root's contents are broadcast into it,
/// without touching any allocation.
///
/// # Panics
/// Panics if buffer lengths differ across ranks.
pub fn binomial_broadcast_into(rank: &Rank, buf: &mut [f32], root: usize) {
    let mut sched = BroadcastSchedule::new(rank.size(), rank.id(), buf.len(), root, 9);
    drive_blocking(rank, buf, &mut [], ReduceOp::Sum, &mut sched);
}

/// Timeout-aware [`binomial_broadcast_into`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_binomial_broadcast_into(
    rank: &Rank,
    buf: &mut [f32],
    root: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let mut sched = BroadcastSchedule::new(rank.size(), rank.id(), buf.len(), root, 9);
    drive_checked(
        rank,
        buf,
        &mut [],
        ReduceOp::Sum,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Binomial-tree reduce to `root`: after return, `root`'s buffer holds the
/// reduction; other ranks' buffers hold intermediate partial sums.
pub fn binomial_reduce(rank: &Rank, buf: &mut [f32], op: ReduceOp, root: usize) {
    let mut sched = ReduceSchedule::new(rank.size(), rank.id(), buf.len(), root);
    drive_blocking(rank, buf, &mut [], op, &mut sched);
}

/// Timeout-aware [`binomial_reduce`].
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_binomial_reduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    root: usize,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let mut sched = ReduceSchedule::new(rank.size(), rank.id(), buf.len(), root);
    drive_checked(
        rank,
        buf,
        &mut [],
        op,
        &mut sched,
        Some(Instant::now() + timeout),
    )
}

/// Tree allreduce: binomial reduce to rank 0, then binomial broadcast.
pub fn tree_allreduce(rank: &Rank, buf: &mut [f32], op: ReduceOp) {
    binomial_reduce(rank, buf, op, 0);
    binomial_broadcast_into(rank, buf, 0);
}

/// Timeout-aware [`tree_allreduce`] (one shared deadline for both phases).
///
/// # Errors
/// Any [`CommError`] surfaced by the checked receives or the kill poll.
pub fn try_tree_allreduce(
    rank: &Rank,
    buf: &mut [f32],
    op: ReduceOp,
    timeout: Duration,
) -> Result<(), CommError> {
    rank.poll_fault_kill()?;
    let deadline = Some(Instant::now() + timeout);
    let mut reduce = ReduceSchedule::new(rank.size(), rank.id(), buf.len(), 0);
    drive_checked(rank, buf, &mut [], op, &mut reduce, deadline)?;
    let mut bcast = BroadcastSchedule::new(rank.size(), rank.id(), buf.len(), 0, 9);
    drive_checked(rank, buf, &mut [], op, &mut bcast, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::World;

    fn input(rank: usize, n: usize) -> Vec<f32> {
        (0..n).map(|i| (rank * n + i) as f32 * 0.5).collect()
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f32> {
        let mut acc = vec![0.0f32; n];
        for r in 0..p {
            for (a, b) in acc.iter_mut().zip(input(r, n)) {
                *a += b;
            }
        }
        acc
    }

    fn check_allreduce(f: impl Fn(&Rank, &mut [f32], ReduceOp) + Sync, p: usize, n: usize) {
        let out = World::run(p, |rank| {
            let mut buf = input(rank.id(), n);
            f(rank, &mut buf, ReduceOp::Sum);
            buf
        });
        let want = expected_sum(p, n);
        for (r, got) in out.iter().enumerate() {
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                assert!(
                    (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "rank {r} element {i}: got {g}, want {w}"
                );
            }
        }
    }

    #[test]
    fn ring_allreduce_small_worlds() {
        for p in 1..=8 {
            for n in [1usize, 2, 7, 16, 33] {
                check_allreduce(ring_allreduce, p, n);
            }
        }
    }

    #[test]
    fn recursive_doubling_power_of_two() {
        for p in [1usize, 2, 4, 8] {
            check_allreduce(recursive_doubling_allreduce, p, 24);
        }
    }

    /// Non-power-of-two worlds reduce through the fold: surplus ranks
    /// pre-combine into the power-of-two core and still end with the sum.
    #[test]
    fn recursive_doubling_folds_any_world() {
        for p in [3usize, 5, 6, 7, 9] {
            for n in [1usize, 13, 24] {
                check_allreduce(recursive_doubling_allreduce, p, n);
            }
        }
    }

    #[test]
    fn rabenseifner_power_of_two() {
        for p in [1usize, 2, 4, 8] {
            check_allreduce(rabenseifner_allreduce, p, 32);
        }
    }

    /// The fold lifts Rabenseifner's world-shape restriction to "buffer
    /// divisible by the power-of-two core".
    #[test]
    fn rabenseifner_folds_any_world() {
        for p in [3usize, 5, 6, 7, 9] {
            // core = 2, 4, 4, 4, 8 → 32 is divisible by all of them.
            check_allreduce(rabenseifner_allreduce, p, 32);
        }
    }

    #[test]
    fn tree_allreduce_any_world() {
        for p in 1..=9 {
            check_allreduce(tree_allreduce, p, 13);
        }
    }

    #[test]
    fn max_and_min_ops() {
        let out = World::run(5, |rank| {
            let mut hi = vec![rank.id() as f32];
            ring_allreduce(rank, &mut hi, ReduceOp::Max);
            let mut lo = vec![rank.id() as f32];
            ring_allreduce(rank, &mut lo, ReduceOp::Min);
            (hi[0], lo[0])
        });
        assert!(out.iter().all(|&(hi, lo)| hi == 4.0 && lo == 0.0));
    }

    #[test]
    fn broadcast_into_from_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let out = World::run(p, |rank| {
                    let mut buf = if rank.id() == root {
                        vec![42.0, 7.0]
                    } else {
                        vec![0.0, 0.0]
                    };
                    binomial_broadcast_into(rank, &mut buf, root);
                    buf
                });
                for (r, v) in out.iter().enumerate() {
                    assert_eq!(v, &vec![42.0, 7.0], "p={p} root={root} rank={r}");
                }
            }
        }
    }

    #[test]
    fn reduce_to_every_root() {
        for p in 1..=8 {
            for root in 0..p {
                let out = World::run(p, |rank| {
                    let mut buf = vec![1.0f32; 4];
                    binomial_reduce(rank, &mut buf, ReduceOp::Sum, root);
                    buf
                });
                assert_eq!(out[root], vec![p as f32; 4], "p={p} root={root}");
            }
        }
    }

    #[test]
    fn reduce_scatter_owned_chunk_reduced() {
        let p = 4;
        let n = 16;
        let out = World::run(p, |rank| {
            let mut buf = input(rank.id(), n);
            let (s, e) = reduce_scatter(rank, &mut buf, ReduceOp::Sum);
            (s, e, buf[s..e].to_vec())
        });
        let want = expected_sum(p, n);
        let mut covered = vec![false; n];
        for (s, e, chunk) in out {
            for (i, v) in (s..e).zip(chunk) {
                assert!((v - want[i]).abs() < 1e-3);
                covered[i] = true;
            }
        }
        assert!(
            covered.iter().all(|&c| c),
            "chunks must partition the buffer"
        );
    }

    #[test]
    fn ring_allreduce_message_volume_matches_theory() {
        // Each rank sends 2(p-1)/p * n elements; total bytes = 4 * 2(p-1) * n.
        let (p, n) = (6usize, 36usize);
        let (_, stats) = World::run_with_stats(p, |rank| {
            let mut buf = vec![1.0f32; n];
            ring_allreduce(rank, &mut buf, ReduceOp::Sum);
        });
        assert_eq!(stats.bytes_sent, (4 * 2 * (p - 1) * n) as u64);
        assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
    }

    /// In every ring step the p ranks send p distinct chunks that partition
    /// the buffer, so total traffic is exactly 4 * 2(p-1) * n bytes even
    /// when p does not divide n — and bucketing must not change a byte.
    #[test]
    fn executed_ring_traffic_is_exact_for_uneven_chunks() {
        for p in [2usize, 3, 4, 8] {
            for n in [1usize, 5, 37, 96] {
                for bucket in [usize::MAX, 7, 1] {
                    let (_, stats) = World::run_with_stats(p, |rank| {
                        let mut buf = vec![1.0f32; n];
                        ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
                    });
                    assert_eq!(
                        stats.bytes_sent,
                        (4 * 2 * (p - 1) * n) as u64,
                        "p={p} n={n} bucket={bucket}"
                    );
                    if n >= p && bucket == usize::MAX {
                        // Flat path, all chunks non-empty: one message per
                        // rank per step.
                        assert_eq!(stats.messages_sent, (2 * (p - 1) * p) as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn try_ring_allreduce_matches_flat_bitwise() {
        for p in [2usize, 3, 5] {
            let n = 23;
            let flat = World::run(p, |rank| {
                let mut buf = input(rank.id(), n);
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
                buf
            });
            let checked = World::run(p, |rank| {
                let mut buf = input(rank.id(), n);
                try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_secs(5))
                    .expect("fault-free run must succeed");
                buf
            });
            for (f, c) in flat.iter().zip(&checked) {
                for (x, y) in f.iter().zip(c) {
                    assert_eq!(x.to_bits(), y.to_bits(), "p={p}");
                }
            }
        }
    }

    /// Every algorithm's fallible twin runs the identical engine schedule,
    /// so a fault-free checked run is bit-identical to the blocking one.
    #[test]
    fn try_twins_match_blocking_bitwise() {
        let t = Duration::from_secs(5);
        for p in [2usize, 4, 8] {
            let n = 16; // divisible by p for rabenseifner
            let plain = World::run(p, |rank| {
                let mut rd = input(rank.id(), n);
                recursive_doubling_allreduce(rank, &mut rd, ReduceOp::Sum);
                let mut ra = input(rank.id(), n);
                rabenseifner_allreduce(rank, &mut ra, ReduceOp::Sum);
                let mut tr = input(rank.id(), n);
                tree_allreduce(rank, &mut tr, ReduceOp::Sum);
                let mut rs = input(rank.id(), n);
                reduce_scatter(rank, &mut rs, ReduceOp::Sum);
                let mut ag: Vec<f32> = input(rank.id(), n);
                ring_allgather(rank, &mut ag);
                (rd, ra, tr, rs, ag)
            });
            let checked = World::run(p, |rank| {
                let mut rd = input(rank.id(), n);
                try_recursive_doubling_allreduce(rank, &mut rd, ReduceOp::Sum, t).unwrap();
                let mut ra = input(rank.id(), n);
                try_rabenseifner_allreduce(rank, &mut ra, ReduceOp::Sum, t).unwrap();
                let mut tr = input(rank.id(), n);
                try_tree_allreduce(rank, &mut tr, ReduceOp::Sum, t).unwrap();
                let mut rs = input(rank.id(), n);
                try_reduce_scatter(rank, &mut rs, ReduceOp::Sum, t).unwrap();
                let mut ag: Vec<f32> = input(rank.id(), n);
                try_ring_allgather(rank, &mut ag, t).unwrap();
                (rd, ra, tr, rs, ag)
            });
            for (a, b) in plain.iter().zip(&checked) {
                assert_eq!(
                    format!("{:?}", a.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
                    format!("{:?}", b.0.iter().map(|x| x.to_bits()).collect::<Vec<_>>()),
                );
                for (x, y) in [(&a.1, &b.1), (&a.2, &b.2), (&a.3, &b.3), (&a.4, &b.4)] {
                    for (u, v) in x.iter().zip(y.iter()) {
                        assert_eq!(u.to_bits(), v.to_bits(), "p={p}");
                    }
                }
            }
        }
    }

    #[test]
    fn try_broadcast_into_and_reduce_match_plain() {
        let t = Duration::from_secs(5);
        for p in [2usize, 3, 7] {
            let out = World::run(p, |rank| {
                let mut b = if rank.id() == 1 % p {
                    vec![3.5, -2.0]
                } else {
                    vec![0.0, 0.0]
                };
                try_binomial_broadcast_into(rank, &mut b, 1 % p, t).unwrap();
                let mut r = vec![1.0f32; 4];
                try_binomial_reduce(rank, &mut r, ReduceOp::Sum, 0, t).unwrap();
                (b, r)
            });
            for (rk, (b, _)) in out.iter().enumerate() {
                assert_eq!(b, &vec![3.5, -2.0], "p={p} rank={rk}");
            }
            assert_eq!(out[0].1, vec![p as f32; 4], "p={p}");
        }
    }

    #[test]
    fn try_ring_allreduce_fails_loudly_on_drop() {
        use crate::faults::{FaultPlan, TagClass};
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::empty().drop_message(0, 1, TagClass::Any, 0));
        let (out, _) = World::run_with_faults(3, plan, |rank| {
            let mut buf = vec![rank.id() as f32; 9];
            let res = try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_millis(200));
            // Every rank returns (success or error) within its deadline;
            // no rank hangs, so this barrier is reachable.
            rank.barrier();
            res.is_err()
        });
        assert!(
            out.iter().any(|&e| e),
            "at least one rank must observe the dropped message"
        );
    }

    #[test]
    fn try_ring_allreduce_surfaces_kill() {
        use crate::faults::FaultPlan;
        use std::sync::Arc;
        let plan = Arc::new(FaultPlan::empty().kill_rank(1, 0));
        let (out, _) = World::run_with_faults(2, plan, |rank| {
            let mut buf = vec![1.0f32; 4];
            let res = try_ring_allreduce(rank, &mut buf, ReduceOp::Sum, Duration::from_millis(200));
            rank.barrier();
            res
        });
        assert_eq!(out[1], Err(CommError::RankKilled { rank: 1 }));
    }

    proptest::proptest! {
        /// Bucketing is pure message segmentation: for any world size,
        /// buffer, and bucket size (one element up to larger than the whole
        /// buffer), the bucketed allreduce is bit-identical to the flat one.
        #[test]
        fn bucketed_allreduce_bit_identical_to_flat(
            p in 2usize..=8,
            n in 1usize..=48,
            bucket in 1usize..=64,
            seed in 0u64..1000,
        ) {
            use rand::{rngs::StdRng, Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let inputs: Vec<Vec<f32>> = (0..p)
                .map(|_| (0..n).map(|_| rng.gen_range(-1e3f32..1e3)).collect())
                .collect();
            let flat = World::run(p, |rank| {
                let mut buf = inputs[rank.id()].clone();
                ring_allreduce(rank, &mut buf, ReduceOp::Sum);
                buf
            });
            let bucketed = World::run(p, |rank| {
                let mut buf = inputs[rank.id()].clone();
                ring_allreduce_bucketed(rank, &mut buf, ReduceOp::Sum, bucket);
                buf
            });
            for (r, (f, b)) in flat.iter().zip(&bucketed).enumerate() {
                for (i, (x, y)) in f.iter().zip(b).enumerate() {
                    proptest::prop_assert_eq!(
                        x.to_bits(), y.to_bits(),
                        "rank {} element {}: {} vs {}", r, i, x, y
                    );
                }
            }
        }
    }
}
