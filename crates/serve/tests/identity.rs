//! Bit-identity of the batched serving path.
//!
//! The perf claim of this crate — one packed GEMM per micro-batch beats
//! per-request matvecs — is only safe to deploy if batching changes
//! *nothing* about the answers. These tests pin that: row `i` of a
//! batched forward is bitwise the single-request forward of request `i`,
//! across batch sizes (including sizes straddling the microkernel's
//! 6-row tile and odd remainders), across `Precision::{F32, Mixed}`, and
//! across the rank-sharded plane.

use summit_dl::model::MlpSpec;
use summit_dl::ServableModel;
use summit_serve::replica::{serve_sharded, ShardedConfig};
use summit_serve::service::{batch_matrix, feature_pool};
use summit_tensor::{Matrix, Precision};

const BATCHES: [usize; 7] = [1, 2, 3, 5, 8, 16, 33];

fn model(precision: Precision) -> ServableModel {
    let spec = MlpSpec::new(48, &[96, 64], 10);
    ServableModel::from_spec_params(&spec, &spec.build(1234).flat_params())
        .with_precision(precision)
}

#[test]
fn batched_rows_are_bitwise_single_request_forwards() {
    for precision in [Precision::F32, Precision::Mixed] {
        let m = model(precision);
        let pool = feature_pool(m.input_dim(), 64, 7);
        for &b in &BATCHES {
            let ids: Vec<u64> = (0..b as u64).map(|i| i * 3 + 1).collect();
            let x = batch_matrix(&pool, &ids);
            let batched = m.forward_batch(&x);
            assert_eq!(batched.rows(), b);
            for (r, &id) in ids.iter().enumerate() {
                let single = m.forward_one(&pool[id as usize % pool.len()]);
                assert_eq!(
                    single.as_slice(),
                    batched.row(r),
                    "batch={b} row={r} {precision:?}: batched row must be bitwise the sequential forward"
                );
            }
        }
    }
}

#[test]
fn servable_forward_is_bitwise_the_trainers_forward() {
    let spec = MlpSpec::new(32, &[64, 48], 6);
    let mut mlp = spec.build(77);
    for precision in [Precision::F32, Precision::Mixed] {
        mlp.set_precision(precision);
        let servable = mlp.servable();
        let pool = feature_pool(32, 16, 5);
        let ids: Vec<u64> = (0..24).collect();
        let x = batch_matrix(&pool, &ids);
        assert_eq!(
            mlp.forward(&x).as_slice(),
            servable.forward_batch(&x).as_slice(),
            "{precision:?}: serving must return exactly the trained model's logits"
        );
    }
}

#[test]
fn flat_param_round_trip_preserves_the_forward() {
    // Broadcast delivery path: spec + flat params reconstruct a replica
    // whose forward is bitwise the original's.
    let spec = MlpSpec::new(24, &[40], 8);
    let original = spec.build(3).servable();
    let rebuilt = ServableModel::from_spec_params(&spec, &original.flat_params());
    let pool = feature_pool(24, 8, 2);
    let ids: Vec<u64> = (0..13).collect();
    let x = batch_matrix(&pool, &ids);
    assert_eq!(
        original.forward_batch(&x).as_slice(),
        rebuilt.forward_batch(&x).as_slice()
    );
}

#[test]
fn sharded_replicas_match_the_batched_plane_bitwise() {
    let spec = MlpSpec::new(20, &[36, 28], 7);
    let flat = spec.build(55).flat_params();
    let ids: Vec<u64> = (0..41).collect();
    for precision in [Precision::F32, Precision::Mixed] {
        let cfg = ShardedConfig {
            ranks: 4,
            max_batch: 8,
            pool: 32,
            seed: 13,
        };
        let sharded = serve_sharded(&spec, &flat, precision, &ids, &cfg);
        // Reference: one replica serving the same ids in the same
        // micro-batch partition.
        let m = ServableModel::from_spec_params(&spec, &flat).with_precision(precision);
        let pool = feature_pool(20, 32, 13);
        let mut rows = Vec::new();
        for chunk in ids.chunks(8) {
            rows.extend_from_slice(m.forward_batch(&batch_matrix(&pool, chunk)).as_slice());
        }
        let single = Matrix::from_vec(ids.len(), 7, rows);
        assert_eq!(sharded.as_slice(), single.as_slice(), "{precision:?}");
    }
}
