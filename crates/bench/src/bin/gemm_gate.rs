//! CI gate over the gemm scaling bench: reads the `headline` block of
//! `target/BENCH_gemm.json` (written by `gemm_bench`, which must run
//! first) and fails the build when
//!
//! 1. the 512³ f32 matmul's percent-of-roofline drops below a generous
//!    absolute floor (`SUMMIT_GATE_PCT_FLOOR`, default 5% — low enough
//!    that scalar-only runners pass, high enough to catch a kernel that
//!    stopped vectorizing *and* regressed), or
//! 2. any headline percent-of-roofline regresses more than 10% relative
//!    to the last committed `BENCH_trajectory.json` entry
//!    (`SUMMIT_GATE_SKIP_TRAJECTORY=1` skips this leg on hosts that are
//!    not comparable to the recording machine).
//!
//! Percent-of-roofline is the compared figure rather than raw GFLOP/s
//! because the roofline ceiling already normalizes for the runner's core
//! count, clock, and detected SIMD backend. The gate also writes
//! `target/BENCH_trajectory_diff.txt` (baseline vs current per metric) for
//! CI to upload next to the bench JSON.

use summit_bench::harness;

fn main() {
    let path = harness::target_dir().join("BENCH_gemm.json");
    let body = match std::fs::read_to_string(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "gemm_gate: cannot read {} ({e}) — run the gemm bench first",
                path.display()
            );
            std::process::exit(2);
        }
    };
    let current = harness::parse_flat_object(&body, "headline");
    if current.is_empty() {
        eprintln!("gemm_gate: no headline block in {}", path.display());
        std::process::exit(2);
    }

    let mut failures = Vec::new();

    // Leg 1: absolute percent-of-roofline floor.
    let floor = std::env::var("SUMMIT_GATE_PCT_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0);
    let pct = current.get("matmul_512_f32_pct").copied().unwrap_or(0.0);
    if pct < floor {
        failures.push(format!(
            "matmul_512_f32_pct = {pct:.2}% is below the {floor:.2}% floor"
        ));
    } else {
        println!("floor:      matmul_512_f32_pct {pct:.2}% >= {floor:.2}% ✓");
    }

    // Leg 2: no >10% relative regression vs the committed trajectory.
    // Percent-of-roofline is throughput-shaped, so higher is better.
    let diff = harness::gate_trajectory(
        "gemm",
        &current,
        &|k| {
            k.ends_with("_pct")
                .then_some(harness::Direction::HigherIsBetter)
        },
        0.10,
        &mut failures,
    );
    let diff_path = harness::target_dir().join("BENCH_trajectory_diff.txt");
    if let Err(e) = std::fs::write(&diff_path, &diff) {
        eprintln!("gemm_gate: could not write {} ({e})", diff_path.display());
    } else {
        println!("wrote {}", diff_path.display());
    }

    if failures.is_empty() {
        println!("gemm_gate: PASS");
    } else {
        for f in &failures {
            eprintln!("gemm_gate: FAIL — {f}");
        }
        std::process::exit(1);
    }
}
